"""§4.6: per-node caches scale with cluster size.

The paper: "The state is maintained per node, avoiding communication
and synchronization with other workers ... easily scales to large
clusters with more than a hundred nodes."  This bench measures, as the
node count grows with fixed data:

* per-node cache memory shrinks ~1/N (each node indexes its slices),
* a node failure loses only ~1/N of the cached state, and one repeat
  execution fully restores it,
* results and total scan work stay identical at every cluster size.
"""

import numpy as np

from repro import Database, PredicateCacheConfig, QueryEngine
from repro.bench import format_table
from repro.cluster import ClusterCaches
from repro.storage import ColumnSpec, DataType, TableSchema

from _util import save_report

NUM_SLICES = 32
QUERY = "select count(*) as c from t where x between 2000 and 2300"


def _build(num_nodes):
    db = Database(num_slices=NUM_SLICES, rows_per_block=250)
    db.create_table(
        TableSchema("t", (ColumnSpec("x", DataType.INT64),))
    )
    caches = ClusterCaches(
        num_nodes=num_nodes,
        config=PredicateCacheConfig(variant="bitmap", bitmap_block_rows=250),
    )
    engine = QueryEngine(db, predicate_cache=caches)
    rng = np.random.default_rng(64)
    engine.insert("t", {"x": np.sort(rng.integers(0, 10_000, 160_000))})
    return engine, caches


def test_cluster_scaling(benchmark):
    def run():
        results = []
        for num_nodes in (1, 4, 16, 32):
            engine, caches = _build(num_nodes)
            expected = engine.execute(QUERY).scalar()
            warm = engine.execute(QUERY)
            per_node = caches.per_node_nbytes()

            # Fail one node; measure the relearn scope.
            before_total = caches.total_nbytes
            caches.fail_node(0)
            lost = before_total - caches.total_nbytes
            recovered = engine.execute(QUERY)
            assert recovered.scalar() == expected
            results.append(
                (
                    num_nodes,
                    int(expected),
                    warm.counters.rows_scanned,
                    max(per_node),
                    before_total,
                    lost,
                    caches.total_nbytes,
                )
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            nodes, count, rows_scanned, per_node_max, total,
            f"{lost}/{total}", restored,
        ]
        for nodes, count, rows_scanned, per_node_max, total, lost, restored in results
    ]
    report = format_table(
        ["nodes", "answer", "warm rows scanned", "max per-node bytes",
         "total bytes", "lost on failure", "after recovery"],
        rows,
        title=(
            "§4.6 - per-node cache state vs cluster size (32 slices, "
            "fixed data)\nper-node memory ~1/N; failure loses ~1/N; one "
            "repeat restores it"
        ),
    )
    save_report("cluster_scaling", report)

    by_nodes = {r[0]: r for r in results}
    # Same answer and same warm scan work at every size.
    assert len({r[1] for r in results}) == 1
    assert len({r[2] for r in results}) == 1
    # Per-node memory shrinks as nodes grow.
    assert by_nodes[32][3] < by_nodes[1][3]
    assert by_nodes[16][3] <= by_nodes[4][3]
    # Failure loses roughly 1/N of the state.
    for nodes, *_rest in results:
        _, _, _, _, total, lost, restored = by_nodes[nodes]
        assert lost <= total / nodes + 64
        assert restored == total  # fully relearned
