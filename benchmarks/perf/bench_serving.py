"""Benchmark: closed-loop multi-client serving throughput and latency.

Measures the serving layer (DESIGN.md §12) end to end: seeded
closed-loop clients drive a :class:`~repro.serve.QueryServer` over one
shared engine at 1, 4, 16, and 64 clients, reporting qps and p50/p99
latency per client count.

The scaling claim: in the paper's cloud setting a cold scan is
dominated by remote block fetches, and those round trips overlap across
concurrent queries.  The RMS models the round trip with
``fetch_delay_seconds`` (a real sleep per remote fetch, outside the
storage lock); with it armed and the decoded-block cache bounded (so
fetches keep happening), 64 closed-loop clients must deliver >= 3x the
throughput of a single closed-loop client.  Results also pin the
differential-oracle invariant: zero errors, zero timeouts at every
client count.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_serving.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_serving.py --smoke  # CI

Writes ``benchmarks/results/BENCH_serving.json``.  Full mode enforces
the gate (exit 1 on failure); smoke mode (8 clients only) records but
never gates, so CI stays robust to shared-runner timing noise.
"""

from __future__ import annotations

import json
import os
import sys

from repro import Database, PredicateCache, QueryEngine, QueryServer
from repro.workloads.loadgen import (
    LoadGenerator,
    run_closed_loop,
    setup_load_tables,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

SCALING_GATE = 3.0  # required qps speedup: 64 closed-loop clients vs 1
CLIENT_SWEEP = (1, 4, 16, 64)
SEED = 3
MAX_WORKERS = 16
ROWS_PER_TABLE = 4_000

# Modeled remote-fetch round trip (see module docstring).  The decoded
# cache is held far below any client's working set, so every query pays
# remote fetches; 2 ms each puts a serial client's query latency well
# above timer noise and far above the server's dispatch overhead.
FETCH_DELAY_S = 0.002
CACHE_CAPACITY = 4


def measure_clients(num_clients: int, statements: int) -> dict:
    """One closed-loop run at ``num_clients``; fresh engine per run."""
    generator = LoadGenerator(
        num_clients=num_clients,
        statements_per_client=statements,
        seed=SEED,
    )
    db = Database(cache_capacity=CACHE_CAPACITY)
    engine = QueryEngine(db, predicate_cache=PredicateCache())
    setup_load_tables(engine, generator, rows_per_table=ROWS_PER_TABLE)
    db.rms.fetch_delay_seconds = FETCH_DELAY_S
    server = QueryServer(engine, max_workers=MAX_WORKERS)
    try:
        report = run_closed_loop(server, generator.scripts())
    finally:
        server.shutdown()
    summary = report.summary()
    summary["clients"] = num_clients
    summary["statements_per_client"] = statements
    summary["status_counts"] = {
        status.name.lower(): count
        for status, count in report.status_counts().items()
    }
    summary["rejections_by_reason"] = report.rejections_by_reason()
    return summary


def main() -> int:
    smoke = "--smoke" in sys.argv
    sweep_counts = (8,) if smoke else CLIENT_SWEEP
    print(f"BENCH_serving: clients {sweep_counts}, {MAX_WORKERS} workers, "
          f"fetch delay {FETCH_DELAY_S * 1e3:.1f} ms "
          f"({'smoke' if smoke else 'full'} mode)")

    sweep = {}
    for clients in sweep_counts:
        # Keep every run's total statement count comparable so the
        # single-client run is not over- or under-warmed relative to
        # the fan-out runs.
        statements = max(8, 256 // clients) if not smoke else 12
        row = measure_clients(clients, statements)
        sweep[clients] = row
        print(f"  {clients:3d} clients: {row['qps']:8.1f} qps   "
              f"p50 {row['p50_seconds'] * 1e3:7.2f} ms   "
              f"p99 {row['p99_seconds'] * 1e3:7.2f} ms   "
              f"errors {row['errors']}  timed_out {row['timed_out']}")
        statuses = "  ".join(
            f"{name}={count}" for name, count in row["status_counts"].items()
        )
        print(f"      status breakdown: {statuses}   "
              f"retried_rejections {row['retried_rejections']} "
              f"{row['rejections_by_reason'] or ''}")

    clean = all(
        row["errors"] == 0 and row["timed_out"] == 0 for row in sweep.values()
    )
    if not smoke:
        speedup = sweep[64]["qps"] / sweep[1]["qps"]
        speedup_pass = speedup >= SCALING_GATE
        print(f"  qps speedup 64 vs 1 clients: {speedup:5.2f}x "
              f"(gate {SCALING_GATE}x -> {'PASS' if speedup_pass else 'FAIL'})")
    else:
        speedup = None
        speedup_pass = True
    print(f"  zero errors/timeouts at every client count: "
          f"{'PASS' if clean else 'FAIL'}")
    gate_pass = speedup_pass and clean
    print(f"gate -> {'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "serving",
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "max_workers": MAX_WORKERS,
        "fetch_delay_s": FETCH_DELAY_S,
        "cache_capacity": CACHE_CAPACITY,
        "rows_per_table": ROWS_PER_TABLE,
        "client_sweep": {str(c): row for c, row in sweep.items()},
        "speedup_64_vs_1": speedup,
        "gate": {
            "required_speedup": SCALING_GATE,
            "speedup_pass": speedup_pass,
            "clean_pass": clean,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_serving.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
