"""Microbenchmark: observability overhead on the Fig. 15 repeat-scan path.

The observability layer is built around callback-backed instruments
(metrics are read at scrape time from stats the engine keeps anyway)
and ``if tracer is not None`` guards, so an engine with a metrics
registry attached should run the cached-repeat scan at the same speed
as an uninstrumented one.  This bench verifies that claim on this
machine: it interleaves baseline rounds and metrics-attached rounds on
the same data and compares best-of-round medians.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_obs_overhead.py --smoke  # CI smoke

Full mode enforces the PR gates: metrics-attached within OVERHEAD_GATE
(2%) of the uninstrumented wall time, and — since the parallel executor
records per-slice span windows on worker threads and emits them at the
barrier — parallel-mode tracing within OVERHEAD_GATE of an untraced
parallel run.  Serial tracing overhead is reported for reference but
not gated — a Tracer is an opt-in debugging tool, not an always-on
production mode.  Writes ``benchmarks/results/BENCH_obs_overhead.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_scan_repeat import QUERY, build_database  # noqa: E402

from repro import (  # noqa: E402
    MetricsRegistry,
    PredicateCache,
    PredicateCacheConfig,
    QueryEngine,
    Tracer,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
OVERHEAD_GATE = 0.02  # metrics-attached must be within 2% of baseline


def make_engine(db, mode: str) -> QueryEngine:
    cache = PredicateCache(PredicateCacheConfig(variant="range"))
    if mode == "baseline":
        return QueryEngine(db, predicate_cache=cache)
    if mode == "metrics":
        return QueryEngine(db, predicate_cache=cache, metrics=MetricsRegistry())
    if mode == "tracing":
        return QueryEngine(
            db,
            predicate_cache=cache,
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        )
    if mode == "parallel":
        return QueryEngine(db, predicate_cache=cache, scan_workers=4)
    if mode == "parallel-tracing":
        return QueryEngine(
            db, predicate_cache=cache, tracer=Tracer(), scan_workers=4
        )
    raise ValueError(mode)


def time_round(engine, repeats: int) -> float:
    """Best cached-repeat wall time for one engine round.

    The minimum is the noise-floor statistic: scheduler preemption and
    GC only ever *add* time, so the fastest sample is the closest
    measurement of what the code itself costs — medians on this shared
    box carry a few percent of one-sided noise, which is larger than
    the 2% difference being resolved.
    """
    cold = engine.execute(QUERY)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        warm = engine.execute(QUERY)
        times.append(time.perf_counter() - t0)
    assert warm.counters.cache_hits > 0, "repeat did not hit the predicate cache"
    assert warm.column("c")[0] == cold.column("c")[0]
    return min(times)


def measure(db, modes, rounds: int, repeats: int) -> dict:
    """Interleave rounds of every mode so machine drift hits all alike;
    keep each mode's best (least-noisy) round.

    The order of modes rotates every round: with a fixed order the same
    mode always runs into the same allocator/cache state left by its
    predecessor, which showed up as a systematic few-percent skew —
    larger than the 2% being measured.  An uncounted warm-up round
    touches every path (imports, pools, block cache) first.
    """
    best = {mode: float("inf") for mode in modes}
    for mode in modes:
        time_round(make_engine(db, mode), 1)
    for r in range(rounds):
        pivot = r % len(modes)
        for mode in modes[pivot:] + modes[:pivot]:
            engine = make_engine(db, mode)
            best[mode] = min(best[mode], time_round(engine, repeats))
    return best


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    rounds = 3 if smoke else 7
    repeats = 3 if smoke else 7
    modes = ["baseline", "metrics", "tracing", "parallel", "parallel-tracing"]
    print(f"BENCH_obs_overhead: {num_rows} rows, {rounds} rounds x {repeats} "
          f"repeats ({'smoke' if smoke else 'full'} mode)")

    db = build_database(num_rows)
    best = measure(db, modes, rounds, repeats)

    metrics_overhead = best["metrics"] / best["baseline"] - 1.0
    tracing_overhead = best["tracing"] / best["baseline"] - 1.0
    # Parallel tracing is measured against an untraced *parallel* run:
    # the span machinery (per-task counters, now() windows, barrier
    # emit) must stay under the same 2% bar as serial metrics.
    parallel_tracing_overhead = best["parallel-tracing"] / best["parallel"] - 1.0
    gate_pass = (
        metrics_overhead <= OVERHEAD_GATE
        and parallel_tracing_overhead <= OVERHEAD_GATE
    )
    for mode in modes:
        print(f"  {mode:16s} cached repeat: {best[mode] * 1e3:8.3f} ms")
    print(f"  metrics overhead {metrics_overhead * 100:+.2f}%  "
          f"tracing overhead {tracing_overhead * 100:+.2f}%  "
          f"parallel tracing overhead {parallel_tracing_overhead * 100:+.2f}%")
    print(f"gate metrics and parallel tracing <= {OVERHEAD_GATE * 100:.0f}% -> "
          f"{'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "obs_overhead",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "rounds": rounds,
        "repeats": repeats,
        "repeat_s_best": best,
        "metrics_overhead_fraction": metrics_overhead,
        "tracing_overhead_fraction": tracing_overhead,
        "parallel_tracing_overhead_fraction": parallel_tracing_overhead,
        "gate": {
            "max_metrics_overhead": OVERHEAD_GATE,
            "max_parallel_tracing_overhead": OVERHEAD_GATE,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_obs_overhead.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
