"""Microbenchmark: cached repeated TPC-H-style scan, new vs seed hot path.

The paper's headline scenario: a selective predicate is scanned once
(cold, cache fill), then repeated — the predicate cache restricts the
repeat to the cached qualifying ranges.  With a scattered predicate the
cached entry holds thousands of short ranges per slice, which is exactly
the shape that made the seed per-object hot path slow.

Both modes run the *same* engine on the *same* data; legacy mode swaps
the scan hot path back to the frozen seed implementation (per-object
``RangeList`` plus the nested-while ``ColumnStore.read_ranges``) via
monkeypatching, so speedups are measured on this machine rather than
read off a recorded baseline.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_scan_repeat.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_scan_repeat.py --smoke  # CI smoke

Full mode enforces the PR gate: >= 2x wall-clock speedup on the repeated
(cache-hit) scan.  Writes ``benchmarks/results/BENCH_scan_repeat.json``.
"""

from __future__ import annotations

import contextlib
import json
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import legacy_rowrange as legacy  # noqa: E402  (frozen seed copy)

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine  # noqa: E402
from repro.storage import ColumnSpec, DataType, TableSchema  # noqa: E402
from repro.storage.column import ColumnStore  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SCAN_GATE = 2.0  # required wall-clock speedup on the cached repeat
QUERY = "select count(*) as c, sum(quantity) as q from lineitem where discount < 150"


@contextlib.contextmanager
def legacy_hot_path():
    """Swap the scan hot path back to the frozen seed implementation.

    Replaces the ``RangeList`` global of every scan-path module with the
    seed class and restores the seed ``ColumnStore`` readers.  The seed
    class is API-compatible, so the unchanged engine code runs on top of
    it — which is the point: same control flow, old data structure.
    """
    import repro.core.cache as cache_mod
    import repro.core.entry as entry_mod
    import repro.engine.scan as scan_mod
    import repro.storage.column as column_mod
    import repro.storage.slice as slice_mod

    modules = [cache_mod, entry_mod, scan_mod, column_mod, slice_mod]
    saved = [(m, m.RangeList) for m in modules]
    saved_read = ColumnStore.read_ranges
    saved_prunable = ColumnStore.prunable_block_ranges
    try:
        for m in modules:
            m.RangeList = legacy.RangeList
        ColumnStore.read_ranges = legacy.legacy_read_ranges
        ColumnStore.prunable_block_ranges = legacy.legacy_prunable_block_ranges
        yield
    finally:
        for m, cls in saved:
            m.RangeList = cls
        ColumnStore.read_ranges = saved_read
        ColumnStore.prunable_block_ranges = saved_prunable


def build_database(num_rows: int, num_slices: int = 4) -> Database:
    """A lineitem-shaped table with a scattered selective predicate column."""
    db = Database(num_slices=num_slices, rows_per_block=500)
    db.create_table(TableSchema("lineitem", (
        ColumnSpec("orderkey", DataType.INT64),
        ColumnSpec("quantity", DataType.INT64),
        ColumnSpec("discount", DataType.INT64),
    )))
    rng = np.random.default_rng(7)
    engine = QueryEngine(db)
    engine.insert("lineitem", {
        "orderkey": np.arange(num_rows, dtype=np.int64),
        "quantity": rng.integers(1, 50, size=num_rows),
        # ~15% selectivity, uniformly scattered -> thousands of short
        # cached ranges per slice (the fragmented hot-path shape).
        "discount": rng.integers(0, 1000, size=num_rows),
    })
    return db


def measure_mode(db: Database, repeats: int) -> dict:
    """Cold scan (cache fill) + timed cached repeats, for one mode."""
    cache = PredicateCache(PredicateCacheConfig(variant="range"))
    engine = QueryEngine(db, predicate_cache=cache)
    t0 = time.perf_counter()
    cold = engine.execute(QUERY)
    cold_s = time.perf_counter() - t0
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        warm = engine.execute(QUERY)
        times.append(time.perf_counter() - t0)
    assert warm.counters.cache_hits > 0, "repeat did not hit the predicate cache"
    return {
        "cold_s": cold_s,
        "repeat_s_median": statistics.median(times),
        "repeat_s_best": min(times),
        "rows_scanned_repeat": int(warm.counters.rows_scanned),
        "result": int(warm.column("c")[0]),
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    repeats = 3 if smoke else 9
    print(f"BENCH_scan_repeat: {num_rows} rows, {repeats} repeats "
          f"({'smoke' if smoke else 'full'} mode)")

    db = build_database(num_rows)
    new_stats = measure_mode(db, repeats)
    with legacy_hot_path():
        legacy_stats = measure_mode(db, repeats)
    assert new_stats["result"] == legacy_stats["result"], "modes disagree on results"
    assert new_stats["rows_scanned_repeat"] == legacy_stats["rows_scanned_repeat"], (
        "modes disagree on rows scanned"
    )

    speedup = legacy_stats["repeat_s_median"] / new_stats["repeat_s_median"]
    gate_pass = speedup >= SCAN_GATE
    print(f"  cached repeat: new {new_stats['repeat_s_median'] * 1e3:8.2f} ms   "
          f"legacy {legacy_stats['repeat_s_median'] * 1e3:8.2f} ms   "
          f"speedup {speedup:5.1f}x")
    print(f"gate {SCAN_GATE}x -> {'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "scan_repeat",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "repeats": repeats,
        "new": new_stats,
        "legacy": legacy_stats,
        "speedup_repeat_median": speedup,
        "gate": {
            "required_speedup": SCAN_GATE,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_scan_repeat.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
