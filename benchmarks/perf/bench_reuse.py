"""Benchmark: cross-query reuse lattice vs exact-match-only caching.

The paper's predicate cache only serves *exact* repeats of a scan
(Fig 13/14: repeated dashboard queries).  The reuse lattice (DESIGN.md
§14) additionally serves from cached *conjuncts* (intersection
composition) and cached *wider ranges* (subsumption), so drill-down
sessions — where almost every predicate string is new — still hit.

Three engines over identical SSB data:

* ``oracle``      — no predicate cache (correctness reference),
* ``exact_only``  — predicate cache, reuse disabled (the baseline),
* ``reuse``       — predicate cache with the reuse lattice enabled.

Workload: SSB-style drill-down sessions (``workloads.ssb
.drilldown_queries``) plus a full repeat of the session (the
fig13-style repeated-dashboard component, giving both modes their
exact hits).

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_reuse.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_reuse.py --smoke  # CI smoke

Full mode enforces the PR gates: combined (exact + composed + subsumed)
hit rate >= 1.5x the exact-only hit rate, blocks accessed on every
reuse-served query <= the cache-off oracle, and zero correctness
deltas.  Writes ``benchmarks/results/BENCH_reuse.json``.
"""

from __future__ import annotations

import json
import os
import sys

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.workloads import ssb

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
HIT_RATE_GATE = 1.5  # combined hit rate vs exact-only baseline


def build_engine(mode: str, scale: float) -> QueryEngine:
    db = Database(num_slices=4, rows_per_block=256)
    if mode == "oracle":
        cache = None
    else:
        cache = PredicateCache(
            PredicateCacheConfig(
                variant="range", enable_reuse=(mode == "reuse")
            )
        )
    engine = QueryEngine(db, predicate_cache=cache)
    ssb.load(db, scale_factor=scale, seed=3)
    return engine


def run_workload(engine: QueryEngine, queries) -> dict:
    """Execute the workload; classify how each query was served."""
    per_query = []
    for sql in queries:
        result = engine.execute(sql)
        counters = result.counters
        if counters.reuse_composed_serves or counters.reuse_subsumed_serves:
            served = (
                "composed" if counters.reuse_composed_serves else "subsumed"
            )
        elif counters.cache_hits and not counters.cache_misses:
            served = "exact"
        else:
            served = "miss"
        per_query.append(
            {
                "served": served,
                "rows": int(result.scalar()),
                "blocks": int(counters.blocks_accessed),
            }
        )
    total = len(per_query)
    served_counts = {
        kind: sum(1 for q in per_query if q["served"] == kind)
        for kind in ("exact", "composed", "subsumed", "miss")
    }
    hits = total - served_counts["miss"]
    return {
        "queries": total,
        "served": served_counts,
        "hit_rate": hits / total if total else 0.0,
        "per_query": per_query,
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    scale = 0.002 if smoke else 0.01
    rounds = 3 if smoke else 8
    session = ssb.drilldown_queries(rounds=rounds, seed=12)
    # Drill-down session + one full repeat (fig13-style repeated scans).
    workload = session + session
    print(
        f"BENCH_reuse: scale {scale}, {len(workload)} queries "
        f"({'smoke' if smoke else 'full'} mode)"
    )

    runs = {}
    for mode in ("oracle", "exact_only", "reuse"):
        engine = build_engine(mode, scale)
        runs[mode] = run_workload(engine, workload)
        if mode == "reuse":
            reuse_stats = engine.predicate_cache.reuse_stats
            runs[mode]["reuse_stats"] = {
                "conjunct_lookups": reuse_stats.conjunct_lookups,
                "conjunct_hits": reuse_stats.conjunct_hits,
                "conjunct_installs": reuse_stats.conjunct_installs,
                "composed_serves": reuse_stats.composed_serves,
                "subsumed_serves": reuse_stats.subsumed_serves,
                "recheck_rows": reuse_stats.recheck_rows,
                "skipped_rows": reuse_stats.skipped_rows,
            }

    # Gate 1: zero correctness deltas against the cache-off oracle.
    deltas = 0
    for mode in ("exact_only", "reuse"):
        for i, (got, want) in enumerate(
            zip(runs[mode]["per_query"], runs["oracle"]["per_query"])
        ):
            if got["rows"] != want["rows"]:
                deltas += 1
                print(f"  CORRECTNESS DELTA [{mode}] query {i}: "
                      f"{got['rows']} != {want['rows']}")

    # Gate 2: reuse-served queries never read more blocks than cache-off.
    block_violations = 0
    for i, (got, want) in enumerate(
        zip(runs["reuse"]["per_query"], runs["oracle"]["per_query"])
    ):
        if got["served"] in ("composed", "subsumed") and (
            got["blocks"] > want["blocks"]
        ):
            block_violations += 1
            print(f"  BLOCK REGRESSION query {i} ({got['served']}): "
                  f"{got['blocks']} > {want['blocks']}")

    # Gate 3: combined hit rate >= 1.5x the exact-only baseline.
    exact_rate = runs["exact_only"]["hit_rate"]
    combined_rate = runs["reuse"]["hit_rate"]
    ratio = combined_rate / exact_rate if exact_rate else float("inf")
    gate_pass = (
        deltas == 0
        and block_violations == 0
        and ratio >= HIT_RATE_GATE
    )
    print(f"  exact-only hit rate : {exact_rate:6.1%}")
    print(f"  combined hit rate   : {combined_rate:6.1%}  "
          f"(served: {runs['reuse']['served']})")
    print(f"  ratio {ratio:4.2f}x (gate {HIT_RATE_GATE}x), "
          f"deltas {deltas}, block regressions {block_violations} "
          f"-> {'PASS' if gate_pass else 'FAIL'}")

    for mode in runs:
        runs[mode].pop("per_query")
    report = {
        "benchmark": "reuse",
        "mode": "smoke" if smoke else "full",
        "scale_factor": scale,
        "workload_queries": len(workload),
        "runs": runs,
        "hit_rate_ratio": ratio,
        "gate": {
            "required_ratio": HIT_RATE_GATE,
            "correctness_deltas": deltas,
            "block_regressions": block_violations,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_reuse.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not gate_pass and not smoke:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
