"""Microbenchmark: invariant-validator overhead with REPRO_VALIDATE unset.

Every validator hook site (repro/invariants.py) compiles down to one
module-attribute read and a branch when validation is off::

    if _inv.ACTIVE:
        _inv.check_...(...)

This bench verifies the "zero-cost when off" claim two ways:

1. **Analytic gate** (deterministic, CI-stable): count how many guard
   branches one warm cached-repeat query executes, measure the cost of
   a single ``_inv.ACTIVE`` read in a tight loop, and bound the
   disabled-validator overhead as ``guards x guard_cost / query_time``.
   The gate requires that bound to stay under OVERHEAD_GATE (0.5%).
   Raw off-vs-off wall-clock deltas would be pure noise at this scale;
   the analytic bound is conservative (it charges the full attribute
   read even where the branch predictor hides it) and reproducible.

2. **Enabled-mode reference** (reported, not gated): interleaved rounds
   with validation on show what ``REPRO_VALIDATE=1`` actually costs —
   the debug/CI mode is allowed to be slower.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_validate_overhead.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_validate_overhead.py --smoke  # CI smoke

Writes ``benchmarks/results/BENCH_validate_overhead.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
import timeit

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_scan_repeat import QUERY, build_database  # noqa: E402

from repro import (  # noqa: E402
    PredicateCache,
    PredicateCacheConfig,
    QueryEngine,
    invariants,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
OVERHEAD_GATE = 0.005  # disabled validator must cost < 0.5% of a warm query


def make_engine(db) -> QueryEngine:
    cache = PredicateCache(PredicateCacheConfig(variant="range"))
    return QueryEngine(db, predicate_cache=cache)


def time_round(engine, repeats: int, validate: bool) -> float:
    """Median cached-repeat wall time with validation on or off."""
    (invariants.enable if validate else invariants.disable)()
    try:
        cold = engine.execute(QUERY)
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            warm = engine.execute(QUERY)
            times.append(time.perf_counter() - t0)
        assert warm.counters.cache_hits > 0, "repeat missed the predicate cache"
        assert warm.column("c")[0] == cold.column("c")[0]
        return statistics.median(times)
    finally:
        invariants.disable()


def count_guards(engine) -> int:
    """Guard branches one warm query executes, counted by substituting
    no-op checks and enabling validation for a single execution."""
    originals = (
        invariants.check_bounds,
        invariants.check_slice_state,
        invariants.check_cache,
        invariants.check_snapshot_roundtrip,
    )
    hits = {"n": 0}

    def tick(*args, **kwargs):
        hits["n"] += 1

    invariants.check_bounds = tick
    invariants.check_slice_state = tick
    invariants.check_cache = tick
    invariants.check_snapshot_roundtrip = tick
    invariants.enable()
    try:
        engine.execute(QUERY)
    finally:
        invariants.disable()
        (
            invariants.check_bounds,
            invariants.check_slice_state,
            invariants.check_cache,
            invariants.check_snapshot_roundtrip,
        ) = originals
    return hits["n"]


def guard_cost_seconds() -> float:
    """One disabled-hook guard: a module-attribute read (the branch is
    never taken), measured over a million iterations."""
    iterations = 1_000_000
    total = timeit.timeit(
        "inv.ACTIVE", globals={"inv": invariants}, number=iterations
    )
    return total / iterations


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    rounds = 3 if smoke else 7
    repeats = 3 if smoke else 7
    print(
        f"BENCH_validate_overhead: {num_rows} rows, {rounds} rounds x "
        f"{repeats} repeats ({'smoke' if smoke else 'full'} mode)"
    )

    db = build_database(num_rows)

    # Interleave off/on rounds so machine drift hits both alike.
    best = {"off": float("inf"), "on": float("inf")}
    for _ in range(rounds):
        best["off"] = min(best["off"], time_round(make_engine(db), repeats, False))
        best["on"] = min(best["on"], time_round(make_engine(db), repeats, True))

    guards = count_guards(make_engine(db))
    guard_s = guard_cost_seconds()
    off_overhead = guards * guard_s / best["off"]
    on_overhead = best["on"] / best["off"] - 1.0
    gate_pass = off_overhead <= OVERHEAD_GATE

    print(f"  validation off  cached repeat: {best['off'] * 1e3:8.3f} ms")
    print(f"  validation on   cached repeat: {best['on'] * 1e3:8.3f} ms")
    print(
        f"  {guards} guards/query x {guard_s * 1e9:.1f} ns "
        f"-> disabled overhead {off_overhead * 100:.4f}%"
    )
    print(f"  enabled (REPRO_VALIDATE=1) overhead {on_overhead * 100:+.2f}%")
    print(
        f"gate disabled <= {OVERHEAD_GATE * 100:.1f}% -> "
        f"{'PASS' if gate_pass else 'FAIL'}"
    )

    report = {
        "benchmark": "validate_overhead",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "rounds": rounds,
        "repeats": repeats,
        "repeat_s_best": best,
        "guards_per_query": guards,
        "guard_cost_ns": guard_s * 1e9,
        "disabled_overhead_fraction": off_overhead,
        "enabled_overhead_fraction": on_overhead,
        "gate": {
            "max_disabled_overhead": OVERHEAD_GATE,
            "pass": gate_pass,
            "gating": True,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_validate_overhead.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    return 0 if gate_pass else 1


if __name__ == "__main__":
    raise SystemExit(main())
