"""Frozen seed (pre-vectorization) row-range algebra — benchmark reference.

This is the repository's original per-object implementation, kept verbatim
so the perf harness can measure real speedups of the array-backed rewrite
on the same machine, instead of trusting recorded numbers from another
host.  Do not import this from production code.

Original module docstring:

Row-range algebra.

A :class:`RowRange` is a half-open interval ``[start, end)`` of row ids.
A :class:`RangeList` is an ordered, non-overlapping, non-adjacent list of
row ranges.  Range lists are the currency of the whole system:

* the vectorized scan produces a range list of qualifying rows,
* the predicate cache stores (bounded) range lists per cached predicate,
* a cached range list restricts the candidate rows of a repeated scan.

Ranges are half-open (like Python slices) so that lengths and
concatenations are free of ±1 bookkeeping.  The paper describes ranges as
``(start row, end row)`` pairs; the open/closed convention is internal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = ["RowRange", "RangeList"]


@dataclass(frozen=True, slots=True)
class RowRange:
    """A half-open interval ``[start, end)`` of row ids."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(f"range end {self.end} < start {self.start}")

    def __len__(self) -> int:
        return self.end - self.start

    def __bool__(self) -> bool:
        return self.end > self.start

    def __contains__(self, row: int) -> bool:
        return self.start <= row < self.end

    def overlaps(self, other: "RowRange") -> bool:
        """True if the two ranges share at least one row."""
        return self.start < other.end and other.start < self.end

    def touches(self, other: "RowRange") -> bool:
        """True if the ranges overlap or are directly adjacent."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "RowRange") -> "RowRange":
        """The overlapping part of the two ranges (may be empty)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return RowRange(start, max(start, end))

    def union_touching(self, other: "RowRange") -> "RowRange":
        """Merge with a touching range.

        Raises:
            ValueError: if the ranges neither overlap nor touch.
        """
        if not self.touches(other):
            raise ValueError(f"ranges {self} and {other} do not touch")
        return RowRange(min(self.start, other.start), max(self.end, other.end))

    def shift(self, offset: int) -> "RowRange":
        """A copy of this range translated by ``offset`` rows."""
        return RowRange(self.start + offset, self.end + offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end})"


class RangeList:
    """An ordered list of disjoint, non-adjacent row ranges.

    The constructor normalizes arbitrary input ranges: it sorts them,
    drops empty ranges, and merges overlapping or adjacent ones.  All set
    operations (union, intersection, complement) preserve the invariant.
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[RowRange | Tuple[int, int]] = ()) -> None:
        normalized: List[RowRange] = []
        items = [r if isinstance(r, RowRange) else RowRange(*r) for r in ranges]
        for r in sorted((r for r in items if r), key=lambda r: r.start):
            if normalized and normalized[-1].touches(r):
                normalized[-1] = normalized[-1].union_touching(r)
            else:
                normalized.append(r)
        self._ranges = normalized

    # -- constructors -----------------------------------------------------

    @classmethod
    def full(cls, num_rows: int) -> "RangeList":
        """A range list covering ``[0, num_rows)``."""
        if num_rows <= 0:
            return cls()
        return cls([RowRange(0, num_rows)])

    @classmethod
    def empty(cls) -> "RangeList":
        return cls()

    @classmethod
    def from_mask(cls, mask: np.ndarray, offset: int = 0) -> "RangeList":
        """Build a range list from a boolean qualification mask.

        This is what the vectorized scan produces: consecutive ``True``
        runs become ranges.  ``offset`` translates mask positions into
        global row ids.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.size == 0:
            return cls()
        # Find run boundaries: diff of the int mask is +1 at run starts
        # and -1 one past run ends.
        diff = np.diff(mask.astype(np.int8))
        starts = np.flatnonzero(diff == 1) + 1
        ends = np.flatnonzero(diff == -1) + 1
        if mask[0]:
            starts = np.concatenate(([0], starts))
        if mask[-1]:
            ends = np.concatenate((ends, [mask.size]))
        out = cls.__new__(cls)
        out._ranges = [
            RowRange(int(s) + offset, int(e) + offset)
            for s, e in zip(starts, ends)
        ]
        return out

    @classmethod
    def from_rows(cls, rows: Sequence[int] | np.ndarray) -> "RangeList":
        """Build a range list from individual (unsorted, unique) row ids."""
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if rows.size == 0:
            return cls()
        breaks = np.flatnonzero(np.diff(rows) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [rows.size - 1]))
        out = cls.__new__(cls)
        out._ranges = [
            RowRange(int(rows[s]), int(rows[e]) + 1) for s, e in zip(starts, ends)
        ]
        return out

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._ranges)

    def __iter__(self) -> Iterator[RowRange]:
        return iter(self._ranges)

    def __getitem__(self, idx: int) -> RowRange:
        return self._ranges[idx]

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeList):
            return NotImplemented
        return self._ranges == other._ranges

    def __hash__(self) -> int:
        return hash(tuple((r.start, r.end) for r in self._ranges))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeList({self._ranges!r})"

    # -- measures ----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Total number of rows covered by all ranges."""
        return sum(len(r) for r in self._ranges)

    @property
    def span(self) -> RowRange:
        """The bounding range ``[first.start, last.end)`` (empty if none)."""
        if not self._ranges:
            return RowRange(0, 0)
        return RowRange(self._ranges[0].start, self._ranges[-1].end)

    def contains_row(self, row: int) -> bool:
        """Binary search membership test for a single row id."""
        lo, hi = 0, len(self._ranges)
        while lo < hi:
            mid = (lo + hi) // 2
            r = self._ranges[mid]
            if row < r.start:
                hi = mid
            elif row >= r.end:
                lo = mid + 1
            else:
                return True
        return False

    # -- set algebra ---------------------------------------------------------

    def union(self, other: "RangeList") -> "RangeList":
        """Rows in either list."""
        return RangeList(list(self._ranges) + list(other._ranges))

    def intersect(self, other: "RangeList") -> "RangeList":
        """Rows in both lists (linear merge)."""
        out: List[RowRange] = []
        i = j = 0
        a, b = self._ranges, other._ranges
        while i < len(a) and j < len(b):
            hit = a[i].intersect(b[j])
            if hit:
                out.append(hit)
            if a[i].end <= b[j].end:
                i += 1
            else:
                j += 1
        result = RangeList.__new__(RangeList)
        result._ranges = out
        return result

    def difference(self, other: "RangeList") -> "RangeList":
        """Rows in this list but not in ``other``."""
        if not other._ranges:
            return self
        span_end = max(self.span.end, other.span.end)
        return self.intersect(other.complement(span_end))

    def complement(self, num_rows: int) -> "RangeList":
        """Rows in ``[0, num_rows)`` not covered by this list."""
        out: List[RowRange] = []
        cursor = 0
        for r in self._ranges:
            if r.start >= num_rows:
                break
            if r.start > cursor:
                out.append(RowRange(cursor, min(r.start, num_rows)))
            cursor = max(cursor, r.end)
        if cursor < num_rows:
            out.append(RowRange(cursor, num_rows))
        result = RangeList.__new__(RangeList)
        result._ranges = out
        return result

    # -- transforms ----------------------------------------------------------

    def clip(self, start: int, end: int) -> "RangeList":
        """Restrict the list to the window ``[start, end)``."""
        window = RowRange(start, max(start, end))
        out = [r.intersect(window) for r in self._ranges]
        result = RangeList.__new__(RangeList)
        result._ranges = [r for r in out if r]
        return result

    def shift(self, offset: int) -> "RangeList":
        """Translate every range by ``offset`` rows."""
        result = RangeList.__new__(RangeList)
        result._ranges = [r.shift(offset) for r in self._ranges]
        return result

    def coalesce(self, max_ranges: int) -> "RangeList":
        """Reduce to at most ``max_ranges`` ranges by closing smallest gaps.

        This is the *offline* equivalent of the paper's gap-heap
        construction (:mod:`repro.core.gapheap` builds the same result
        online): we keep the ``max_ranges - 1`` largest gaps between
        consecutive ranges and merge across all other gaps.  The result
        covers a superset of the original rows (false positives only).
        """
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        if len(self._ranges) <= max_ranges:
            return self
        gaps = [
            (self._ranges[i + 1].start - self._ranges[i].end, i)
            for i in range(len(self._ranges) - 1)
        ]
        gaps.sort(reverse=True)
        keep = sorted(i for _, i in gaps[: max_ranges - 1])
        out: List[RowRange] = []
        start = self._ranges[0].start
        for i in keep:
            out.append(RowRange(start, self._ranges[i].end))
            start = self._ranges[i + 1].start
        out.append(RowRange(start, self._ranges[-1].end))
        result = RangeList.__new__(RangeList)
        result._ranges = out
        return result

    def to_mask(self, num_rows: int) -> np.ndarray:
        """Materialize as a boolean mask over ``[0, num_rows)``."""
        mask = np.zeros(num_rows, dtype=bool)
        for r in self._ranges:
            if r.start >= num_rows:
                break
            mask[r.start : min(r.end, num_rows)] = True
        return mask

    def to_row_ids(self) -> np.ndarray:
        """Materialize as an int64 array of row ids."""
        if not self._ranges:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(
            [np.arange(r.start, r.end, dtype=np.int64) for r in self._ranges]
        )

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Plain ``(start, end)`` tuples, e.g. for serialization."""
        return [(r.start, r.end) for r in self._ranges]

    def covers(self, other: "RangeList") -> bool:
        """True if every row of ``other`` is contained in this list."""
        return other.difference(self).num_rows == 0

    @property
    def nbytes(self) -> int:
        """Memory footprint: two 8-byte row ids per range (paper §4.1.1)."""
        return 16 * len(self._ranges)


# -- seed gap-heap builder (pre-vectorization) ---------------------------------

import heapq
from typing import Optional


class LegacyGapHeapRangeBuilder:
    """Seed per-gap heapq builder (see repro.core.gapheap for the paper context)."""

    def __init__(self, max_ranges: int) -> None:
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        self.max_ranges = max_ranges
        self._gaps: List[Tuple[int, int, int]] = []
        self._first_start: Optional[int] = None
        self._last_end: Optional[int] = None
        self._finished = False

    def add(self, start: int, end: int) -> None:
        if self._finished:
            raise RuntimeError("builder already finished")
        if end <= start:
            return
        if self._last_end is not None and start < self._last_end:
            raise ValueError("ranges must be streamed in ascending order")
        if self._first_start is None:
            self._first_start = start
        elif start > self._last_end:
            self._push_gap(self._last_end, start)
        self._last_end = end

    def _push_gap(self, gap_start: int, gap_end: int) -> None:
        width = gap_end - gap_start
        entry = (width, gap_start, gap_end)
        if len(self._gaps) < self.max_ranges - 1:
            heapq.heappush(self._gaps, entry)
        elif self._gaps and width > self._gaps[0][0]:
            heapq.heapreplace(self._gaps, entry)

    def finish(self) -> "RangeList":
        self._finished = True
        if self._first_start is None:
            return RangeList()
        kept = sorted((start, end) for _, start, end in self._gaps)
        ranges: List[RowRange] = []
        cursor = self._first_start
        for gap_start, gap_end in kept:
            ranges.append(RowRange(cursor, gap_start))
            cursor = gap_end
        ranges.append(RowRange(cursor, self._last_end))
        result = RangeList.__new__(RangeList)
        result._ranges = ranges
        return result


# -- seed ColumnStore hot paths (pre-vectorization) -----------------------------

def legacy_read_ranges(self, ranges, rms):
    """Seed ColumnStore.read_ranges: nested Python while loop per range.

    Bound as a method onto the live ColumnStore class for legacy-mode
    scan benchmarking; works with any RangeList exposing iteration.
    """
    from repro.storage.dtypes import DataType

    if not ranges:
        return self._to_array([])
    pieces = []
    decoded = {}
    sealed_rows = self.num_sealed_rows
    tail = None
    for r in ranges:
        cursor = r.start
        while cursor < r.end:
            if cursor >= sealed_rows:
                if tail is None:
                    tail = self.tail_values()
                lo = cursor - sealed_rows
                hi = min(r.end - sealed_rows, len(tail))
                pieces.append(tail[lo:hi])
                cursor = r.end
                continue
            block_index = cursor // self.rows_per_block
            block_start = block_index * self.rows_per_block
            block_end = block_start + self.rows_per_block
            values = decoded.get(block_index)
            if values is None:
                values = rms.read_block(
                    self._block_key(block_index), self.blocks[block_index]
                )
                decoded[block_index] = values
            hi = min(r.end, block_end)
            pieces.append(values[cursor - block_start : hi - block_start])
            cursor = hi
    if not pieces:
        return self._to_array([])
    if self.dtype is DataType.STRING:
        return np.concatenate([np.asarray(p, dtype=object) for p in pieces])
    return np.concatenate(pieces)


def legacy_prunable_block_ranges(self, bounds):
    """Seed ColumnStore.prunable_block_ranges: per-block tuple generator."""
    pruned = self.zonemap.pruned_blocks(bounds)
    if not pruned.any():
        return RangeList()
    size = self.rows_per_block
    return RangeList(
        (int(i) * size, (int(i) + 1) * size) for i in np.flatnonzero(pruned)
    )
