"""Benchmark: persistent cache store — snapshot/load throughput & warm start.

Three numbers characterize the persistence subsystem (PR 4):

* **Snapshot / load throughput** — serializing a populated cluster
  cache to the versioned snapshot format, and recovering it (decode +
  journal replay + revalidation).  Reported as wall time and MB/s.
* **Snapshot size vs live size** — ``snapshot_bytes`` over the caches'
  ``total_nbytes`` (range lists as raw int64 bounds, bitmaps packed 8
  bits per byte, plus per-entry metadata).  The gate keeps the format
  from bloating: the on-disk snapshot must stay under
  ``SIZE_RATIO_GATE`` x the live payload bytes.
* **Warm-vs-cold first query** — a freshly hydrated cluster versus a
  cold one on the same query set: first-execution cache hits and the
  ``blocks_accessed`` delta.  The gate is the whole point of the
  subsystem: the warm cluster must hit on its first execution and touch
  fewer blocks than the cold one.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_persist.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_persist.py --smoke  # CI smoke

Full mode enforces the gates and writes
``benchmarks/results/BENCH_persist.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time

import numpy as np

from repro import (
    CacheStore,
    ClusterCaches,
    Database,
    PredicateCacheConfig,
    QueryEngine,
)
from repro.storage import ColumnSpec, DataType, TableSchema

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SIZE_RATIO_GATE = 3.0  # snapshot_bytes <= 3x live payload bytes
NUM_NODES = 4


def build_engine(num_rows: int):
    db = Database(num_slices=8, rows_per_block=512)
    db.create_table(
        TableSchema(
            "lineitem",
            (
                ColumnSpec("quantity", DataType.INT64),
                ColumnSpec("discount", DataType.INT64),
            ),
        )
    )
    caches = ClusterCaches(
        num_nodes=NUM_NODES, config=PredicateCacheConfig(variant="range")
    )
    engine = QueryEngine(db, predicate_cache=caches)
    engine.insert(
        "lineitem",
        {
            "quantity": np.arange(num_rows) % 50,
            "discount": np.arange(num_rows),
        },
    )
    return engine, caches


def query_set(num_rows: int, num_queries: int):
    """OR predicates: zone maps cannot prune them (unbounded bounds),
    so every block skipped on the warm first pass is the cache's doing."""
    span = num_rows // (num_queries + 2)
    return [
        f"select count(*) as c from lineitem "
        f"where discount < {(i + 1) * span // 4} or discount > {num_rows - span}"
        for i in range(num_queries)
    ]


def run_queries(engine, queries):
    hits = blocks = skipped = 0
    for sql in queries:
        counters = engine.execute(sql).counters
        hits += counters.cache_hits
        blocks += counters.blocks_accessed
        skipped += counters.rows_skipped_cache
    return {"cache_hits": hits, "blocks_accessed": blocks, "rows_skipped": skipped}


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 60_000 if smoke else 400_000
    num_queries = 12 if smoke else 48
    rounds = 2 if smoke else 5
    print(
        f"BENCH_persist: {num_rows} rows, {num_queries} queries, {NUM_NODES} nodes "
        f"({'smoke' if smoke else 'full'} mode)"
    )

    engine, caches = build_engine(num_rows)
    queries = query_set(num_rows, num_queries)
    run_queries(engine, queries)  # populate
    populated = run_queries(engine, queries)  # all-hit reference pass
    live_nbytes = caches.total_nbytes

    directory = tempfile.mkdtemp(prefix="bench_persist_")
    try:
        store = CacheStore(directory, catalog=engine.database)

        snapshot_s = min(
            _timed(lambda: store.snapshot(caches)) for _ in range(rounds)
        )
        snapshot_bytes = store.snapshot_bytes
        size_ratio = snapshot_bytes / max(1, live_nbytes)

        load_seconds, loaded_entries = [], 0
        for _ in range(rounds):
            reader = CacheStore(directory, catalog=engine.database)
            seconds = _timed(lambda: reader.load())
            load_seconds.append(seconds)
            loaded_entries = len(reader.load().records)
        load_s = min(load_seconds)

        cold_engine, _ = build_engine(num_rows)
        cold = run_queries(cold_engine, queries)

        warm_store = CacheStore(directory, catalog=engine.database)
        warm_caches = ClusterCaches(
            num_nodes=NUM_NODES,
            config=PredicateCacheConfig(variant="range"),
            store=warm_store,
        )
        warm_engine = QueryEngine(engine.database, predicate_cache=warm_caches)
        recovery_s = warm_store.last_recovery_seconds
        warm = run_queries(warm_engine, queries)
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    mb = snapshot_bytes / 1e6
    print(f"  entries {loaded_entries}, live payload {live_nbytes} B, "
          f"snapshot {snapshot_bytes} B (ratio {size_ratio:.2f}x)")
    print(f"  snapshot {snapshot_s * 1e3:8.3f} ms ({mb / snapshot_s:7.1f} MB/s)   "
          f"load {load_s * 1e3:8.3f} ms ({mb / load_s:7.1f} MB/s)   "
          f"hydrate-recovery {recovery_s * 1e3:8.3f} ms")
    print(f"  first pass: cold hits {cold['cache_hits']} blocks {cold['blocks_accessed']}  "
          f"vs  warm hits {warm['cache_hits']} blocks {warm['blocks_accessed']}")

    gates = {
        "warm_first_pass_hits": warm["cache_hits"] > 0,
        "warm_fewer_blocks_than_cold": warm["blocks_accessed"] < cold["blocks_accessed"],
        "warm_matches_populated_hit_path": warm["cache_hits"] == populated["cache_hits"],
        "size_ratio": size_ratio <= SIZE_RATIO_GATE,
        "round_trip_entries": loaded_entries == len(caches),
    }
    gate_pass = all(gates.values())
    print(f"gates {'PASS' if gate_pass else 'FAIL'}: "
          + ", ".join(f"{k}={'ok' if v else 'FAIL'}" for k, v in gates.items()))

    report = {
        "benchmark": "persist",
        "mode": "smoke" if smoke else "full",
        "num_rows": num_rows,
        "num_queries": num_queries,
        "num_nodes": NUM_NODES,
        "entries": loaded_entries,
        "live_nbytes": live_nbytes,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_size_ratio": size_ratio,
        "snapshot_s_best": snapshot_s,
        "snapshot_mb_per_s": mb / snapshot_s,
        "load_s_best": load_s,
        "load_mb_per_s": mb / load_s,
        "hydrate_recovery_s": recovery_s,
        "first_pass": {"cold": cold, "warm": warm, "populated": populated},
        "gate": {
            "checks": gates,
            "max_size_ratio": SIZE_RATIO_GATE,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_persist.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


if __name__ == "__main__":
    raise SystemExit(main())
