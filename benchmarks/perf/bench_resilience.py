"""Benchmark: resilience gates for the failure-survival control plane.

Three gates, mirroring the chaos drills (DESIGN.md §13) but measured as
performance claims rather than correctness oracles:

* **warm recovery** — after a crash mid-snapshot and a journal-replay
  restart, a first pass over the hot statement set must touch at most
  2x the blocks of the same pass after a *clean* warm start.  This is
  the paper's recovery story: the journal keeps the cache warm through
  a crash, so recovery does not mean re-scanning the world.
* **failover availability** — a 3-node cache cluster loses a node mid
  closed-loop workload; the heartbeat monitor routes around it and
  restores a warm replacement.  Every statement must reach a terminal
  OK response (100% availability) with at least one observed failover.
* **shed-mode p99** — an overloaded server with queue-depth shedding
  armed must keep the p99 latency of *admitted* requests within 1.5x
  of an uncontended single-client run.  Shedding exists precisely so
  the admitted tail does not absorb the queue.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_resilience.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_resilience.py --smoke  # CI

Writes ``benchmarks/results/BENCH_resilience.json``.  Full mode
enforces the gates (exit 1 on failure); smoke mode shrinks the shapes
and records without gating, so CI stays robust to shared-runner noise.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time

from repro import (
    Database,
    PredicateCache,
    QueryEngine,
    QueryServer,
    RequestStatus,
)
from repro.cluster import ClusterCaches
from repro.persist import CacheStore
from repro.serve import (
    AdmissionController,
    ClusterHealthMonitor,
    RecoveryOrchestrator,
)
from repro.workloads.loadgen import (
    LoadGenerator,
    run_closed_loop,
    setup_load_tables,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

WARM_RECOVERY_GATE = 2.0  # post-crash first-pass blocks vs clean warm start
SHED_P99_GATE = 1.5  # admitted p99 under shed pressure vs uncontended
SEED = 17
# Large enough that every slice seals real blocks (4 slices x 1000-row
# blocks): scans then go through the RMS read path, so block counts and
# modeled fetch delays are actually exercised.
ROWS_PER_TABLE = 8_000

# Modeled remote-fetch round trip for the serving-side gates: with the
# decoded cache held small the sleep dominates service time, so queue
# wait — the thing shedding bounds — is measured against a stable base.
FETCH_DELAY_S = 0.003
CACHE_CAPACITY = 4


# -- gate A: warm recovery after a torn snapshot -------------------------------


def _hot_pass_blocks(engine, statements) -> int:
    """Blocks touched by one pass over the hot statement set."""
    return sum(engine.execute(sql).counters.blocks_accessed for sql in statements)


def measure_warm_recovery(smoke: bool) -> dict:
    gen = LoadGenerator(
        num_clients=2,
        statements_per_client=8 if smoke else 32,
        seed=SEED,
        hot_fraction=0.7,
    )
    db = Database()
    cache = PredicateCache()
    engine = QueryEngine(db, predicate_cache=cache)
    setup_load_tables(engine, gen, rows_per_table=ROWS_PER_TABLE)
    hot_set = [s for s in gen.scripts()[0].statements if s.startswith("select")]

    with tempfile.TemporaryDirectory(prefix="bench_resilience_") as directory:
        store = CacheStore(directory, catalog=db)
        store.attach(cache)
        for script in gen.scripts():
            for sql in script.statements:
                engine.execute(sql)
        store.snapshot(engine.predicate_cache)

        orchestrator = RecoveryOrchestrator(engine, store)
        # Clean warm start: restart with an intact store, replay hot set.
        clean_report = orchestrator.drill("clean")
        clean_blocks = _hot_pass_blocks(engine, hot_set)

        # More traffic, then the crash strikes mid-snapshot.
        for script in gen.scripts():
            for sql in script.statements:
                engine.execute(sql)
        crash_report = orchestrator.drill("mid_snapshot")
        crash_blocks = _hot_pass_blocks(engine, hot_set)

        # Cold context: what the same pass costs with no cache at all
        # (what a recovery WITHOUT journal replay would converge from).
        cold_blocks = _hot_pass_blocks(QueryEngine(db), hot_set)

    # A fully warm pass touches zero blocks (cache entries carry the
    # qualifying rows); 0/0 is perfect recovery, not a degenerate case.
    if clean_blocks:
        ratio = crash_blocks / clean_blocks
    else:
        ratio = 1.0 if crash_blocks == 0 else float("inf")
    return {
        "hot_statements": len(hot_set),
        "clean_first_pass_blocks": clean_blocks,
        "crash_first_pass_blocks": crash_blocks,
        "cold_first_pass_blocks": cold_blocks,
        "blocks_ratio": ratio,
        "clean_warm_hit_retention": clean_report.warm_hit_retention,
        "crash_warm_hit_retention": crash_report.warm_hit_retention,
        "crash_keys_restored": crash_report.keys_restored,
        "recovery_seconds": crash_report.recovery_seconds,
        "torn_write": crash_report.torn_write,
        "pass": ratio <= WARM_RECOVERY_GATE and crash_blocks < cold_blocks,
    }


# -- gate B: failover availability under live load -----------------------------


def measure_failover(smoke: bool) -> dict:
    gen = LoadGenerator(
        num_clients=4 if smoke else 6,
        statements_per_client=12 if smoke else 32,
        seed=SEED + 1,
        hot_fraction=0.6,
    )
    db = Database()
    with tempfile.TemporaryDirectory(prefix="bench_resilience_") as directory:
        store = CacheStore(directory, catalog=db)
        cluster = ClusterCaches(3, store=store)
        engine = QueryEngine(db, predicate_cache=cluster)
        setup_load_tables(engine, gen, rows_per_table=ROWS_PER_TABLE)
        db.rms.fetch_delay_seconds = FETCH_DELAY_S
        monitor = ClusterHealthMonitor(
            cluster, suspect_after=1, down_after=2, auto_restore=True
        )
        server = QueryServer(engine, max_workers=4)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(
                run_closed_loop(server, gen.scripts())
            ),
            name="bench-failover-load",
        )
        started = time.perf_counter()
        try:
            thread.start()
            time.sleep(0.05)
            cluster.kill_node(1)
            detected = None
            for _ in range(200):
                if monitor.tick():
                    detected = time.perf_counter() - started
                    break
                time.sleep(0.002)
            thread.join(timeout=120)
        finally:
            server.shutdown()

    report = results[0]
    total = gen.num_clients * gen.statements_per_client
    terminal = report.total_requests
    ok = report.count(RequestStatus.OK)
    availability = ok / total if total else 0.0
    return {
        "statements": total,
        "terminal_responses": terminal,
        "ok": ok,
        "errors": report.errors,
        "availability": availability,
        "failovers": monitor.failovers,
        "nodes_marked_down": monitor.nodes_marked_down,
        "detect_and_restore_seconds": detected,
        "qps": report.qps,
        "pass": (
            availability == 1.0
            and report.errors == 0
            and monitor.failovers >= 1
        ),
    }


# -- gate C: shed-mode p99 for admitted requests -------------------------------


def _serving_run(num_clients: int, statements: int, admission=None) -> dict:
    gen = LoadGenerator(
        num_clients=num_clients,
        statements_per_client=statements,
        seed=SEED + 2,
    )
    # Cache-off on purpose: every statement pays its remote fetches, so
    # service time is uniform and sleep-dominated and the ratio isolates
    # queue wait — the quantity shedding is supposed to bound.
    db = Database(cache_capacity=CACHE_CAPACITY)
    engine = QueryEngine(db)
    setup_load_tables(engine, gen, rows_per_table=ROWS_PER_TABLE)
    db.rms.fetch_delay_seconds = FETCH_DELAY_S
    server = QueryServer(engine, max_workers=4, admission=admission)
    try:
        report = run_closed_loop(server, gen.scripts())
    finally:
        server.shutdown()
    return {
        "clients": num_clients,
        "p50_seconds": report.p50,
        "p99_seconds": report.p99,
        "qps": report.qps,
        "errors": report.errors,
        "retried_rejections": report.total_rejections,
        "rejections_by_reason": report.rejections_by_reason(),
    }


def measure_shedding(smoke: bool) -> dict:
    statements = 8 if smoke else 24
    # Uncontended = offered concurrency equals worker count: the server
    # runs at full utilization with an empty queue, so the shed-mode
    # ratio isolates exactly the queue wait shedding is meant to bound.
    uncontended = _serving_run(4, statements)
    admission = AdmissionController(
        max_in_flight=4, max_queued=64, shed_queue_depth=1
    )
    shed = _serving_run(8 if smoke else 16, statements, admission=admission)
    shed["sheds"] = admission.sheds()
    shed["total_sheds"] = admission.total_sheds
    ratio = (
        shed["p99_seconds"] / uncontended["p99_seconds"]
        if uncontended["p99_seconds"]
        else float("inf")
    )
    return {
        "uncontended": uncontended,
        "shed_mode": shed,
        "p99_ratio": ratio,
        "pass": (
            ratio <= SHED_P99_GATE
            and shed["total_sheds"] > 0
            and shed["errors"] == 0
            and uncontended["errors"] == 0
        ),
    }


def main() -> int:
    smoke = "--smoke" in sys.argv
    print(f"BENCH_resilience ({'smoke' if smoke else 'full'} mode)")

    warm = measure_warm_recovery(smoke)
    print(f"  warm recovery : first-pass blocks {warm['crash_first_pass_blocks']}"
          f" vs clean {warm['clean_first_pass_blocks']} "
          f"({warm['blocks_ratio']:.2f}x, gate {WARM_RECOVERY_GATE}x) "
          f"retention {warm['crash_warm_hit_retention']:.2f} "
          f"recovery {warm['recovery_seconds'] * 1e3:.1f} ms "
          f"-> {'PASS' if warm['pass'] else 'FAIL'}")

    failover = measure_failover(smoke)
    print(f"  failover      : availability {failover['availability']:.3f} "
          f"({failover['ok']}/{failover['statements']} ok, "
          f"{failover['errors']} errors), "
          f"failovers {failover['failovers']} "
          f"-> {'PASS' if failover['pass'] else 'FAIL'}")

    shed = measure_shedding(smoke)
    print(f"  shed-mode p99 : {shed['shed_mode']['p99_seconds'] * 1e3:.2f} ms "
          f"vs uncontended {shed['uncontended']['p99_seconds'] * 1e3:.2f} ms "
          f"({shed['p99_ratio']:.2f}x, gate {SHED_P99_GATE}x), "
          f"sheds {shed['shed_mode']['total_sheds']} "
          f"-> {'PASS' if shed['pass'] else 'FAIL'}")

    gate_pass = warm["pass"] and failover["pass"] and shed["pass"]
    print(f"gate -> {'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "resilience",
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "fetch_delay_s": FETCH_DELAY_S,
        "rows_per_table": ROWS_PER_TABLE,
        "warm_recovery": warm,
        "failover": failover,
        "shedding": shed,
        "gate": {
            "warm_recovery_max_ratio": WARM_RECOVERY_GATE,
            "shed_p99_max_ratio": SHED_P99_GATE,
            "warm_recovery_pass": warm["pass"],
            "failover_pass": failover["pass"],
            "shed_pass": shed["pass"],
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_resilience.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
