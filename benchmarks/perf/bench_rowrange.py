"""Microbenchmark: range algebra + gap-heap build, new vs seed implementation.

Measures the array-backed :class:`repro.core.rowrange.RangeList` against
the frozen seed implementation (``legacy_rowrange.py``) on identical
inputs, on the same machine, and writes ops/sec + speedups to
``benchmarks/results/BENCH_rowrange.json``.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_rowrange.py            # full
    PYTHONPATH=src python benchmarks/perf/bench_rowrange.py --smoke    # CI smoke

Full mode also checks the PR gate: >= 5x speedup on every set operation
at 10k+ ranges (exit code 1 on failure).  Smoke mode only checks that
both implementations agree on every result.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import legacy_rowrange as legacy  # noqa: E402  (frozen seed copy)

from repro.core.gapheap import GapHeapRangeBuilder  # noqa: E402
from repro.core.rowrange import RangeList  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
SETOP_GATE = 5.0  # required speedup on set ops (acceptance criterion)


def make_pairs(n_ranges: int, seed: int, gap_scale: int = 40) -> list:
    """n disjoint ranges with jittered widths/gaps, as (start, end) pairs."""
    rng = np.random.default_rng(seed)
    widths = rng.integers(1, 30, size=n_ranges)
    gaps = rng.integers(1, gap_scale, size=n_ranges)
    starts = np.cumsum(gaps + widths) - widths
    return list(zip(starts.tolist(), (starts + widths).tolist()))


def timeit(fn, reps: int) -> float:
    """Best-of-reps wall time of fn() in seconds."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench(name, new_fn, legacy_fn, reps, results, check=None):
    """Time both implementations; optionally verify they agree."""
    if check is not None:
        check(new_fn(), legacy_fn())
    new_s = timeit(new_fn, reps)
    legacy_s = timeit(legacy_fn, reps)
    results[name] = {
        "new_s": new_s,
        "legacy_s": legacy_s,
        "new_ops_per_s": 1.0 / new_s if new_s > 0 else float("inf"),
        "legacy_ops_per_s": 1.0 / legacy_s if legacy_s > 0 else float("inf"),
        "speedup": legacy_s / new_s if new_s > 0 else float("inf"),
    }
    print(f"  {name:<22} new {new_s * 1e3:9.3f} ms   "
          f"legacy {legacy_s * 1e3:9.3f} ms   speedup {results[name]['speedup']:7.1f}x")


def same_pairs(a, b):
    a_pairs = a.to_pairs() if hasattr(a, "to_pairs") else a
    b_pairs = b.to_pairs() if hasattr(b, "to_pairs") else b
    assert list(map(tuple, a_pairs)) == list(map(tuple, b_pairs)), "result mismatch"


def same_array(a, b):
    assert np.array_equal(a, b), "result mismatch"


def run(n_ranges: int, reps: int) -> dict:
    a_pairs = make_pairs(n_ranges, seed=1)
    b_pairs = make_pairs(n_ranges, seed=2)
    shuffled = list(a_pairs)
    np.random.default_rng(0).shuffle(shuffled)

    new_a, new_b = RangeList(a_pairs), RangeList(b_pairs)
    old_a, old_b = legacy.RangeList(a_pairs), legacy.RangeList(b_pairs)
    domain = int(max(new_a.span.end, new_b.span.end)) + 10

    rows = new_a.to_row_ids()
    scattered = rows[:: 3].copy()
    mask = new_a.to_mask(domain)

    results: dict = {}
    bench("construct_shuffled",
          lambda: RangeList(shuffled), lambda: legacy.RangeList(shuffled),
          reps, results, check=same_pairs)
    bench("union",
          lambda: new_a.union(new_b), lambda: old_a.union(old_b),
          reps, results, check=same_pairs)
    bench("intersect",
          lambda: new_a.intersect(new_b), lambda: old_a.intersect(old_b),
          reps, results, check=same_pairs)
    bench("difference",
          lambda: new_a.difference(new_b), lambda: old_a.difference(old_b),
          reps, results, check=same_pairs)
    bench("complement",
          lambda: new_a.complement(domain), lambda: old_a.complement(domain),
          reps, results, check=same_pairs)
    bench("num_rows_uncached",
          lambda: RangeList(a_pairs).num_rows,
          lambda: legacy.RangeList(a_pairs).num_rows,
          reps, results)
    bench("from_mask",
          lambda: RangeList.from_mask(mask), lambda: legacy.RangeList.from_mask(mask),
          reps, results, check=same_pairs)
    bench("from_rows",
          lambda: RangeList.from_rows(scattered),
          lambda: legacy.RangeList.from_rows(scattered),
          reps, results, check=same_pairs)
    bench("to_row_ids",
          lambda: new_a.to_row_ids(), lambda: old_a.to_row_ids(),
          reps, results, check=same_array)
    bench("coalesce_256",
          lambda: new_a.coalesce(256), lambda: old_a.coalesce(256),
          reps, results)

    def new_gapheap():
        builder = GapHeapRangeBuilder(max_ranges=256)
        builder.add_range_list(new_a)
        return builder.finish()

    def legacy_gapheap():
        builder = legacy.LegacyGapHeapRangeBuilder(max_ranges=256)
        for start, end in a_pairs:
            builder.add(start, end)
        return builder.finish()

    bench("gapheap_build_256", new_gapheap, legacy_gapheap, reps, results)
    return results


def main() -> int:
    smoke = "--smoke" in sys.argv
    n_ranges = 2_000 if smoke else 20_000
    reps = 3 if smoke else 7
    print(f"BENCH_rowrange: {n_ranges} ranges, best of {reps} "
          f"({'smoke' if smoke else 'full'} mode)")
    results = run(n_ranges, reps)

    set_ops = ["union", "intersect", "difference", "complement"]
    min_setop_speedup = min(results[op]["speedup"] for op in set_ops)
    gate_pass = min_setop_speedup >= SETOP_GATE
    report = {
        "benchmark": "rowrange",
        "mode": "smoke" if smoke else "full",
        "n_ranges": n_ranges,
        "reps": reps,
        "ops": results,
        "gate": {
            "set_ops": set_ops,
            "required_speedup": SETOP_GATE,
            "min_setop_speedup": min_setop_speedup,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_rowrange.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"min set-op speedup: {min_setop_speedup:.1f}x "
          f"(gate {SETOP_GATE}x) -> {'PASS' if gate_pass else 'FAIL'}")
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
