"""Benchmark: parallel slice scans + memory-mapped out-of-core tables.

Three claims from the parallel-execution PR, each measured on this
machine rather than read off a recorded number:

1. **Cold-scan speedup.**  Remote block fetches dominate a cold scan in
   the paper's cloud setting, and they overlap across slices.  The RMS
   models that round trip with ``fetch_delay_seconds`` (a real sleep per
   remote fetch, default off); with it armed, fanning slices over the
   worker pool must deliver >= 2.5x at 4 workers over serial.

2. **Serial mode is free.**  With parallelism off (the default), the
   refactored scan path — phased LRU settlement, coordinator-side cache
   installs — must stay within 2% of the PR 5 hot path, compared
   against the committed full-mode ``BENCH_scan_repeat.json`` numbers.

3. **Determinism.**  ``blocks_accessed`` (and the query result) must be
   identical at every worker count: parallelism changes wall-clock,
   never what was fetched.

Plus the out-of-core acceptance run: a 10x-scale table whose sealed
payloads live in a :class:`~repro.storage.MemmapBlockStore` completes
the same sweep with nearly all column bytes spilled to disk and the
decoded-block cache bounded, i.e. without the table resident in RAM.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_parallel_scan.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_parallel_scan.py --smoke  # CI

Writes ``benchmarks/results/BENCH_parallel_scan.json``.  Full mode
enforces the gates (exit 1 on failure); smoke mode records but never
gates, so CI stays robust to shared-runner timing noise.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_scan_repeat import (  # noqa: E402
    QUERY,
    build_database,
    legacy_hot_path,
    measure_mode,
)

from repro import (  # noqa: E402
    Database,
    MemmapBlockStore,
    PredicateCache,
    PredicateCacheConfig,
    QueryEngine,
)
from repro.storage import ColumnSpec, DataType, TableSchema  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
BASELINE_PATH = os.path.join(RESULTS_DIR, "BENCH_scan_repeat_baseline_pr5.json")

PARALLEL_GATE = 2.5  # required cold-scan speedup at 4 workers
SERIAL_BUDGET = 1.02  # serial repeat may cost at most 2% over PR 5
WORKER_SWEEP = (0, 1, 2, 4, 8)

# Modeled remote-fetch round trip.  240k rows / 500 rows-per-block x 2
# fetched columns ~= 960 fetches: at 0.5 ms each a serial cold scan is
# ~0.5 s of fetch latency, comfortably above timer noise and far above
# the pool's submit overhead.
FETCH_DELAY_S = 0.0005


def measure_cold_sweep(db: Database, trials: int) -> dict:
    """Cold-scan wall clock per worker count, fetch latency armed."""
    db.rms.fetch_delay_seconds = FETCH_DELAY_S
    sweep = {}
    try:
        for workers in WORKER_SWEEP:
            times = []
            for _ in range(trials):
                db.rms.clear()  # every trial pays full remote fetches
                cache = PredicateCache(PredicateCacheConfig(variant="range"))
                engine = QueryEngine(db, predicate_cache=cache, scan_workers=workers)
                t0 = time.perf_counter()
                result = engine.execute(QUERY)
                times.append(time.perf_counter() - t0)
            sweep[workers] = {
                "cold_s_median": statistics.median(times),
                "cold_s_best": min(times),
                "blocks_accessed": int(result.counters.blocks_accessed),
                "remote_fetches": int(result.counters.remote_fetches),
                "rows_scanned": int(result.counters.rows_scanned),
                "result": int(result.column("c")[0]),
            }
    finally:
        db.rms.fetch_delay_seconds = 0.0
        db.rms.clear()
    return sweep


def load_serial_baseline() -> dict | None:
    """PR 5 full-mode numbers, if the committed baseline file has them."""
    try:
        with open(BASELINE_PATH) as f:
            baseline = json.load(f)
    except (OSError, ValueError):
        return None
    if baseline.get("mode") != "full":
        return None  # smoke numbers gate nothing
    new, legacy = baseline.get("new"), baseline.get("legacy")
    if not new or not legacy:
        return None
    return {"new": new, "legacy": legacy}


def build_memmap_database(num_rows: int, store: MemmapBlockStore) -> Database:
    """The bench table at out-of-core scale, sealed through ``store``."""
    db = Database(
        num_slices=8, rows_per_block=500, cache_capacity=256, block_store=store
    )
    db.create_table(TableSchema("lineitem", (
        ColumnSpec("orderkey", DataType.INT64),
        ColumnSpec("quantity", DataType.INT64),
        ColumnSpec("discount", DataType.INT64),
    )))
    rng = np.random.default_rng(7)
    engine = QueryEngine(db)
    engine.insert("lineitem", {
        "orderkey": np.arange(num_rows, dtype=np.int64),
        "quantity": rng.integers(1, 50, size=num_rows),
        "discount": rng.integers(0, 1000, size=num_rows),
    })
    return db


def expected_result(num_rows: int) -> int:
    """Recompute the bench query's count from the generator stream."""
    rng = np.random.default_rng(7)
    rng.integers(1, 50, size=num_rows)  # quantity (drawn first at insert)
    discount = rng.integers(0, 1000, size=num_rows)
    return int((discount < 150).sum())


def measure_memmap_scale(num_rows: int) -> dict:
    """Cold + cached sweep over a memmap-backed 10x-scale table."""
    with tempfile.TemporaryDirectory(prefix="bench_memmap_") as spill_dir:
        store = MemmapBlockStore(spill_dir)
        t0 = time.perf_counter()
        db = build_memmap_database(num_rows, store)
        build_s = time.perf_counter() - t0
        total_blocks = sum(
            len(column.blocks)
            for data_slice in db.table("lineitem").slices
            for column in data_slice.columns.values()
        )
        cache = PredicateCache(PredicateCacheConfig(variant="range"))
        engine = QueryEngine(db, predicate_cache=cache, scan_workers=4)
        t0 = time.perf_counter()
        cold = engine.execute(QUERY)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = engine.execute(QUERY)
        repeat_s = time.perf_counter() - t0
        assert warm.counters.cache_hits > 0, "repeat missed the predicate cache"
        return {
            "num_rows": num_rows,
            "build_s": build_s,
            "cold_s": cold_s,
            "repeat_s": repeat_s,
            "result": int(cold.column("c")[0]),
            "expected": expected_result(num_rows),
            "total_blocks": total_blocks,
            "spilled_blocks": store.spilled_blocks,
            "spilled_mib": store.spilled_bytes / (1 << 20),
            "spilled_block_fraction": store.spilled_blocks / total_blocks,
            "resident_decoded_blocks": db.rms.cached_blocks,
            "decoded_cache_capacity": db.rms.cache_capacity,
        }


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    repeats = 3 if smoke else 9
    trials = 1 if smoke else 3
    memmap_rows = 200_000 if smoke else 2_400_000
    print(f"BENCH_parallel_scan: {num_rows} rows, workers {WORKER_SWEEP} "
          f"({'smoke' if smoke else 'full'} mode)")

    # -- 2 first: serial mode must not regress vs the PR 5 numbers -------------
    # Measured before the worker sweep so thread-pool warm-up and
    # scheduler churn from the latency sweep can't contaminate it.
    # Wall clock on a shared box drifts with load, so the comparison is
    # calibrated: both this run and the committed PR 5 baseline measure
    # the frozen seed hot path (``legacy_hot_path``) in-run, and the
    # gate compares the *legacy-normalized* cached-repeat time.  Machine
    # slowdowns cancel; only genuine hot-path regressions remain.
    serial_db = build_database(num_rows)
    serial_stats = measure_mode(serial_db, repeats)
    with legacy_hot_path():
        legacy_stats = measure_mode(serial_db, repeats)
    baseline = load_serial_baseline() if not smoke else None
    if baseline is not None:
        now_ratio = serial_stats["repeat_s_best"] / legacy_stats["repeat_s_best"]
        base_ratio = (
            baseline["new"]["repeat_s_best"] / baseline["legacy"]["repeat_s_best"]
        )
        serial_ratio = now_ratio / base_ratio
        serial_pass = serial_ratio <= SERIAL_BUDGET
        print(f"  serial cached repeat: {serial_stats['repeat_s_best'] * 1e3:.2f} ms "
              f"({now_ratio:.4f} of legacy) vs PR 5 {base_ratio:.4f} of legacy "
              f"(normalized ratio {serial_ratio:.3f}, budget {SERIAL_BUDGET} -> "
              f"{'PASS' if serial_pass else 'FAIL'})")
    else:
        serial_ratio = None
        serial_pass = True
        print("  serial baseline unavailable — regression gate skipped")

    # -- 1+3: cold-scan sweep under modeled fetch latency ----------------------
    sweep_db = build_database(num_rows, num_slices=8)
    sweep = measure_cold_sweep(sweep_db, trials)
    serial_row = sweep[0]
    for workers, row in sweep.items():
        marker = "" if workers else "  (serial)"
        print(f"  {workers} workers: cold {row['cold_s_median'] * 1e3:8.2f} ms   "
              f"blocks {row['blocks_accessed']}{marker}")
    identical = all(
        (row["blocks_accessed"], row["result"], row["rows_scanned"])
        == (serial_row["blocks_accessed"], serial_row["result"],
            serial_row["rows_scanned"])
        for row in sweep.values()
    )
    speedup_4 = serial_row["cold_s_median"] / sweep[4]["cold_s_median"]
    speedup_pass = speedup_4 >= PARALLEL_GATE
    print(f"  cold-scan speedup at 4 workers: {speedup_4:5.2f}x "
          f"(gate {PARALLEL_GATE}x -> {'PASS' if speedup_pass else 'FAIL'})")
    print(f"  blocks/result identical across worker counts: "
          f"{'PASS' if identical else 'FAIL'}")

    # -- out-of-core acceptance: 10x scale through the memmap store ------------
    print(f"  memmap scale run: {memmap_rows} rows ...")
    scale = measure_memmap_scale(memmap_rows)
    scale_pass = (
        scale["result"] == scale["expected"]
        and scale["spilled_block_fraction"] >= 0.9
        and scale["resident_decoded_blocks"] <= scale["decoded_cache_capacity"]
    )
    print(f"    build {scale['build_s']:.2f} s, cold {scale['cold_s'] * 1e3:.1f} ms, "
          f"repeat {scale['repeat_s'] * 1e3:.1f} ms")
    print(f"    spilled {scale['spilled_blocks']}/{scale['total_blocks']} blocks "
          f"({scale['spilled_mib']:.1f} MiB), decoded cache "
          f"{scale['resident_decoded_blocks']}/{scale['decoded_cache_capacity']} "
          f"-> {'PASS' if scale_pass else 'FAIL'}")

    gate_pass = speedup_pass and identical and serial_pass and scale_pass
    print(f"gate -> {'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "parallel_scan",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "fetch_delay_s": FETCH_DELAY_S,
        "worker_sweep": {str(w): row for w, row in sweep.items()},
        "speedup_cold_4_workers": speedup_4,
        "serial": serial_stats,
        "serial_legacy": legacy_stats,
        "serial_baseline": baseline,
        "serial_normalized_ratio": serial_ratio,
        "memmap_scale": scale,
        "gate": {
            "required_speedup": PARALLEL_GATE,
            "serial_budget": SERIAL_BUDGET,
            "speedup_pass": speedup_pass,
            "identical_blocks_pass": identical,
            "serial_pass": serial_pass,
            "scale_pass": scale_pass,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_parallel_scan.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
