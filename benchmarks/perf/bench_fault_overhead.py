"""Microbenchmark: resilience-hook overhead on the scan path.

The fault-injection layer (PR 3) wires hooks into every storage read:
``read_block`` branches on an attached injector, queries reset their
retry budget, and block checksums are verified on resilient fetches.
None of that may slow down production scans — the gate is that an
engine with *no faults configured* runs within OVERHEAD_GATE (2%) of
the baseline.

Two no-fault configurations are measured against the unarmed baseline:

* ``armed_zero`` — a zero-rate ``FaultInjector`` attached: every remote
  fetch takes the resilient path (draw + decode + checksum verify) and
  every query resets its retry budget, but no fault ever fires.  This
  upper-bounds the cost of the wiring, so it is the gated number.
* ``chaos`` — the chaos-suite rates (5% errors, 1% corruption, 2%
  latency, 8 attempts), reported for reference and never gated: faults
  are *supposed* to cost retries.

The measured workload interleaves cold (remote-fetch-heavy, bounded
block cache) and warm (cache-hit repeat) scans so both the fetch hook
and the per-query hook are exercised.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_fault_overhead.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_fault_overhead.py --smoke  # CI smoke

Full mode enforces the gate and writes
``benchmarks/results/BENCH_fault_overhead.json``.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro import (
    Database,
    FaultInjector,
    PredicateCache,
    PredicateCacheConfig,
    QueryEngine,
    RetryPolicy,
)
from repro.storage import ColumnSpec, DataType, TableSchema

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
OVERHEAD_GATE = 0.02  # armed-zero must be within 2% of unarmed baseline
QUERY = "select count(*) as c, sum(quantity) as q from lineitem where discount < 150"


def build_database(num_rows: int) -> Database:
    # A bounded block cache keeps remote refetches in the measured loop,
    # so the resilient-fetch hook is actually on the timed path.
    db = Database(num_slices=4, rows_per_block=512, cache_capacity=64)
    db.create_table(
        TableSchema(
            "lineitem",
            (
                ColumnSpec("quantity", DataType.INT64),
                ColumnSpec("discount", DataType.INT64),
            ),
        )
    )
    return db


def populate(db: Database, num_rows: int) -> QueryEngine:
    engine = QueryEngine(
        db, predicate_cache=PredicateCache(PredicateCacheConfig(variant="range"))
    )
    rng = np.random.default_rng(11)
    engine.insert(
        "lineitem",
        {
            "quantity": rng.integers(1, 50, num_rows),
            "discount": rng.integers(0, 10_000, num_rows),
        },
    )
    return engine


def configure(db: Database, mode: str) -> None:
    if mode == "baseline":
        db.attach_faults(None)
    elif mode == "armed_zero":
        db.attach_faults(FaultInjector(seed=0))
    elif mode == "chaos":
        db.attach_faults(
            FaultInjector(
                seed=0,
                error_rate=0.05,
                corruption_rate=0.01,
                latency_rate=0.02,
                latency_seconds=0.005,
            ),
            RetryPolicy(max_attempts=8),
        )
    else:
        raise ValueError(mode)


def time_round(engine: QueryEngine, repeats: int) -> float:
    """Best scan wall time: each repeat re-fetches evicted blocks and
    hits the predicate cache, covering both hook sites."""
    cold = engine.execute(QUERY)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        warm = engine.execute(QUERY)
        times.append(time.perf_counter() - t0)
    assert warm.counters.cache_hits > 0, "repeat did not hit the predicate cache"
    assert warm.column("c")[0] == cold.column("c")[0]
    return min(times)


def measure(num_rows: int, modes, rounds: int, repeats: int) -> dict:
    """One shared engine, modes swapped in place and interleaved.

    Fault injection attaches/detaches dynamically, so every mode runs
    the *same* engine over the *same* data and block-cache state —
    build-to-build variance (allocation layout, GC pressure) cancels
    out.  Interleaving rounds makes machine drift hit all modes alike;
    each mode keeps its best (least-noisy) round.
    """
    db = build_database(num_rows)
    engine = populate(db, num_rows)
    best = {mode: float("inf") for mode in modes}
    for _ in range(rounds):
        for mode in modes:
            configure(db, mode)
            best[mode] = min(best[mode], time_round(engine, repeats))
    return best


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    rounds = 3 if smoke else 7
    repeats = 3 if smoke else 7
    modes = ["baseline", "armed_zero", "chaos"]
    print(f"BENCH_fault_overhead: {num_rows} rows, {rounds} rounds x {repeats} "
          f"repeats ({'smoke' if smoke else 'full'} mode)")

    best = measure(num_rows, modes, rounds, repeats)

    armed_overhead = best["armed_zero"] / best["baseline"] - 1.0
    chaos_overhead = best["chaos"] / best["baseline"] - 1.0
    gate_pass = armed_overhead <= OVERHEAD_GATE
    for mode in modes:
        print(f"  {mode:10s} scan repeat: {best[mode] * 1e3:8.3f} ms")
    print(f"  armed-zero overhead {armed_overhead * 100:+.2f}%  "
          f"chaos overhead {chaos_overhead * 100:+.2f}% (not gated)")
    print(f"gate armed-zero <= {OVERHEAD_GATE * 100:.0f}% -> "
          f"{'PASS' if gate_pass else 'FAIL'}")

    report = {
        "benchmark": "fault_overhead",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "rounds": rounds,
        "repeats": repeats,
        "repeat_s_best": best,
        "armed_zero_overhead_fraction": armed_overhead,
        "chaos_overhead_fraction": chaos_overhead,
        "gate": {
            "max_armed_zero_overhead": OVERHEAD_GATE,
            "pass": gate_pass,
            "gating": not smoke,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_fault_overhead.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    if not smoke and not gate_pass:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
