"""Microbenchmark: lock-order-witness overhead with REPRO_LOCK_WITNESS unset.

The witness factories (repro/obs/lockwitness.py) check the environment
once per lock *construction*::

    if not enabled():
        return threading.RLock()      # plain stdlib lock, zero wrapper

so a disabled witness costs nothing per acquisition — the only charge
is the factory indirection at component construction time.  This bench
verifies the "<= 0.5% when off" claim two ways:

1. **Analytic gate** (deterministic, CI-stable): measure the per-call
   cost delta of ``named_rlock()`` vs a raw ``threading.RLock()``,
   count how many witness factory calls one full serving stack
   (engine + store + 2-node cluster + monitor + server) executes, and
   bound the disabled-witness overhead as
   ``constructions x delta / warm_query_time``.  That bound is very
   conservative: constructions happen once per process, not per query.
   The gate requires it under OVERHEAD_GATE (0.5%).

2. **Enabled-mode reference** (reported, not gated): per-acquisition
   cost of a ``with`` block through :class:`WitnessLock` vs a plain
   ``RLock`` shows what ``REPRO_LOCK_WITNESS=1`` actually costs — the
   debug/CI mode is allowed to be slower.

Usage::

    PYTHONPATH=src python benchmarks/perf/bench_lockwitness_overhead.py          # full
    PYTHONPATH=src python benchmarks/perf/bench_lockwitness_overhead.py --smoke  # CI smoke

Writes ``benchmarks/results/BENCH_lockwitness_overhead.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import tempfile
import threading
import time
import timeit

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_scan_repeat import QUERY, build_database  # noqa: E402

from repro import (  # noqa: E402
    Database,
    PredicateCache,
    PredicateCacheConfig,
    QueryEngine,
    QueryServer,
)
from repro.cluster import ClusterCaches  # noqa: E402
from repro.obs import lockwitness  # noqa: E402
from repro.persist import CacheStore  # noqa: E402
from repro.serve.health import ClusterHealthMonitor  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")
OVERHEAD_GATE = 0.005  # disabled witness must cost < 0.5% of a warm query


def warm_query_seconds(db, repeats: int) -> float:
    """Median cached-repeat wall time (the unit the gate is relative to)."""
    cache = PredicateCache(PredicateCacheConfig(variant="range"))
    engine = QueryEngine(db, predicate_cache=cache)
    cold = engine.execute(QUERY)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        warm = engine.execute(QUERY)
        times.append(time.perf_counter() - t0)
    assert warm.counters.cache_hits > 0, "repeat missed the predicate cache"
    assert warm.column("c")[0] == cold.column("c")[0]
    return statistics.median(times)


def factory_delta_seconds(iterations: int) -> tuple:
    """(named_rlock cost, raw RLock cost) per construction."""
    os.environ.pop(lockwitness.ENV_VAR, None)
    t_factory = timeit.timeit(
        "named_rlock('Bench._lock')",
        globals={"named_rlock": lockwitness.named_rlock},
        number=iterations,
    ) / iterations
    t_raw = timeit.timeit(
        "RLock()", globals={"RLock": threading.RLock}, number=iterations
    ) / iterations
    return t_factory, t_raw


def count_constructions() -> int:
    """Witness factory calls one full serving stack executes, counted by
    substituting counting wrappers around the three factories."""
    originals = (
        lockwitness.named_lock,
        lockwitness.named_rlock,
        lockwitness.named_condition,
    )
    hits = {"n": 0}

    def wrap(factory):
        def counting(name):
            hits["n"] += 1
            return factory(name)
        return counting

    lockwitness.named_lock = wrap(originals[0])
    lockwitness.named_rlock = wrap(originals[1])
    lockwitness.named_condition = wrap(originals[2])
    try:
        with tempfile.TemporaryDirectory() as tmp:
            db = Database()
            store = CacheStore(tmp, catalog=db)
            cluster = ClusterCaches(2, store=store)
            engine = QueryEngine(db, predicate_cache=cluster)
            ClusterHealthMonitor(cluster)
            server = QueryServer(engine, max_workers=3)
            server.shutdown()
    finally:
        (
            lockwitness.named_lock,
            lockwitness.named_rlock,
            lockwitness.named_condition,
        ) = originals
    return hits["n"]


def acquisition_cost_seconds(iterations: int) -> tuple:
    """Per-``with``-block cost: instrumented WitnessLock vs raw RLock."""
    os.environ[lockwitness.ENV_VAR] = "1"
    try:
        lockwitness.reset()
        witness = lockwitness.named_rlock("Bench._acq")
        t_witness = timeit.timeit(
            "\nwith lock:\n    pass",
            globals={"lock": witness},
            number=iterations,
        ) / iterations
    finally:
        os.environ.pop(lockwitness.ENV_VAR, None)
        lockwitness.reset()
    raw = threading.RLock()
    t_raw = timeit.timeit(
        "\nwith lock:\n    pass", globals={"lock": raw}, number=iterations
    ) / iterations
    return t_witness, t_raw


def main() -> int:
    smoke = "--smoke" in sys.argv
    num_rows = 40_000 if smoke else 240_000
    repeats = 3 if smoke else 7
    iterations = 50_000 if smoke else 300_000
    print(
        f"BENCH_lockwitness_overhead: {num_rows} rows, {repeats} repeats, "
        f"{iterations} factory iterations ({'smoke' if smoke else 'full'} mode)"
    )

    db = build_database(num_rows)
    query_s = warm_query_seconds(db, repeats)
    t_factory, t_raw = factory_delta_seconds(iterations)
    delta = max(t_factory - t_raw, 0.0)
    constructions = count_constructions()
    off_overhead = constructions * delta / query_s
    gate_pass = off_overhead <= OVERHEAD_GATE

    t_acq_witness, t_acq_raw = acquisition_cost_seconds(iterations)
    on_per_acq = t_acq_witness / t_acq_raw - 1.0 if t_acq_raw else 0.0

    print(f"  warm cached repeat:            {query_s * 1e3:8.3f} ms")
    print(
        f"  factory {t_factory * 1e9:7.1f} ns vs raw {t_raw * 1e9:7.1f} ns "
        f"-> delta {delta * 1e9:.1f} ns/construction"
    )
    print(
        f"  {constructions} constructions/stack x {delta * 1e9:.1f} ns "
        f"-> disabled overhead {off_overhead * 100:.4f}%"
    )
    print(
        f"  enabled (REPRO_LOCK_WITNESS=1) acquisition "
        f"{t_acq_witness * 1e9:.1f} ns vs {t_acq_raw * 1e9:.1f} ns "
        f"({on_per_acq * 100:+.1f}%/acquire, reference only)"
    )
    print(
        f"gate disabled <= {OVERHEAD_GATE * 100:.1f}% -> "
        f"{'PASS' if gate_pass else 'FAIL'}"
    )

    report = {
        "benchmark": "lockwitness_overhead",
        "mode": "smoke" if smoke else "full",
        "query": QUERY,
        "num_rows": num_rows,
        "warm_query_s": query_s,
        "factory_cost_ns": t_factory * 1e9,
        "raw_rlock_cost_ns": t_raw * 1e9,
        "delta_ns_per_construction": delta * 1e9,
        "constructions_per_stack": constructions,
        "disabled_overhead_fraction": off_overhead,
        "enabled_acquire_ns": t_acq_witness * 1e9,
        "raw_acquire_ns": t_acq_raw * 1e9,
        "enabled_overhead_per_acquire": on_per_acq,
        "gate": {
            "max_disabled_overhead": OVERHEAD_GATE,
            "pass": gate_pass,
            "gating": True,
        },
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out = os.path.join(RESULTS_DIR, "BENCH_lockwitness_overhead.json")
    with open(out, "w") as f:
        json.dump(report, f, indent=2)
    print(f"[saved to {out}]")
    return 0 if gate_pass else 1


if __name__ == "__main__":
    raise SystemExit(main())
