"""Ablation: index granularity vs precision vs memory (§4.1, §5.2).

The paper states both variants are configurable "regarding the amount
of space they use and their granularity" and that merged ranges trade
precision (false positives) for space.  This bench sweeps:

* the range variant's ``max_ranges_per_slice`` (16 … 16,384),
* the bitmap variant's ``bitmap_block_rows`` (50 … 5,000),

measuring repeat-scan rows (precision) and cache bytes (space) on the
skewed TPC-H Q6+Q19 pair.
"""

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.bench import format_table
from repro.workloads import tpch

from _util import save_report

QUERIES = ["Q6", "Q19", "Q3"]


def _measure(config):
    db = Database(num_slices=4, rows_per_block=500)
    tpch.load(db, scale_factor=0.01, skew=1.0, seed=42)
    engine = QueryEngine(db, predicate_cache=PredicateCache(config))
    rows = 0
    for name in QUERIES:
        sql = tpch.query(name, skewed=True)
        engine.execute(sql)
        rows += engine.execute(sql).counters.rows_scanned
    return rows, engine.predicate_cache.total_nbytes


def test_ablation_granularity(benchmark):
    def run():
        results = []
        for max_ranges in (16, 256, 4096, 16384):
            rows, nbytes = _measure(
                PredicateCacheConfig(variant="range", max_ranges_per_slice=max_ranges)
            )
            results.append((f"range/{max_ranges}", rows, nbytes))
        for block_rows in (50, 200, 1000, 5000):
            rows, nbytes = _measure(
                PredicateCacheConfig(variant="bitmap", bitmap_block_rows=block_rows)
            )
            results.append((f"bitmap/{block_rows}", rows, nbytes))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["configuration", "repeat rows scanned", "cache bytes"],
        results,
        title=(
            "Ablation - granularity vs precision vs memory "
            "(Q6+Q19+Q3 repeats, skewed TPC-H)\n"
            "finer granularity -> fewer false positives -> fewer rows, "
            "more bytes"
        ),
    )
    save_report("ablation_granularity", report)

    by_name = {name: (rows, nbytes) for name, rows, nbytes in results}
    # Range variant: more ranges => no worse precision.
    assert by_name["range/16384"][0] <= by_name["range/16"][0]
    # Bitmap variant: finer blocks => no worse precision, more memory.
    assert by_name["bitmap/50"][0] <= by_name["bitmap/5000"][0]
    assert by_name["bitmap/50"][1] >= by_name["bitmap/5000"][1]
