"""Figure 4: query vs scan repetition per cluster.

Paper: nearly identical on average — queries 71.2 %, scans 71.9 % —
with scans slightly higher because different queries share scans.
"""

import numpy as np

from repro.analysis import query_repetition_rate, scan_repetition_rate
from repro.bench import format_table

from _util import save_report


def test_fig4_scan_repetition(benchmark, fleet_workloads):
    def measure():
        return (
            [query_repetition_rate(w.statements) for w in fleet_workloads],
            [scan_repetition_rate(w.statements) for w in fleet_workloads],
        )

    query_rates, scan_rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    q_mean = float(np.mean(query_rates))
    s_mean = float(np.mean(scan_rates))

    rows = [
        ["mean query repetition", f"{q_mean:.3f}", "0.712"],
        ["mean scan repetition", f"{s_mean:.3f}", "0.719"],
        ["scan - query gap", f"{s_mean - q_mean:+.3f}", "small, positive"],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 4 - query vs scan repetition per cluster",
    )
    save_report("fig4_scan_repetition", report)

    assert s_mean >= q_mean - 0.02
    assert abs(q_mean - 0.712) < 0.15
