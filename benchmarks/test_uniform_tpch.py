"""Uniform TPC-H: where predicate caching does *not* help (§5.5.2).

Paper: "This issue is particularly apparent in the standard TPC-H
benchmark, where the data is uniformly distributed, and the predicate
cache does not impact the runtime ... predicate caching performs
better on data sets with a more uneven distribution."

This bench runs the same query set on the uniform and the skewed
generator and verifies the contrast: uniform repeats save little block
work, skewed repeats save a lot — while never slowing down either.
"""

from repro.bench import Variant, compare_variants
from repro.bench.report import format_table
from repro.core.config import PredicateCacheConfig
from repro.workloads import tpch

from _util import fresh_database, save_report

VARIANTS = [
    Variant("Orig"),
    Variant("PC", PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100)),
    # Filter-only caching isolates the effect the paper's uniform
    # claim is about: with uniform values, *filter* entries cannot
    # eliminate blocks (every block has a match).  Join-index entries
    # stay selective even on uniform data (rare dimension combinations
    # are rare either way), which our full-PC column shows.
    Variant(
        "PC-filters",
        PredicateCacheConfig(
            variant="bitmap", bitmap_block_rows=100, cache_join_keys=False
        ),
    ),
]


def _total(rows, metric):
    return sum(getattr(r, metric) for r in rows)


def test_uniform_tpch(benchmark):
    def run():
        out = {}
        for label, skew in (("uniform", 0.0), ("skewed", 1.0)):
            results = compare_variants(
                lambda db, s=skew: tpch.load(db, scale_factor=0.01, skew=s, seed=42),
                fresh_database,
                tpch.queries(skewed=skew > 0),
                VARIANTS,
            )
            out[label] = results
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    savings = {}
    filter_savings = {}
    for label in ("uniform", "skewed"):
        orig_blocks = _total(out[label]["Orig"], "blocks_accessed")
        pc_blocks = _total(out[label]["PC"], "blocks_accessed")
        filters_blocks = _total(out[label]["PC-filters"], "blocks_accessed")
        savings[label] = 1 - pc_blocks / orig_blocks
        filter_savings[label] = 1 - filters_blocks / orig_blocks
        rows.append(
            [
                label,
                orig_blocks, filters_blocks, pc_blocks,
                f"{filter_savings[label]:.1%}",
                f"{savings[label]:.1%}",
            ]
        )
    report = format_table(
        ["dataset", "blocks Orig", "blocks PC-filters", "blocks PC-full",
         "filter-only savings", "full savings"],
        rows,
        title=(
            "Uniform vs skewed TPC-H under the predicate cache (Sec 5.5.2)\n"
            "paper: uniform data defeats filter skipping; join-index "
            "entries stay selective either way"
        ),
    )
    save_report("uniform_tpch", report)

    # Filter-only caching barely moves blocks on either dataset here:
    # zone maps over naturally clustered ingestion already capture the
    # block-level filter wins at this scale (the paper's uniform-TPC-H
    # "no impact" claim, which concerns filter skipping).
    assert filter_savings["uniform"] < 0.08
    assert filter_savings["skewed"] < 0.15
    # The join index is what moves blocks — on both datasets at our
    # scale.  (Scale artifact vs the paper: with 2,000 parts a 0.1 %
    # dimension filter still leaves island-y probe rows; at the paper's
    # 200 M parts the uniform join result spreads into every block.)
    for label in ("uniform", "skewed"):
        assert savings[label] > filter_savings[label] + 0.1
    # Skewed data benefits more than uniform overall.
    assert savings["skewed"] > savings["uniform"]
    # And the cache never makes any query scan more (no slowdowns).
    for label in ("uniform", "skewed"):
        by_query_orig = {r.query: r for r in out[label]["Orig"]}
        for variant in ("PC", "PC-filters"):
            for r in out[label][variant]:
                assert r.rows_scanned <= by_query_orig[r.query].rows_scanned, (
                    label, variant, r.query,
                )
