"""Table 3: memory consumption of indexes vs caches for TPC-H Q6.

Paper (18 B-row lineitem, 64 slices):

    B-tree                  ~540 GB
    Zonemap                 ~0.8 GB
    Result cache            8 B
    AutoMV                  42 MB
    Predicate cache (range) 16 MB   (16,384 ranges x 64 slices)
    Predicate cache (bitmap) 2 MB   (1 bit per 1,000 rows)
    Predicate sorting       0 MB    (but rewrites the 750 GB table)

We *measure* every structure at laptop scale and *extrapolate* with the
structures' exact size formulas to the paper's scale.
"""

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.baselines.automv import AutoMVManager
from repro.baselines.btree import BPlusTree, btree_size_model
from repro.baselines.result_cache import ResultCache
from repro.bench import format_table
from repro.bench.report import format_bytes
from repro.workloads import tpch

from _util import save_report

PAPER_ROWS = 18_000_000_000
PAPER_SLICES = 64


def test_table3_memory(benchmark):
    db = Database(num_slices=4, rows_per_block=500)
    tpch.load(db, scale_factor=0.01, skew=0.0, seed=3)
    lineitem = db.table("lineitem")
    n_rows = lineitem.num_rows
    q6 = tpch.query("Q6")

    def measure():
        results = {}

        # Secondary B-tree over the three Q6 filter columns (composite).
        ship = lineitem.read_column_all("l_shipdate")
        disc = (lineitem.read_column_all("l_discount") * 100).astype(np.int64)
        qty = lineitem.read_column_all("l_quantity").astype(np.int64)
        composite = ship * 10_000 + disc * 100 + qty
        tree = BPlusTree.build(composite)
        results["btree"] = tree.nbytes

        # Zone maps for the three columns (16 B per block per column).
        zonemap_bytes = sum(
            s.columns[c].zonemap.nbytes
            for s in lineitem.slices
            for c in ("l_shipdate", "l_discount", "l_quantity")
        )
        results["zonemap"] = zonemap_bytes

        # Result cache: execute Q6, store its single-value result.
        result_cache = ResultCache()
        engine = QueryEngine(db, result_cache=result_cache)
        engine.execute(q6)
        engine.execute(q6)
        results["result_cache"] = result_cache.nbytes

        # AutoMV for the Q6 template.
        mv_engine = QueryEngine(db)
        manager = AutoMVManager(mv_engine, create_threshold=2)
        manager.process(q6)
        manager.process(q6)
        view = next(iter(manager.views.values()))
        results["automv"] = manager.view_nbytes(view)
        results["automv_rows"] = db.table(view.name).num_rows

        # Predicate cache, both variants.
        for variant in ("range", "bitmap"):
            cache = PredicateCache(PredicateCacheConfig(variant=variant))
            pc_engine = QueryEngine(db, predicate_cache=cache)
            pc_engine.execute(q6)
            results[f"pc_{variant}"] = cache.total_nbytes
        return results

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Exact-formula extrapolations to the paper's 18 B rows, 64 slices.
    extrapolated = {
        "btree": btree_size_model(PAPER_ROWS, num_columns=3),
        "zonemap": 3 * 16 * PAPER_ROWS // 1000,
        "result_cache": 8,
        # AutoMV: 4 values x 8 B per distinct filter combination
        # (paper: <1.4 M distinct -> 42 MB).
        "automv": 1_400_000 * 4 * 8,
        # Range: 16,384 ranges x 16 B x 64 slices (+ watermarks).
        "pc_range": PAPER_SLICES * (16_384 * 16 + 8),
        # Bitmap: 1 bit per 1,000 rows.
        "pc_bitmap": PAPER_ROWS // 1000 // 8 + PAPER_SLICES * 8,
    }
    paper = {
        "btree": "~540 GB",
        "zonemap": "~0.8 GB",
        "result_cache": "8 B",
        "automv": "42 MB",
        "pc_range": "16 MB",
        "pc_bitmap": "2 MB",
    }
    labels = {
        "btree": "Sec. index  B-tree",
        "zonemap": "Sec. index  Zonemap",
        "result_cache": "Cache       Result Cache",
        "automv": "Cache       AutoMV",
        "pc_range": "Cache       Predicate Cache (range)",
        "pc_bitmap": "Cache       Predicate Cache (bitmap)",
    }
    rows = [
        [
            labels[key],
            format_bytes(measured[key]),
            format_bytes(extrapolated[key]),
            paper[key],
        ]
        for key in labels
    ]
    rows.append(["Cache       Predicate Sorting", "0 B", "0 B", "(0 MB)"])
    report = format_table(
        ["structure", f"measured ({n_rows} rows)", "extrapolated (18 B rows)", "paper"],
        rows,
        title="Table 3 - memory consumption for TPC-H Q6 structures",
    )
    save_report("table3_memory", report)

    # Shape checks at paper scale.
    assert 400e9 < extrapolated["btree"] < 700e9
    assert 0.5e9 < extrapolated["zonemap"] < 1.2e9
    assert extrapolated["result_cache"] == 8
    assert 10e6 < extrapolated["pc_range"] < 20e6
    assert 1.5e6 < extrapolated["pc_bitmap"] < 3e6
    # Ordering holds at measured scale too: bitmap < range << btree.
    assert measured["pc_bitmap"] < measured["pc_range"] < measured["btree"]
    assert measured["result_cache"] == 8
