"""Figure 17: end-to-end performance on SSB and TPC-DS.

Paper: on these benchmarks speedups of more than 2x ("100 %") are
possible on selected queries while the bulk improve by up to ~10 %;
uniform data limits block elimination.
"""

import numpy as np

from repro import Database
from repro.bench import Variant, format_table, geomean, run_query_set
from repro.core.config import PredicateCacheConfig
from repro.workloads import ssb, tpcds_lite

from _util import ratio, save_report


def _run_suite(load, queries, rows_per_block=500):
    db = Database(num_slices=4, rows_per_block=rows_per_block)
    load(db)
    engine = Variant(
        "pc", PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100)
    ).build_engine(db)
    return run_query_set(engine, queries, "pc")


def test_fig17_other_benchmarks(benchmark):
    def run():
        ssb_rows = _run_suite(
            lambda db: ssb.load(db, scale_factor=0.005, seed=17), ssb.queries()
        )
        ds_rows = _run_suite(
            lambda db: tpcds_lite.load(db, scale_factor=0.004, seed=17),
            tpcds_lite.queries(),
        )
        return ssb_rows, ds_rows

    ssb_rows, ds_rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = []
    speedups = []
    for label, rows in (("SSB", ssb_rows), ("TPC-DS", ds_rows)):
        for row in rows:
            speedup = ratio(row.cold_model_seconds, row.model_seconds)
            speedups.append((label, row.query, speedup))
            table.append(
                [
                    f"{label} {row.query}",
                    f"{row.cold_model_seconds:.4f}",
                    f"{row.model_seconds:.4f}",
                    f"{speedup:.2f}x",
                ]
            )
    all_speedups = [s for _, _, s in speedups]
    table.append(["GeoMean", "-", "-", f"{geomean(all_speedups):.2f}x"])
    report = format_table(
        ["query", "cold model rt", "repeat model rt", "speedup"],
        table,
        title=(
            "Fig. 17 - predicate cache on SSB and TPC-DS (lite)\n"
            "paper shape: selected queries >2x, bulk modest"
        ),
    )
    save_report("fig17_other_benchmarks", report)

    # Selected queries improve by more than 2x.
    assert max(all_speedups) > 2.0
    # Nothing slows down materially (counter-exact on rows; the model
    # runtime includes the fixed overhead floor).
    assert min(all_speedups) > 0.9
    # Bulk improves modestly: median well below the max.
    assert float(np.median(all_speedups)) < max(all_speedups) / 1.5
