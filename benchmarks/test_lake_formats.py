"""§4.5: predicate caching over open data formats (Iceberg/Delta-shaped).

The paper argues predicate caching is uniquely suited to data lakes the
warehouse does not own: appends by other engines extend entries, file
removals invalidate only the affected files, and row groups that never
qualify are skipped without downloading their chunks.  This bench
replays that lifecycle on the lake substrate and reports row-group and
byte savings.
"""

import numpy as np

from repro.bench import format_table
from repro.lake import LakeScanner, LakeTable
from repro.predicates import parse_predicate

from _util import save_report


def test_lake_formats(benchmark):
    def run():
        table = LakeTable("events", rows_per_group=250)
        rng = np.random.default_rng(45)

        def batch(n=10_000):
            # status 4 ("failed") is rare, so many row groups have no
            # qualifying row at all - the rows the cache skips and file
            # statistics cannot (status is unordered within groups).
            status = rng.integers(0, 4, n)
            status[rng.random(n) < 0.004] = 4
            return {
                "day": np.sort(rng.integers(0, 365, n)),
                "status": status,
                "amount": rng.random(n).round(3),
            }

        for _ in range(6):
            table.append_file(batch())
        scanner = LakeScanner(table)
        pred = parse_predicate("day between 100 and 120 and status = 4")

        _, cold = scanner.scan(pred, ["amount"])
        _, warm = scanner.scan(pred, ["amount"])

        # Another engine appends a file: entries survive.
        table.append_file(batch())
        _, after_append = scanner.scan(pred, ["amount"])

        # Compaction removes one file: only its state drops.
        victim = table.current_snapshot.file_ids[0]
        table.delete_file(victim)
        _, after_delete = scanner.scan(pred, ["amount"])
        _, relearned = scanner.scan(pred, ["amount"])
        return cold, warm, after_append, after_delete, relearned, scanner

    cold, warm, after_append, after_delete, relearned, scanner = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = [
        ["cold scan", cold.row_groups_read, cold.row_groups_total,
         cold.chunk_bytes_read, "-"],
        ["repeat (cached)", warm.row_groups_read, warm.row_groups_total,
         warm.chunk_bytes_read, warm.cache_hit],
        ["after foreign append", after_append.row_groups_read,
         after_append.row_groups_total, after_append.chunk_bytes_read,
         after_append.cache_hit],
        ["after file removal", after_delete.row_groups_read,
         after_delete.row_groups_total, after_delete.chunk_bytes_read,
         after_delete.cache_hit],
        ["relearned", relearned.row_groups_read, relearned.row_groups_total,
         relearned.chunk_bytes_read, relearned.cache_hit],
    ]
    report = format_table(
        ["scan", "row groups read", "row groups total", "chunk bytes", "cache hit"],
        rows,
        title="§4.5 - predicate caching over an Iceberg-shaped lake table",
    )
    save_report("lake_formats", report)

    assert warm.cache_hit
    assert warm.row_groups_read < cold.row_groups_read
    assert warm.chunk_bytes_read < cold.chunk_bytes_read
    # Appends do not invalidate (§4.5: only row-number changes would).
    assert after_append.cache_hit
    # Removal keeps the entry live for surviving files.
    assert after_delete.cache_hit
    assert relearned.row_groups_read <= after_delete.row_groups_read
