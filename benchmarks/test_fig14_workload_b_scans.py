"""Figure 14: scan repetitions in Workload B.

Paper anchors: ~4,000 scans total over 401 unique scans; 183 occur
once, 218 repeat; scans repeating >= 10 times account for ~3,243
executions (>90 % of scans repeat).
"""

from repro.analysis import repetition_histogram
from repro.bench import format_table
from repro.workloads import customer

from _util import save_report


def test_fig14_workload_b_scans(benchmark):
    events = benchmark.pedantic(
        lambda: customer.workload_b(seed=14), rounds=1, iterations=1
    )
    keys = [e.scan_key for e in events]
    histogram = repetition_histogram(keys)

    total = len(events)
    unique = len(set(keys))
    singletons = histogram.get(1, 0)
    repeating = unique - singletons
    ten_plus_scans = sum(reps * count for reps, count in histogram.items() if reps >= 10)
    repeat_share = sum(
        reps * count for reps, count in histogram.items() if reps >= 2
    ) / total

    rows = [
        ["total scans", total, "~4,000"],
        ["unique scans", unique, "401"],
        ["scans occurring once", singletons, "183"],
        ["scans repeating", repeating, "218"],
        ["executions from scans repeating >=10x", ten_plus_scans, "~3,243"],
        ["share of scans that repeat", f"{repeat_share:.1%}", ">90 %"],
    ]
    histo_rows = [
        [f"repeats {reps}x", count] for reps, count in sorted(histogram.items())[:12]
    ]
    report = (
        format_table(
            ["metric", "measured", "paper"],
            rows,
            title="Fig. 14 - scan repetitions in Workload B",
        )
        + "\n\n"
        + format_table(["repetition count", "distinct scans"], histo_rows,
                       title="left plot: distinct scans per repetition count")
    )
    save_report("fig14_workload_b_scans", report)

    assert unique == 401
    assert singletons == 183
    assert repeating == 218
    assert abs(ten_plus_scans - 3243) < 200
    assert repeat_share > 0.9
