"""Figure 13: predicate-cache hit rate over time on Workload A.

Paper: 44,000 queries over a few hours; the hit rate starts near zero,
stays low through the first ~15,000 queries, then climbs as the
repeating working set stabilizes (reaching high rates late).

The stream is replayed against a *live* engine: each Workload A
template is a distinct filter combination on one fact table, so the
predicate-cache keys track template identity exactly.
"""

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.bench import format_series, format_table
from repro.storage import ColumnSpec, DataType, TableSchema
from repro.workloads import customer

from _util import save_report

NUM_QUERIES = 4400  # 10 % of the paper's 44,000-query stream


def test_fig13_hitrate_over_time(benchmark):
    db = Database(num_slices=2, rows_per_block=200)
    db.create_table(
        TableSchema(
            "facts",
            (
                ColumnSpec("f_key", DataType.INT64),
                ColumnSpec("f_value", DataType.FLOAT64),
                ColumnSpec("f_bucket", DataType.INT64),
            ),
        )
    )
    rng = np.random.default_rng(13)
    n = 40_000
    db.table("facts").insert(
        {
            "f_key": rng.integers(0, 1000, n),
            "f_value": rng.random(n),
            "f_bucket": rng.integers(0, 50, n),
        },
        db.begin(),
    )
    cache = PredicateCache(PredicateCacheConfig(variant="bitmap", bitmap_block_rows=200))
    engine = QueryEngine(db, predicate_cache=cache)
    statements = customer.workload_a_sql(num_queries=NUM_QUERIES, seed=13)

    def replay():
        window = max(1, NUM_QUERIES // 40)
        hit_rates = []
        last = cache.stats.snapshot()
        for i, sql in enumerate(statements, start=1):
            engine.execute(sql)
            if i % window == 0:
                delta = cache.stats.delta(last)
                hit_rates.append(delta.hits / max(1, delta.lookups))
                last = cache.stats.snapshot()
        return hit_rates

    hit_rates = benchmark.pedantic(replay, rounds=1, iterations=1)

    third = len(hit_rates) // 3
    early = float(np.mean(hit_rates[:third]))
    late = float(np.mean(hit_rates[-third:]))
    series = format_series("hit rate over time", hit_rates)
    table = format_table(
        ["phase", "measured hit rate", "paper"],
        [
            ["warmup (first third)", f"{early:.3f}", "low"],
            ["steady state (last third)", f"{late:.3f}", "high"],
            ["cumulative", f"{cache.stats.hit_rate:.3f}", "rising"],
        ],
        title=f"Fig. 13 - predicate cache hit rate over Workload A "
        f"({NUM_QUERIES} queries, paper runs 44,000)",
    )
    save_report("fig13_hitrate_over_time", table + "\n" + series)

    assert early < 0.55
    assert late > 0.85
    assert late > early + 0.3
