"""Figure 1: percentage of queries that repeat per cluster.

Paper: for more than 50 % of clusters, at least 75 % of queries repeat
within a month; the fleet-average repetition is ≈71.9 %.
"""

import numpy as np

from repro.analysis import query_repetition_rate
from repro.bench import format_table

from _util import save_report


def test_fig1_query_repetition(benchmark, fleet_workloads):
    def measure():
        return [query_repetition_rate(w.statements) for w in fleet_workloads]

    rates = benchmark.pedantic(measure, rounds=1, iterations=1)
    rates = np.array(rates)

    deciles = np.percentile(rates, [10, 25, 50, 75, 90])
    rows = [
        ["mean repetition", f"{rates.mean():.3f}", "~0.712 (Fig. 4 text)"],
        ["median cluster", f"{deciles[2]:.3f}", "-"],
        ["clusters with >=75% repetition", f"{(rates >= 0.75).mean():.2%}", ">50 %"],
        ["p10 / p90", f"{deciles[0]:.2f} / {deciles[4]:.2f}", "wide spread"],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 1 - query repetition per cluster (synthetic fleet)",
    )
    save_report("fig1_query_repetition", report)

    assert 0.55 < rates.mean() < 0.9
    assert (rates >= 0.75).mean() > 0.4
