"""Shared helpers for the per-table/figure benchmark harness.

Every benchmark prints the paper-style rows/series it reproduces and
also writes them to ``benchmarks/results/<experiment>.txt`` so the
paper-vs-measured record in EXPERIMENTS.md can be regenerated.
"""

from __future__ import annotations

import os

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_report(experiment: str, text: str) -> None:
    """Print the report and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def fresh_database(num_slices: int = 4, rows_per_block: int = 500) -> Database:
    return Database(num_slices=num_slices, rows_per_block=rows_per_block)


def engine_with_cache(
    database: Database, variant: str = "bitmap", **config
) -> QueryEngine:
    cache = PredicateCache(PredicateCacheConfig(variant=variant, **config))
    return QueryEngine(database, predicate_cache=cache)


def run_repeat(engine: QueryEngine, sql: str, warmups: int = 1):
    """Cold run then measured repeat (the paper's populated-cache run)."""
    cold = engine.execute(sql)
    measured = cold
    for _ in range(warmups):
        measured = engine.execute(sql)
    return cold, measured


def ratio(before: float, after: float) -> float:
    """Safe before/after speedup ratio."""
    if after <= 0:
        return float("inf") if before > 0 else 1.0
    return before / after
