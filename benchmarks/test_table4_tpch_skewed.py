"""Table 4: TPC-H (skewed) under Orig / PC^B / PC^R / PS.

Paper (geomeans over 22 queries on a 4-node cluster, 18 B-row scale):
runtime 2.97 -> 2.61 / 2.60 / 2.57 s; rows scanned 5.46 B -> 1.80 B /
1.45 B / 1.80 B (~3-4x fewer); blocks accessed 19.0 T -> 13.7 T /
13.6 T / 19.0 T (~30 % fewer for PC, none for PS).

We reproduce the *shape* at reduced scale: per-query counters for the
same four variants, geomean summary, and the paper's headline ratios.
"""

from repro.bench import Variant, compare_variants, format_table, geomean
from repro.core.config import PredicateCacheConfig
from repro.predicates import parse_predicate
from repro.workloads import tpch

from _util import fresh_database, save_report

SCALE = 0.01
SKEW = 1.0

# Predicate sorting clusters lineitem by common query predicates
# (coarse date splits first so within-group date order survives).
#
# Note on fidelity: our generated lineitem is *naturally date-clustered*
# (ingestion order), so zone maps already serve the many date-filtered
# queries; re-sorting trades that away for predicate-bit clustering.
# The paper's PS rows-scanned win (5.46 B -> 1.80 B) presupposes a
# baseline whose layout does not already match the workload.  What we
# reproduce exactly is the paper's *block-level* finding: PS does not
# reduce blocks accessed and worsens compression (Section 5.6).
SORT_PREDICATES = {
    "lineitem": [
        parse_predicate(f"l_shipdate >= {tpch.d('1996-01-01')}"),
        parse_predicate(f"l_shipdate >= {tpch.d('1994-01-01')}"),
        parse_predicate("l_discount between 0.07 and 0.09"),
        parse_predicate("l_quantity >= 45"),
        parse_predicate("l_returnflag = 'R'"),
    ]
}

# The paper's bitmap granularity is 1,000 rows per bit on 281 M-row
# slices (~4e-6 of a slice).  At laptop scale a proportional granularity
# keeps the two variants comparable, exactly as in the paper; we use
# 100 rows per bit on ~7.5 k-row slices.
VARIANTS = [
    Variant("Orig"),
    Variant("PC^B", PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100)),
    Variant("PC^R", PredicateCacheConfig(variant="range", max_ranges_per_slice=16384)),
    Variant("PS", sort_predicates=SORT_PREDICATES),
]


def test_table4_tpch_skewed(benchmark):
    queries = tpch.queries(skewed=True)

    def run():
        return compare_variants(
            lambda db: tpch.load(db, scale_factor=SCALE, skew=SKEW, seed=42),
            fresh_database,
            queries,
            VARIANTS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    by_variant = {
        name: {row.query: row for row in rows} for name, rows in results.items()
    }
    table_rows = []
    for query in queries:
        orig = by_variant["Orig"][query]
        row = [query]
        for name in ("Orig", "PC^B", "PC^R", "PS"):
            row.append(f"{by_variant[name][query].model_seconds:.4f}")
        for name in ("Orig", "PC^B", "PC^R", "PS"):
            row.append(by_variant[name][query].rows_scanned)
        for name in ("Orig", "PC^B", "PC^R", "PS"):
            row.append(by_variant[name][query].blocks_accessed)
        table_rows.append(row)

    def summary(metric):
        return {
            name: geomean([max(getattr(r, metric), 1e-9) for r in results[name]])
            for name in by_variant
        }

    runtime = summary("model_seconds")
    rows_scanned = {
        name: sum(r.rows_scanned for r in results[name]) for name in by_variant
    }
    blocks = {
        name: sum(r.blocks_accessed for r in results[name]) for name in by_variant
    }
    table_rows.append(
        ["GeoMean/Total"]
        + [f"{runtime[n]:.4f}" for n in ("Orig", "PC^B", "PC^R", "PS")]
        + [rows_scanned[n] for n in ("Orig", "PC^B", "PC^R", "PS")]
        + [blocks[n] for n in ("Orig", "PC^B", "PC^R", "PS")]
    )

    headers = (
        ["Query"]
        + [f"rt {n}" for n in ("Orig", "PC^B", "PC^R", "PS")]
        + [f"rows {n}" for n in ("Orig", "PC^B", "PC^R", "PS")]
        + [f"blk {n}" for n in ("Orig", "PC^B", "PC^R", "PS")]
    )
    report = format_table(
        headers,
        table_rows,
        title=(
            "Table 4 - TPC-H (skewed) runtime / rows scanned / blocks accessed\n"
            "paper shape: PC cuts rows ~3-4x and blocks ~30%, runtime geomean "
            "improves ~10-15%; PS cuts rows but not blocks"
        ),
    )
    save_report("table4_tpch_skewed", report)

    # -- shape assertions --------------------------------------------------
    # PC scans several times fewer rows overall (paper: 5.46B -> 1.80B).
    assert rows_scanned["PC^B"] < rows_scanned["Orig"] * 0.6
    assert rows_scanned["PC^R"] <= rows_scanned["PC^B"] * 1.05  # range >= precise
    # PC accesses fewer blocks (paper: ~30% fewer).
    assert blocks["PC^B"] < blocks["Orig"] * 0.9
    # Runtime geomean improves.
    assert runtime["PC^B"] < runtime["Orig"]
    assert runtime["PC^R"] < runtime["Orig"]
    # Predicate sorting: at our scale the baseline layout is already
    # date-clustered, so PS stays within ~10% of Orig on rows; the
    # paper-exact finding is that PS does NOT reduce blocks (Table 4:
    # 19.0 T vs 19.0 T) and degrades compression (more blocks).
    assert rows_scanned["PS"] <= rows_scanned["Orig"] * 1.10
    assert blocks["PS"] >= blocks["Orig"] * 0.95
    # No per-query slowdown beyond noise for PC (the paper's guarantee);
    # counters are deterministic, so this is exact on rows.
    for query in queries:
        assert (
            by_variant["PC^B"][query].rows_scanned
            <= by_variant["Orig"][query].rows_scanned
        ), query
