"""Figure 8: automated materialized view with predicate elevation.

Paper: TPC-H Q6's three filter predicates are elevated into the view's
grouping so that one view answers every literal choice; rewritten
queries scan the (much smaller) view.
"""


from repro import Database, QueryEngine
from repro.baselines.automv import AutoMVManager
from repro.bench import format_table
from repro.workloads import tpch

from _util import save_report


def test_fig8_automv_q6(benchmark):
    db = Database(num_slices=4, rows_per_block=500)
    tpch.load(db, scale_factor=0.01, skew=0.0, seed=8)
    engine = QueryEngine(db)
    manager = AutoMVManager(engine, create_threshold=2)

    q6 = tpch.query("Q6")
    direct = engine.execute(q6)
    manager.process(q6)  # observe
    plan = manager.process(q6)  # creates the view + rewrite
    assert plan is not None

    def run_via_view():
        rewritten = manager.process(q6)
        return engine.execute_plan(rewritten)

    via_view = benchmark.pedantic(run_via_view, rounds=1, iterations=1)

    # A different-literal Q6 still hits the same view (the elevation).
    q6_other = q6.replace("0.05", "0.02").replace("0.07", "0.04")
    other_plan = manager.process(q6_other)
    other_direct = engine.execute(q6_other)
    other_via = engine.execute_plan(other_plan)

    view = next(iter(manager.views.values()))
    view_rows = engine.database.table(view.name).num_rows
    base_rows = engine.database.table("lineitem").num_rows

    rows = [
        ["views created", len(manager.views), "1 per template"],
        ["elevated columns", ", ".join(view.elevated_columns), "shipdate/discount/quantity"],
        ["view rows vs lineitem rows", f"{view_rows} / {base_rows}", "much smaller"],
        ["result matches direct", f"{float(via_view.scalar()):.2f} == {float(direct.scalar()):.2f}", "exact"],
        [
            "different literals reuse view",
            f"{float(other_via.scalar()):.2f} == {float(other_direct.scalar()):.2f}",
            "hit via elevation",
        ],
        [
            "rows scanned (view vs base)",
            f"{via_view.counters.rows_scanned} vs {direct.counters.rows_scanned}",
            "view wins",
        ],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 8 - AutoMV with predicate elevation for TPC-H Q6",
    )
    save_report("fig8_automv_q6", report)

    assert abs(float(via_view.scalar()) - float(direct.scalar())) < 1e-6
    assert abs(float(other_via.scalar()) - float(other_direct.scalar())) < 1e-6
    assert set(view.elevated_columns) == {"l_shipdate", "l_discount", "l_quantity"}
    assert view_rows < base_rows
