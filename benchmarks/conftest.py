"""Shared fixtures for the benchmark harness."""

import pytest

from repro.workloads import fleet


@pytest.fixture(scope="session")
def fleet_workloads():
    """One synthetic fleet shared by the Section 2 benchmarks."""
    profiles = fleet.sample_fleet(
        num_clusters=120, statements_per_cluster=1500, seed=2023
    )
    return [fleet.generate_workload(p, seed=2023) for p in profiles]
