"""Table 1: qualitative comparison of the caching techniques.

The paper scores result caching, materialized views, sorting, and
predicate caching on build overhead, maintenance overhead, gain, and
hit rate.  This bench *derives* the scorecard from measurements on one
shared scenario — a repetitive, literal-varying, update-interleaved
query stream — instead of asserting opinions:

* build overhead      — extra time of the first (cache-building) run,
* maintenance overhead— work to be back at full speed after an insert,
* gain                — speedup of a repeat over the cold run,
* hit rate            — fraction of the stream answered by the cache.
"""

import time

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.baselines.automv import AutoMVManager
from repro.baselines.result_cache import ResultCache
from repro.baselines.sorting import PredicateSorter
from repro.bench import format_table
from repro.predicates import parse_predicate
from repro.workloads import tpch

from _util import save_report


def _stream(num=60, seed=1):
    """A Q6-template stream: repeating with varying literals + inserts."""
    rng = np.random.default_rng(seed)
    template = (
        "select sum(l_extendedprice * l_discount) as revenue from lineitem "
        "where l_shipdate >= {lo} and l_shipdate < {hi} "
        "and l_discount between 0.05 and 0.07 and l_quantity < 24"
    )
    starts = [tpch.d("1994-01-01") + int(d) for d in rng.integers(0, 300, 8)]
    events = []
    for i in range(num):
        if i % 10 == 9:
            events.append(("insert", None))
        else:
            lo = starts[int(rng.integers(len(starts)))]
            events.append(("select", template.format(lo=lo, hi=lo + 90)))
    return events


def _fresh():
    db = Database(num_slices=2, rows_per_block=500)
    tpch.load(db, scale_factor=0.005, skew=0.8, seed=21)
    return db


def _insert_row(engine):
    names = engine.database.table("lineitem").schema.column_names
    values = [1, 1, 1, 1, 10.0, 100.0, 0.06, 0.0, "N", "O",
              tpch.d("1994-02-01"), 9000, 9100, "NONE", "AIR"]
    engine.insert("lineitem", dict(zip(names, [[v] for v in values])))


def _run_stream(make_engine, use_automv=False, presort=False):
    db = _fresh()
    if presort:
        PredicateSorter(
            [parse_predicate("l_discount between 0.05 and 0.07"),
             parse_predicate("l_quantity < 24")]
        ).apply(db.table("lineitem"))
    engine, cache_hit_fn = make_engine(db)
    manager = AutoMVManager(engine, create_threshold=2) if use_automv else None

    events = _stream()
    answered = 0
    selects = 0
    work = []
    for kind, sql in events:
        if kind == "insert":
            _insert_row(engine)
            continue
        selects += 1
        started = time.perf_counter()
        if manager is not None:
            plan = manager.process(sql)
            if plan is not None:
                engine.execute_plan(plan)
                answered += 1
            else:
                engine.execute(sql)
        else:
            result = engine.execute(sql)
            if cache_hit_fn(result):
                answered += 1
        work.append(time.perf_counter() - started)
    return answered / selects, float(np.mean(work))


def test_table1_technique_comparison(benchmark):
    def run():
        rows = {}
        # Result cache.
        rows["Result Caching"] = _run_stream(
            lambda db: (
                QueryEngine(db, result_cache=ResultCache()),
                lambda r: r.counters.result_cache_hit,
            )
        )
        # AutoMV.
        rows["MVs (AutoMV)"] = _run_stream(
            lambda db: (QueryEngine(db), lambda r: False), use_automv=True
        )
        # Sorting.
        rows["Sorting (pred.)"] = _run_stream(
            lambda db: (QueryEngine(db), lambda r: False), presort=True
        )
        # Predicate caching.
        rows["Predicate Caching"] = _run_stream(
            lambda db: (
                QueryEngine(
                    db,
                    predicate_cache=PredicateCache(
                        PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100)
                    ),
                ),
                lambda r: r.counters.cache_hits > 0 and r.counters.cache_misses == 0,
            )
        )
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    table = [
        [name, f"{hit_rate:.2f}", f"{mean_work * 1000:.1f} ms"]
        for name, (hit_rate, mean_work) in measured.items()
    ]
    report = format_table(
        ["technique", "hit rate on stream", "mean work per query"],
        table,
        title=(
            "Table 1 - caching techniques on a literal-varying, "
            "update-interleaved stream\n"
            "paper: result cache ++gain/--hit; MV ++hit/--overhead; "
            "predicate cache ++build/+maintenance/+gain/+hit"
        ),
    )
    save_report("table1_technique_comparison", report)

    rc_hit, _ = measured["Result Caching"]
    mv_hit, _ = measured["MVs (AutoMV)"]
    pc_hit, _ = measured["Predicate Caching"]
    # Result caching suffers from literal variation + updates (-- hit).
    assert rc_hit < 0.6
    # AutoMV generalizes across literals (++ hit).
    assert mv_hit > rc_hit
    # The predicate cache keeps a high hit rate despite the inserts
    # (entries survive appends; + hit, between RC and MV or better).
    assert pc_hit > rc_hit
