"""Figure 9: the Qd-tree cut on (x < 10, y > 42).

Paper: the two cut predicates split the table into four partitions; a
scan with both predicates reads only one of the four parts, and a
narrower predicate (x < 5) still exploits the x < 10 cut.
"""

import numpy as np

from repro import Database, QueryEngine
from repro.baselines.qdtree import QdTree
from repro.bench import format_table
from repro.predicates import parse_predicate
from repro.storage import ColumnSpec, DataType, TableSchema

from _util import save_report


def test_fig9_qdtree_cut(benchmark):
    db = Database(num_slices=1, rows_per_block=100)
    db.create_table(
        TableSchema(
            "t", (ColumnSpec("x", DataType.INT64), ColumnSpec("y", DataType.INT64))
        )
    )
    rng = np.random.default_rng(9)
    n = 20_000
    db.table("t").insert(
        {"x": rng.integers(0, 20, n), "y": rng.integers(0, 100, n)}, db.begin()
    )
    predicates = [parse_predicate("x < 10"), parse_predicate("y > 42")]
    tree = QdTree(predicates, min_leaf_rows=100)

    benchmark.pedantic(lambda: tree.build_and_apply(db.table("t")), rounds=1, iterations=1)

    both = tree.candidate_ranges({0: True, 1: True}, 0)
    narrower = tree.candidate_ranges({0: True}, 0)
    engine = QueryEngine(db)
    exact = engine.execute("select count(*) as c from t where x < 10 and y > 42").scalar()

    rows = [
        ["partitions", tree.num_leaves, "4"],
        ["rows for x<10 AND y>42", f"{both.num_rows} of {n}", "1 of 4 parts"],
        ["exact matches inside", int(exact), "all covered"],
        ["rows for narrower x<5", f"{narrower.num_rows} of {n}", "2 of 4 parts"],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 9 - Qd-tree cut on (x < 10, y > 42)",
    )
    save_report("fig9_qdtree_cut", report)

    assert tree.num_leaves == 4
    assert both.num_rows <= n * 0.35          # ~one quarter (+ rounding)
    assert exact <= both.num_rows             # no false negatives
    assert n * 0.4 <= narrower.num_rows <= n * 0.6
