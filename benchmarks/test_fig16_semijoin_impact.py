"""Figure 16: impact of caching semi-join filters (TPC-H skewed).

Paper: including semi-join filters in the cache keys makes entries up
to 100x more selective; query speedups reach ~10x on selected queries
(Q19-type) while most queries see moderate gains.
"""

from repro.bench import Variant, compare_variants, format_table, geomean
from repro.core.config import PredicateCacheConfig
from repro.workloads import tpch

from _util import fresh_database, ratio, save_report

VARIANTS = [
    Variant("Orig"),
    Variant(
        "PC no-join",
        PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100, cache_join_keys=False),
    ),
    Variant(
        "PC with-join",
        PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100, cache_join_keys=True),
    ),
]


def test_fig16_semijoin_impact(benchmark):
    queries = tpch.queries(skewed=True)

    def run():
        return compare_variants(
            lambda db: tpch.load(db, scale_factor=0.01, skew=1.0, seed=42),
            fresh_database,
            queries,
            VARIANTS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    by_variant = {
        name: {r.query: r for r in rows} for name, rows in results.items()
    }

    rows = []
    speedups_with = []
    speedups_without = []
    for query in queries:
        orig = by_variant["Orig"][query].model_seconds
        without = by_variant["PC no-join"][query].model_seconds
        with_join = by_variant["PC with-join"][query].model_seconds
        speedups_without.append(ratio(orig, without))
        speedups_with.append(ratio(orig, with_join))
        rows.append(
            [
                query,
                by_variant["Orig"][query].rows_scanned,
                by_variant["PC no-join"][query].rows_scanned,
                by_variant["PC with-join"][query].rows_scanned,
                f"{ratio(orig, without):.2f}x",
                f"{ratio(orig, with_join):.2f}x",
            ]
        )
    rows.append(
        [
            "GeoMean",
            "-", "-", "-",
            f"{geomean(speedups_without):.2f}x",
            f"{geomean(speedups_with):.2f}x",
        ]
    )
    report = format_table(
        ["Query", "rows Orig", "rows PC-nojoin", "rows PC-join",
         "speedup nojoin", "speedup join"],
        rows,
        title=(
            "Fig. 16 - impact of caching semi-join filters (TPC-H skewed)\n"
            "paper shape: join caching lifts the top queries to ~10x; "
            "without it gains are modest"
        ),
    )
    save_report("fig16_semijoin_impact", report)

    # The join index adds real benefit over filter-only caching.
    assert geomean(speedups_with) > geomean(speedups_without)
    # Selected queries reach multi-x speedups with the join index
    # (paper: up to 10x; exact factor depends on scale).
    assert max(speedups_with) > 3.0
    # Join-index entries are strictly more selective: never more rows.
    for query in queries:
        assert (
            by_variant["PC with-join"][query].rows_scanned
            <= by_variant["PC no-join"][query].rows_scanned
        ), query
