"""Figure 18: combining predicate caching with predicate sorting.

Paper: both approaches provide similar gains, but together they do not
lead to additional benefits on TPC-H — the techniques overlap.
"""

from repro.bench import Variant, compare_variants, format_table, geomean
from repro.core.config import PredicateCacheConfig
from repro.predicates import parse_predicate
from repro.workloads import tpch

from _util import fresh_database, save_report

SORT_PREDICATES = {
    "lineitem": [
        parse_predicate(f"l_shipdate >= {tpch.d('1996-01-01')}"),
        parse_predicate(f"l_shipdate >= {tpch.d('1994-01-01')}"),
        parse_predicate("l_discount between 0.07 and 0.09"),
        parse_predicate("l_quantity >= 45"),
        parse_predicate("l_returnflag = 'R'"),
    ]
}

PC_CONFIG = PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100)

VARIANTS = [
    Variant("Orig"),
    Variant("PC", PC_CONFIG),
    Variant("PS", sort_predicates=SORT_PREDICATES),
    Variant("PC+PS", PC_CONFIG, sort_predicates=SORT_PREDICATES),
]


def test_fig18_pc_plus_sorting(benchmark):
    queries = tpch.queries(skewed=True)

    def run():
        return compare_variants(
            lambda db: tpch.load(db, scale_factor=0.01, skew=1.0, seed=42),
            fresh_database,
            queries,
            VARIANTS,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    runtime = {
        name: geomean([max(r.model_seconds, 1e-9) for r in rows])
        for name, rows in results.items()
    }
    rows_scanned = {
        name: sum(r.rows_scanned for r in rows) for name, rows in results.items()
    }
    table = [
        [name, f"{runtime[name]:.4f}", rows_scanned[name]]
        for name in ("Orig", "PC", "PS", "PC+PS")
    ]
    report = format_table(
        ["variant", "geomean model rt", "rows scanned"],
        table,
        title=(
            "Fig. 18 - predicate caching + predicate sorting combined\n"
            "paper shape: PC+PS adds no significant benefit over PC alone"
        ),
    )
    save_report("fig18_pc_plus_sorting", report)

    # PC helps.
    assert runtime["PC"] < runtime["Orig"]
    # Combining does not add significant benefit over PC alone
    # (paper Fig. 18: "no significant performance improvements").
    assert runtime["PC+PS"] > runtime["PC"] * 0.85
    assert rows_scanned["PC+PS"] > rows_scanned["PC"] * 0.7
