"""Ablation: always-admit vs cost-based admission (§4.1.2).

A workload mixing hot dashboard templates with a long tail of one-off
exploration queries.  Always-admit builds an entry for every one-off
(memory without benefit); the cost-based policy waits for a repeat and
skips unselective scans — at the cost of one extra uncached execution
per admitted key.
"""

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.bench import format_table
from repro.core import AlwaysAdmit, CostBasedPolicy
from repro.storage import ColumnSpec, DataType, TableSchema

from _util import save_report


def _workload(seed=7, num=300):
    rng = np.random.default_rng(seed)
    hot = [f"select count(*) as c from t where x between {i * 50} and {i * 50 + 30}"
           for i in range(6)]
    statements = []
    for i in range(num):
        if rng.random() < 0.6:
            statements.append(hot[int(rng.integers(len(hot)))])
        else:
            lo = int(rng.integers(0, 10_000))
            statements.append(
                f"select count(*) as c from t where x between {lo} and {lo + 17}"
            )
    return statements


def _replay(policy):
    db = Database(num_slices=2, rows_per_block=100)
    db.create_table(TableSchema("t", (ColumnSpec("x", DataType.INT64),)))
    cache = PredicateCache(
        PredicateCacheConfig(variant="bitmap", bitmap_block_rows=100), policy=policy
    )
    engine = QueryEngine(db, predicate_cache=cache)
    engine.insert("t", {"x": np.arange(50_000) % 10_000})
    rows = 0
    for sql in _workload():
        rows += engine.execute(sql).counters.rows_scanned
    return {
        "entries": len(cache),
        "bytes": cache.total_nbytes,
        "hit_rate": cache.stats.hit_rate,
        "rows": rows,
    }


def test_ablation_policy(benchmark):
    def run():
        return (
            _replay(AlwaysAdmit()),
            _replay(CostBasedPolicy(min_sightings=2, max_selectivity=0.5)),
        )

    always, cost_based = benchmark.pedantic(run, rounds=1, iterations=1)
    report = format_table(
        ["policy", "entries", "cache bytes", "hit rate", "rows scanned"],
        [
            ["always admit (prototype)", always["entries"], always["bytes"],
             f"{always['hit_rate']:.2f}", always["rows"]],
            ["cost-based (repeat + selective)", cost_based["entries"],
             cost_based["bytes"], f"{cost_based['hit_rate']:.2f}",
             cost_based["rows"]],
        ],
        title=(
            "Ablation - admission policy on a hot/one-off mixed stream\n"
            "cost-based admission avoids entries for the one-off tail"
        ),
    )
    save_report("ablation_policy", report)

    # Cost-based keeps far fewer entries (only the hot templates) ...
    assert cost_based["entries"] < always["entries"] * 0.3
    assert cost_based["bytes"] < always["bytes"]
    # ... while scanning at most slightly more rows (one uncached run
    # per admitted key).
    assert cost_based["rows"] < always["rows"] * 1.25
