"""Figure 3: reads vs writes per cluster.

Paper: 60 % of clusters execute more read than write statements; for
the remaining 40 % data manipulation dominates.
"""

import numpy as np

from repro.analysis import read_write_ratio
from repro.bench import format_table

from _util import save_report


def test_fig3_read_write_ratio(benchmark, fleet_workloads):
    def measure():
        return [read_write_ratio(w.statements) for w in fleet_workloads]

    ratios = benchmark.pedantic(measure, rounds=1, iterations=1)
    finite = np.array([r for r in ratios if np.isfinite(r)])
    read_heavy = np.mean([r > 1 for r in ratios])

    rows = [
        ["clusters reading more than writing", f"{read_heavy:.2%}", "~60 %"],
        ["median read/write ratio", f"{np.median(finite):.2f}", "-"],
        [
            "write-dominated clusters",
            f"{np.mean([r <= 1 for r in ratios]):.2%}",
            "~40 %",
        ],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 3 - read vs write statements per cluster",
    )
    save_report("fig3_read_write_ratio", report)

    assert 0.35 < read_heavy < 0.85
