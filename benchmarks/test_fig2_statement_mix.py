"""Figure 2: statement-type mix per cluster.

Paper: selects dominate only for ~25 % of clusters (>50 % selects);
data-manipulation statements account for nearly as much as selects.
"""

import numpy as np

from repro.analysis import statement_mix
from repro.bench import format_table

from _util import save_report


def test_fig2_statement_mix(benchmark, fleet_workloads):
    def measure():
        return [statement_mix(w.statements) for w in fleet_workloads]

    mixes = benchmark.pedantic(measure, rounds=1, iterations=1)
    select_shares = np.array([m["select"] for m in mixes])
    dml_shares = np.array(
        [m["insert"] + m["copy"] + m["delete"] + m["update"] for m in mixes]
    )

    rows = [
        [
            "clusters with >50% selects",
            f"{(select_shares > 0.5).mean():.2%}",
            "~25 %",
        ],
        ["mean select share", f"{select_shares.mean():.3f}", "0.423"],
        ["mean DML share", f"{dml_shares.mean():.3f}", "0.346"],
        [
            "select share p10/p90",
            f"{np.percentile(select_shares, 10):.2f} / "
            f"{np.percentile(select_shares, 90):.2f}",
            "wide spread",
        ],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 2 - statement mix per cluster (synthetic fleet)",
    )
    save_report("fig2_statement_mix", report)

    assert 0.1 < (select_shares > 0.5).mean() < 0.5
    assert abs(select_shares.mean() - 0.423) < 0.1
