"""Figure 5: repetition rates grouped by scanned-table size.

Paper: queries on extra-large tables are *less* repetitive than queries
on small tables, but scan repetition is roughly size-independent — the
argument for caching scans rather than query results.
"""

from repro.analysis import repetition_by_table_size
from repro.bench import format_table
from repro.workloads.fleet import TABLE_SIZE_BUCKETS

from _util import save_report


def test_fig5_repetition_by_size(benchmark, fleet_workloads):
    def measure():
        merged = [s for w in fleet_workloads for s in w.statements]
        return repetition_by_table_size(merged)

    buckets = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = []
    for name, _, _ in TABLE_SIZE_BUCKETS:
        query_rate, scan_rate = buckets[name]
        rows.append([name, f"{query_rate:.3f}", f"{scan_rate:.3f}"])
    report = format_table(
        ["table size", "query repetition", "scan repetition"],
        rows,
        title="Fig. 5 - repetition by scanned-table size "
        "(paper: query rate drops for xlarge, scan rate does not)",
    )
    save_report("fig5_repetition_by_size", report)

    q_small, s_small = buckets["small"]
    q_xl, s_xl = buckets["xlarge"]
    assert q_xl < q_small          # queries on huge tables repeat less
    assert s_xl > q_xl             # ... but their scans still repeat
