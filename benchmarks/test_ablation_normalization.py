"""Ablation: predicate normalization vs raw string keys (§4.1.2).

The paper caches the optimizer's string representation and conjectures
that CNF normalization "increas[es] the hit rate" but that strings are
"already highly repetitive".  This bench quantifies both halves: on a
stream of *textually identical* repeats normalization adds nothing; on
a stream of *syntactic variants* (reordered conjuncts arrive canonical
already; redundant bounds and NOT forms do not) it recovers the misses.
"""

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.bench import format_table
from repro.storage import ColumnSpec, DataType, TableSchema

from _util import save_report

# Semantically identical Q6-style restrictions, syntactically varied.
VARIANTS = [
    "x >= 5 and x < 9",
    "x < 9 and x >= 5",              # reordering (string keys handle this)
    "x > 3 and x >= 5 and x < 9",    # redundant bound
    "not x < 5 and x < 9",           # negated form
    "x >= 5 and x < 9 and x < 20",   # extra slack bound
]


def _replay(normalize_keys):
    db = Database(num_slices=2, rows_per_block=100)
    db.create_table(TableSchema("t", (ColumnSpec("x", DataType.INT64),)))
    engine = QueryEngine(
        db,
        predicate_cache=PredicateCache(
            PredicateCacheConfig(normalize_keys=normalize_keys)
        ),
    )
    engine.insert("t", {"x": np.arange(20_000) % 100})
    rng = np.random.default_rng(5)
    answers = set()
    for _ in range(40):
        variant = VARIANTS[int(rng.integers(len(VARIANTS)))]
        result = engine.execute(f"select count(*) as c from t where {variant}")
        answers.add(int(result.scalar()))
    stats = engine.predicate_cache.stats
    assert len(answers) == 1  # all variants are the same question
    return stats.hit_rate, len(engine.predicate_cache)


def test_ablation_normalization(benchmark):
    def run():
        raw = _replay(normalize_keys=False)
        normalized = _replay(normalize_keys=True)
        return raw, normalized

    (raw_rate, raw_entries), (norm_rate, norm_entries) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report = format_table(
        ["key scheme", "hit rate", "entries"],
        [
            ["raw strings (paper prototype)", f"{raw_rate:.2f}", raw_entries],
            ["normalized (CNF + intervals)", f"{norm_rate:.2f}", norm_entries],
        ],
        title=(
            "Ablation - normalized cache keys on syntactic variants\n"
            "paper: string keys suffice for identical repeats; "
            "normalization unifies variants"
        ),
    )
    save_report("ablation_normalization", report)

    assert norm_rate > raw_rate
    assert norm_entries < raw_entries
    assert norm_entries == 1  # every variant collapses to one key
