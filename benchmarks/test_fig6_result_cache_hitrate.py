"""Figure 6: result-cache hit rate per cluster.

Paper: despite high query repetition, only ~15 % of clusters answer
more than half their queries from the result cache; the fleet average
is around 20 %.
"""

import numpy as np

from repro.analysis import simulate_result_cache
from repro.bench import format_table

from _util import save_report


def test_fig6_result_cache_hitrate(benchmark, fleet_workloads):
    def measure():
        return [simulate_result_cache(w.statements) for w in fleet_workloads]

    sims = benchmark.pedantic(measure, rounds=1, iterations=1)
    hit_rates = np.array([s.hit_rate for s in sims])

    rows = [
        ["fleet-average hit rate", f"{hit_rates.mean():.3f}", "~0.20"],
        [
            "clusters with >50% hit rate",
            f"{(hit_rates > 0.5).mean():.2%}",
            "~15 %",
        ],
        ["median hit rate", f"{np.median(hit_rates):.3f}", "low"],
    ]
    report = format_table(
        ["metric", "measured", "paper"],
        rows,
        title="Fig. 6 - result cache hit rate per cluster",
    )
    save_report("fig6_result_cache_hitrate", report)

    assert hit_rates.mean() < 0.5
    assert (hit_rates > 0.5).mean() < 0.5
