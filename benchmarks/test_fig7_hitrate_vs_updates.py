"""Figure 7: result-cache hit rate vs update rate.

Paper: clusters with almost no updates answer >80 % of queries from the
result cache; the hit rate collapses as the update rate grows.
"""

import numpy as np

from repro.analysis import simulate_result_cache
from repro.bench import format_table
from repro.workloads import fleet

from _util import save_report


def test_fig7_hitrate_vs_updates(benchmark, fleet_workloads):
    def measure():
        sims = [simulate_result_cache(w.statements) for w in fleet_workloads]
        # Add a dedicated no-update cohort (the paper's left edge).
        for i in range(8):
            profile = fleet.ClusterProfile(
                cluster_id=10_000 + i,
                num_statements=1500,
                target_repetition=0.85,
                statement_mix={
                    "select": 0.95, "insert": 0.0, "copy": 0.0,
                    "delete": 0.0, "update": 0.0, "other": 0.05,
                },
                table_rows=[10**6] * 10,
                scan_share=0.8,
            )
            workload = fleet.generate_workload(profile, seed=7)
            sims.append(simulate_result_cache(workload.statements))
        return sims

    sims = benchmark.pedantic(measure, rounds=1, iterations=1)

    bins = [(0.0, 0.02), (0.02, 0.1), (0.1, 0.25), (0.25, 0.5), (0.5, 1.01)]
    rows = []
    series = []
    for lo, hi in bins:
        rates = [s.hit_rate for s in sims if lo <= s.write_fraction < hi]
        mean = float(np.mean(rates)) if rates else float("nan")
        series.append((lo, mean, len(rates)))
        rows.append([f"{lo:.0%}-{hi:.0%}", len(rates), f"{mean:.3f}"])
    report = format_table(
        ["update-rate bin", "clusters", "mean hit rate"],
        rows,
        title="Fig. 7 - result cache hit rate vs update rate "
        "(paper: >0.8 with no updates, collapsing as updates grow)",
    )
    save_report("fig7_hitrate_vs_updates", report)

    no_update = [m for lo, m, n in series if lo == 0.0 and n > 0]
    heavy = [m for lo, m, n in series if lo >= 0.25 and n > 0]
    assert no_update and no_update[0] > 0.6
    assert all(no_update[0] > h for h in heavy)
