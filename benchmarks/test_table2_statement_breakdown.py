"""Table 2: fleet-wide SQL statement percentages.

Paper: select 42.3 %, insert 17.8 %, copy 6.9 %, delete 6.3 %,
update 3.6 %, other 23.3 %.
"""


from repro.bench import format_table
from repro.workloads.fleet import STATEMENT_KINDS

from _util import save_report

PAPER = {
    "select": 42.3,
    "insert": 17.8,
    "copy": 6.9,
    "delete": 6.3,
    "update": 3.6,
    "other": 23.3,
}


def test_table2_statement_breakdown(benchmark, fleet_workloads):
    def measure():
        counts = {kind: 0 for kind in STATEMENT_KINDS}
        total = 0
        for workload in fleet_workloads:
            for statement in workload.statements:
                counts[statement.kind] += 1
                total += 1
        return {kind: 100.0 * n / total for kind, n in counts.items()}

    measured = benchmark.pedantic(measure, rounds=1, iterations=1)

    rows = [
        [kind, f"{measured[kind]:.1f} %", f"{PAPER[kind]:.1f} %"]
        for kind in STATEMENT_KINDS
    ]
    report = format_table(
        ["statement type", "measured", "paper"],
        rows,
        title="Table 2 - SQL statements run on the clusters (fleet-wide)",
    )
    save_report("table2_statement_breakdown", report)

    for kind in STATEMENT_KINDS:
        assert abs(measured[kind] - PAPER[kind]) < 8.0, kind
