"""Figure 15: overhead of building predicate-cache entries.

Paper methodology: run TPC-H and TPC-DS with an empty cache, forcing
every filtered scan to insert a new entry, never *using* entries; clear
the cache after every query.  Most queries see <1 % difference and the
average degradation is below 0.5 %.

Our engine is Python, so absolute overheads are noisier; we measure the
same protocol with repeated interleaved runs and report medians, and we
additionally verify the *counter-level* guarantee: entry construction
never changes rows scanned or blocks accessed.
"""

import time

import numpy as np

from repro import Database, PredicateCache, PredicateCacheConfig, QueryEngine
from repro.bench import format_table
from repro.workloads import tpcds_lite, tpch

from _util import save_report

REPEATS = 9


def _best_runtimes(engine, queries, cache):
    """Best-of-N wall time per query; cache cleared after every run.

    The minimum is the standard low-noise estimator for overhead
    microbenchmarks: it measures the work, not the scheduler.
    """
    times = {name: [] for name in queries}
    for _ in range(REPEATS):
        for name, sql in queries.items():
            started = time.perf_counter()
            engine.execute(sql)
            times[name].append(time.perf_counter() - started)
            if cache is not None:
                cache.clear()
    return {name: float(np.min(ts)) for name, ts in times.items()}


def test_fig15_build_overhead(benchmark):
    def run():
        rows = []
        overheads = []
        for label, loader, queries in (
            (
                "TPC-H",
                lambda db: tpch.load(db, scale_factor=0.005, skew=1.0, seed=15),
                tpch.queries(skewed=True),
            ),
            (
                "TPC-DS",
                lambda db: tpcds_lite.load(db, scale_factor=0.003, seed=15),
                tpcds_lite.queries(),
            ),
        ):
            db = Database(num_slices=2, rows_per_block=500)
            loader(db)
            plain_engine = QueryEngine(db)
            cache = PredicateCache(PredicateCacheConfig())
            caching_engine = QueryEngine(db, predicate_cache=cache)

            base = _best_runtimes(plain_engine, queries, None)
            building = _best_runtimes(caching_engine, queries, cache)

            for name in queries:
                overhead = (building[name] - base[name]) / base[name]
                overheads.append(overhead)
                rows.append([f"{label} {name}", f"{overhead:+.1%}"])

                # Counter-exact guarantee: building entries changes no
                # scan work.
                b = plain_engine.execute(queries[name])
                cache.clear()
                c = caching_engine.execute(queries[name])
                cache.clear()
                assert b.counters.rows_scanned == c.counters.rows_scanned, name
        return rows, overheads

    rows, overheads = benchmark.pedantic(run, rounds=1, iterations=1)
    average = float(np.mean(overheads))
    rows.append(["average", f"{average:+.1%}"])
    report = format_table(
        ["query", "build-overhead (best-of-N wall time)"],
        rows,
        title=(
            "Fig. 15 - overhead of inserting predicate-cache entries\n"
            "paper: within +/-1 % for most queries, average < 0.5 % "
            "(C++/SIMD engine; Python medians are noisier)"
        ),
    )
    save_report("fig15_build_overhead", report)

    # The average overhead stays small even in Python.
    assert average < 0.15
