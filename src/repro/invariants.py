"""Debug-mode invariant validator (``REPRO_VALIDATE=1``).

The paper's safety argument rests on representation invariants that the
engine never re-checks at runtime: cached range lists are sorted,
disjoint, and non-empty (§4.1.1); a bitmap covers exactly the rows below
its watermark (§4.1.2); cached states never describe rows beyond their
slice; entries never outlive the invalidation generation they were
stamped with (§4.3).  Violating any of these silently turns "approximate
but superset-of-truth" into "wrong answers".

This module makes those invariants machine-checked.  Validation is
**off by default and zero-cost when off**: every hook site guards with

    if invariants.ACTIVE:
        invariants.check_...(...)

i.e. one module-attribute read and a branch.  It is enabled by setting
``REPRO_VALIDATE=1`` in the environment (CI does, on the tier-1 test
job) or programmatically via :func:`enable` in tests.  A failed check
raises :class:`InvariantViolation` (an ``AssertionError`` subclass) with
enough context to reproduce.

Hook points (all behind the ``ACTIVE`` guard):

* ``RangeList._wrap`` — every trusted (already-normalized) construction
  re-verifies the bounds-array invariant.
* ``PredicateCache.record_slice_scan`` / ``install_restored`` — slice
  states, generation stamps, and cache accounting.
* ``CacheStore._write_snapshot`` — every snapshot rotation decodes its
  own bytes and compares records (round-trip self-check).

The module deliberately imports nothing from the rest of the package
(only numpy), so any module may call into it without import cycles;
checks are duck-typed over the objects they receive.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from numpy.typing import NDArray

__all__ = [
    "ACTIVE",
    "InvariantViolation",
    "enable",
    "disable",
    "enabled",
    "check_bounds",
    "check_slice_state",
    "check_cache",
    "check_snapshot_roundtrip",
]


def _env_active() -> bool:
    return os.environ.get("REPRO_VALIDATE", "") not in ("", "0")


#: Hook sites read this module attribute on every call; keep it a plain
#: bool so the disabled fast path is one attribute load and a branch.
ACTIVE: bool = _env_active()


class InvariantViolation(AssertionError):
    """A machine-checked representation invariant does not hold."""


def enable() -> None:
    """Turn validation on for this process (tests, debugging)."""
    global ACTIVE
    ACTIVE = True


def disable() -> None:
    """Turn validation off again."""
    global ACTIVE
    ACTIVE = False


def enabled() -> bool:
    return ACTIVE


def _fail(message: str) -> None:
    raise InvariantViolation(message)


# -- range lists ------------------------------------------------------------


def check_bounds(bounds: "NDArray[np.int64]") -> None:
    """The RangeList normalization invariant on a raw bounds array.

    Checks (DESIGN.md §6): shape ``(N, 2)``, dtype int64, starts >= 0,
    every range non-empty (``start < end``), and strictly increasing
    with positive gaps (``end[i] < start[i+1]``) — sorted, disjoint,
    non-adjacent.
    """
    arr = np.asarray(bounds)
    if arr.ndim != 2 or arr.shape[1] != 2:
        _fail(f"bounds must have shape (N, 2), got {arr.shape}")
    if arr.dtype != np.int64:
        _fail(f"bounds must be int64, got {arr.dtype}")
    if len(arr) == 0:
        return
    if int(arr[0, 0]) < 0:
        _fail(f"range start must be >= 0, got {int(arr[0, 0])}")
    if not bool((arr[:, 0] < arr[:, 1]).all()):
        bad = arr[arr[:, 0] >= arr[:, 1]][0]
        _fail(f"empty/inverted range [{int(bad[0])},{int(bad[1])}) in bounds")
    if len(arr) > 1 and not bool((arr[:-1, 1] < arr[1:, 0]).all()):
        idx = int(np.flatnonzero(arr[:-1, 1] >= arr[1:, 0])[0])
        _fail(
            "bounds not sorted/disjoint/non-adjacent at index "
            f"{idx}: [{int(arr[idx, 0])},{int(arr[idx, 1])}) then "
            f"[{int(arr[idx + 1, 0])},{int(arr[idx + 1, 1])})"
        )


# -- slice states -----------------------------------------------------------


def check_slice_state(state: Any, slice_rows: Optional[int] = None) -> None:
    """Per-slice cached state invariants (both index variants, §4.1).

    * range variant: bounds invariant holds, at most ``max_ranges``
      ranges, all rows below the ``last_cached_row`` watermark;
    * bitmap variant: the bit vector is bool with exactly
      ``ceil(last_cached_row / block_size)`` bits;
    * both: ``0 <= last_cached_row`` and, when the owning slice's row
      count is known, ``last_cached_row <= slice_rows`` (a state must
      never describe rows its slice does not have).
    """
    watermark = int(state.last_cached_row)
    if watermark < 0:
        _fail(f"last_cached_row must be >= 0, got {watermark}")
    if slice_rows is not None and watermark > int(slice_rows):
        _fail(
            f"last_cached_row {watermark} exceeds slice row count "
            f"{int(slice_rows)}"
        )
    if hasattr(state, "ranges"):  # RangeSliceState
        bounds = state.ranges.bounds
        check_bounds(bounds)
        if len(bounds) > int(state.max_ranges):
            _fail(
                f"range state holds {len(bounds)} ranges, "
                f"max_ranges is {int(state.max_ranges)}"
            )
        if len(bounds) and int(bounds[-1, 1]) > watermark:
            _fail(
                f"cached range ends at {int(bounds[-1, 1])}, beyond the "
                f"watermark {watermark}"
            )
    elif hasattr(state, "bits"):  # BitmapSliceState
        bits = state.bits
        if bits.dtype != np.bool_:
            _fail(f"bitmap bits must be bool, got {bits.dtype}")
        block_size = int(state.block_size)
        if block_size < 1:
            _fail(f"bitmap block_size must be >= 1, got {block_size}")
        expected = (watermark + block_size - 1) // block_size
        if len(bits) < expected:
            _fail(
                f"bitmap has {len(bits)} bits, watermark {watermark} at "
                f"block size {block_size} needs {expected}"
            )
        if len(bits) > expected and bool(bits[expected:].any()):
            _fail(
                "bitmap has qualifying bits beyond the watermark "
                f"(watermark {watermark}, block size {block_size})"
            )
    else:
        _fail(f"unknown slice-state type {type(state).__name__}")


# -- cache accounting -------------------------------------------------------

#: Mirrors :data:`repro.core.entry.PROVENANCES` — duplicated because
#: this module deliberately imports nothing from the package (see
#: module docstring); ``test_reuse`` asserts the two stay equal.
_PROVENANCES = ("scan", "conjunct", "composed", "subsumed")


def check_cache(cache: Any) -> None:
    """Whole-cache accounting invariants.

    * capacity: live entries respect ``max_entries``; the byte budget is
      respected whenever more than one entry is live (a single oversized
      entry is allowed to stay, matching the eviction loop);
    * generations: every live entry's stamp equals the cache's current
      generation for its table (stale entries are dropped on
      invalidation and stale installs refused — a mismatch means one
      slipped through), and generations never go negative;
    * policy accounting: a bounded admission policy never tracks more
      keys than its configured bound;
    * reuse provenance (DESIGN.md §14): no ephemeral serving object is
      ever installed as an entry (its bytes would double-count against
      the budget), every entry's provenance tag is known, and derived
      provenances (``composed``/``subsumed``) carry source digests while
      primary ones (``scan``/``conjunct``) carry none.
    """
    entries = cache.entries()
    limit = cache.config.max_entries
    if limit is not None and len(entries) > limit:
        _fail(f"{len(entries)} live entries exceed max_entries {limit}")
    max_bytes = cache.config.max_bytes
    if max_bytes is not None and len(entries) > 1:
        total = cache.total_nbytes
        if total > max_bytes:
            _fail(f"total payload {total} B exceeds max_bytes {max_bytes} B")
    for table_name, generation in cache._generations.items():
        if generation < 0:
            _fail(f"negative generation {generation} for table {table_name!r}")
    for entry in entries:
        current = cache.generation_of(entry.key.table)
        if entry.generation != current:
            _fail(
                f"entry {entry.key.key()!r} stamped generation "
                f"{entry.generation}, table is at {current}"
            )
        if len(entry.slice_states) == 0:
            _fail(f"entry {entry.key.key()!r} has zero slices")
        if getattr(entry, "ephemeral", False):
            _fail(
                f"ephemeral reuse serving for {entry.key.key()!r} was "
                "installed as a cache entry (budget double-count)"
            )
        provenance = getattr(entry, "provenance", "scan")
        if provenance not in _PROVENANCES:
            _fail(
                f"entry {entry.key.key()!r} has unknown provenance "
                f"{provenance!r}"
            )
        sources = tuple(getattr(entry, "source_digests", ()))
        if provenance in ("composed", "subsumed") and not sources:
            _fail(
                f"derived entry {entry.key.key()!r} ({provenance}) has "
                "no source digests"
            )
        if provenance in ("scan", "conjunct") and sources:
            _fail(
                f"primary entry {entry.key.key()!r} ({provenance}) "
                f"carries source digests {sources}"
            )
    tracked = getattr(cache.policy, "tracked_keys", None)
    max_tracked = getattr(cache.policy, "max_tracked", None)
    if tracked is not None and max_tracked is not None and tracked > max_tracked:
        _fail(
            f"admission policy tracks {tracked} keys, bound is {max_tracked}"
        )


# -- snapshot round trip ----------------------------------------------------


def check_snapshot_roundtrip(records: Any, data: bytes) -> None:
    """A freshly encoded snapshot must decode back to its own records.

    Called on store rotation *before* any fault injection touches the
    bytes: decode must report no damage and yield a record set
    bit-identical (``EntryRecord.equals``) to what was encoded.
    """
    from .persist.format import decode_snapshot

    decoded, _meta, issues = decode_snapshot(data)
    if not issues.clean:
        _fail(
            "snapshot round-trip decode reported damage on fresh bytes: "
            f"corrupt_sections={issues.corrupt_sections} "
            f"truncated={issues.truncated} "
            f"unsupported_version={issues.unsupported_version}"
        )
    if set(decoded) != set(records):
        _fail(
            "snapshot round-trip lost/invented entries: encoded "
            f"{len(records)}, decoded {len(decoded)}"
        )
    for digest, record in records.items():
        if not decoded[digest].equals(record):
            _fail(
                f"snapshot round-trip altered entry {record.key.key()!r} "
                f"(digest {digest})"
            )
