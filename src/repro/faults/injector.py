"""Seeded, deterministic fault injection for storage reads.

A :class:`FaultInjector` is attached to a read path (managed storage,
the lake scanner) and consulted once per remote fetch.  Every decision
comes from one seeded ``random.Random`` stream, so a workload replayed
with the same seed sees byte-identical faults — the property the chaos
differential oracle depends on.

Two planning modes:

* **probability-driven** (the default): each fetch independently fails
  with ``error_rate``, returns corrupted bytes with ``corruption_rate``,
  and suffers extra latency with ``latency_rate``.
* **schedule-driven**: an explicit ``{read_index: kind}`` mapping pins
  faults to specific fetches (unit tests, regression reproductions).
  Kinds are ``"error"``, ``"corrupt"``, and ``"latency"``.

Injected latency is *model time*: it is accumulated into counters the
cost model folds into ``model_seconds`` — there are no real sleeps
anywhere in the layer.

Concurrency: probability-driven injectors hand the storage layer a
*keyed* stream per fetch attempt (:meth:`FaultInjector.fetch_stream`),
derived from ``(seed, block key, per-key fetch ordinal, attempt)``.
Which fetches fault then depends only on *what* was fetched, never on
the order concurrent scan workers interleaved their fetches — the
property that keeps the chaos oracle bit-identical across worker
counts.  Schedule-driven injectors keep the sequential ``draw()``
index their schedules are written against.  The monotonic counters are
guarded by an internal lock either way.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

__all__ = ["FaultDecision", "FaultInjector"]


@dataclass(frozen=True)
class FaultDecision:
    """The injector's verdict for one fetch attempt."""

    fail: bool = False
    corrupt: bool = False
    latency_seconds: float = 0.0

    @property
    def clean(self) -> bool:
        return not self.fail and not self.corrupt


_CLEAN = FaultDecision()


class FaultInjector:
    """Deterministic fault plan for storage fetches.

    Args:
        seed: seeds the decision stream (and corruption shapes).
        error_rate: per-fetch probability of a transient I/O error.
        corruption_rate: per-fetch probability the payload is corrupted
            (bit flip or truncation, chosen by the stream).
        latency_rate: per-fetch probability of added latency.
        latency_seconds: model-time latency added when drawn.
        schedule: explicit ``{read_index: kind}`` plan; when given, the
            probabilistic rates are ignored and only listed fetches
            fault.  Read indices count every :meth:`draw` call.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        corruption_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_seconds: float = 0.05,
        schedule: Optional[Mapping[int, str]] = None,
    ) -> None:
        for name, rate in (
            ("error_rate", error_rate),
            ("corruption_rate", corruption_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.error_rate = error_rate
        self.corruption_rate = corruption_rate
        self.latency_rate = latency_rate
        self.latency_seconds = latency_seconds
        self.schedule = dict(schedule) if schedule is not None else None
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # Monotonic counters (scrape-time metrics read these directly).
        self.reads_seen = 0
        self.errors_injected = 0
        self.corruptions_injected = 0
        self.latency_injected_seconds = 0.0

    @property
    def can_fault(self) -> bool:
        """True if any fetch could ever fault under this plan.

        Read paths use this to keep the fast path when an injector is
        attached but configured with zero rates and no schedule — "no
        faults configured" must cost nothing on the scan path.
        """
        if self.schedule is not None:
            return bool(self.schedule)
        return (
            self.error_rate > 0.0
            or self.corruption_rate > 0.0
            or self.latency_rate > 0.0
        )

    # -- decisions -------------------------------------------------------------

    def draw(self) -> FaultDecision:
        """The fault verdict for the next fetch attempt (sequential).

        Consumes the injector's single seeded stream, so the verdict
        depends on draw *order*.  Concurrent read paths should use
        :meth:`fetch_stream` + :meth:`draw_keyed` instead; schedules
        (written against draw indices) always come through here.
        """
        with self._lock:
            index = self.reads_seen
            self.reads_seen += 1
            if self.schedule is not None:
                kind = self.schedule.get(index)
                if kind is None:
                    return _CLEAN
                decision = self._scheduled(kind)
            else:
                fail = self.error_rate > 0.0 and self._rng.random() < self.error_rate
                corrupt = (
                    not fail
                    and self.corruption_rate > 0.0
                    and self._rng.random() < self.corruption_rate
                )
                latency = 0.0
                if self.latency_rate > 0.0 and self._rng.random() < self.latency_rate:
                    latency = self.latency_seconds
                decision = (
                    FaultDecision(fail, corrupt, latency)
                    if (fail or corrupt or latency)
                    else _CLEAN
                )
            self._count(decision)
        return decision

    def fetch_stream(self, key: object, sequence: int, attempt: int) -> random.Random:
        """A private seeded stream for one fetch attempt of one block.

        The stream is derived (via a stable hash — builtin ``hash`` is
        salted per process) from the injector seed, the block key, the
        per-key fetch ordinal, and the retry attempt.  Two runs that
        fetch the same blocks the same number of times get identical
        fault patterns regardless of how scan workers interleave, and
        each attempt's verdict, corruption shape, and retry jitter all
        come from this one stream.
        """
        material = repr((self.seed, key, sequence, attempt)).encode()
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return random.Random(int.from_bytes(digest, "big"))

    def draw_keyed(self, stream: random.Random) -> FaultDecision:
        """Probability-mode verdict drawn from a :meth:`fetch_stream`.

        Schedule-driven injectors ignore the stream and fall back to
        the sequential :meth:`draw` their schedule indices refer to.
        """
        if self.schedule is not None:
            return self.draw()
        fail = self.error_rate > 0.0 and stream.random() < self.error_rate
        corrupt = (
            not fail
            and self.corruption_rate > 0.0
            and stream.random() < self.corruption_rate
        )
        latency = 0.0
        if self.latency_rate > 0.0 and stream.random() < self.latency_rate:
            latency = self.latency_seconds
        decision = (
            FaultDecision(fail, corrupt, latency)
            if (fail or corrupt or latency)
            else _CLEAN
        )
        with self._lock:
            self.reads_seen += 1
            self._count(decision)
        return decision

    def _count(self, decision: FaultDecision) -> None:
        # Callers hold self._lock.
        if decision.fail:
            self.errors_injected += 1
        if decision.corrupt:
            self.corruptions_injected += 1
        if decision.latency_seconds:
            self.latency_injected_seconds += decision.latency_seconds

    def _scheduled(self, kind: str) -> FaultDecision:
        if kind == "error":
            return FaultDecision(fail=True)
        if kind == "corrupt":
            return FaultDecision(corrupt=True)
        if kind == "latency":
            return FaultDecision(latency_seconds=self.latency_seconds)
        raise ValueError(f"unknown scheduled fault kind {kind!r}")

    def uniform(self) -> float:
        """A draw from the injector's stream (retry-jitter source)."""
        with self._lock:
            return self._rng.random()

    # -- corruption ------------------------------------------------------------

    def corrupt_array(
        self, values: np.ndarray, stream: Optional[random.Random] = None
    ) -> np.ndarray:
        """A corrupted *copy* of ``values`` (the original is never touched).

        Two shapes, chosen by the stream: truncation (a short read drops
        the tail) and a bit flip in one element.  Either is guaranteed
        to fail checksum verification against the clean payload.  Keyed
        read paths pass the attempt's :meth:`fetch_stream` so the
        corruption shape is order-independent too; without one the
        injector's sequential stream is used (snapshotted under the
        lock into a private stream — the shared ``random.Random`` must
        not be advanced concurrently from multiple fetch threads).
        """
        if stream is None:
            with self._lock:
                stream = random.Random(self._rng.random())
        rng = stream
        if len(values) == 0:
            # Nothing to flip; model an impossible phantom row instead.
            return np.array(["\x00phantom"], dtype=object)
        if len(values) > 1 and rng.random() < 0.5:
            cut = rng.randrange(1, len(values))
            return values[:cut].copy()
        out = values.copy()
        index = rng.randrange(len(out))
        if out.dtype == object:
            out[index] = str(out[index]) + "\x00"
        else:
            flat = out.view(np.uint8)
            byte = rng.randrange(len(flat))
            flat[byte] ^= np.uint8(1 << rng.randrange(8))
        return out

    # -- observability ---------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_faults") -> None:
        """Expose the injector's counters on a metrics registry."""
        registry.counter(
            f"{prefix}_reads_seen_total", "Fetch attempts the injector judged",
            fn=lambda: self.reads_seen,
        )
        registry.counter(
            f"{prefix}_errors_injected_total", "Transient errors injected",
            fn=lambda: self.errors_injected,
        )
        registry.counter(
            f"{prefix}_corruptions_injected_total", "Corrupted payloads injected",
            fn=lambda: self.corruptions_injected,
        )
        registry.counter(
            f"{prefix}_latency_injected_seconds_total",
            "Model-time latency injected",
            fn=lambda: self.latency_injected_seconds,
        )
