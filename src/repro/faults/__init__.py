"""Fault injection and resilience primitives.

The paper's safety argument (§4.2.1, §4.5) is that predicate caching is
*safe to be wrong*: a lost, cold, or stale cache costs performance,
never correctness.  This package is how the reproduction exercises that
margin: a seeded :class:`FaultInjector` makes storage reads flake,
corrupt, and lag deterministically; a :class:`RetryPolicy` bounds how
hard the read paths fight back (backoff is model time, never a sleep);
a :class:`CircuitBreaker` routes around persistently failing lake
files.  The chaos differential oracle (``tests/test_chaos.py``) runs
full workloads under injection and asserts bit-identical results
against a fault-free twin.
"""

from .breaker import CircuitBreaker
from .errors import (
    CorruptedBlockError,
    NodeDownError,
    RetryBudgetExceeded,
    StorageFault,
    TransientStorageError,
)
from .injector import FaultDecision, FaultInjector
from .retry import RetryPolicy, quantize_model_seconds

__all__ = [
    "CircuitBreaker",
    "CorruptedBlockError",
    "FaultDecision",
    "FaultInjector",
    "NodeDownError",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "StorageFault",
    "TransientStorageError",
    "quantize_model_seconds",
]
