"""Per-key circuit breaker with a model-time (tick) clock.

After ``failure_threshold`` consecutive failures on one key, the
breaker *opens*: :meth:`allow` returns False for the next
``cooldown_ticks`` calls, routing the caller around the suspect path
(the lake scanner bypasses its cached bits for that file).  After the
cool-down, the breaker goes *half-open*: the next operation is allowed
through; a success closes the circuit, a failure re-opens it.

The clock is the call count itself — no wall-clock, no sleeps — so
behaviour is deterministic under replay.

State transitions run under an internal lock: parallel scan workers
share one breaker through the storage read path, and a lost update on
``consecutive_failures`` or ``cooldown_left`` would make trip/recovery
behaviour depend on thread interleaving.
"""

from __future__ import annotations

import threading
from typing import Dict, Hashable

__all__ = ["CircuitBreaker"]

_CLOSED, _OPEN, _HALF_OPEN = "closed", "open", "half-open"


class _Circuit:
    __slots__ = ("state", "consecutive_failures", "cooldown_left")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.consecutive_failures = 0
        self.cooldown_left = 0


class CircuitBreaker:
    """Keyed circuit breakers (one circuit per lake file, table, ...)."""

    def __init__(self, failure_threshold: int = 3, cooldown_ticks: int = 5) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_ticks < 1:
            raise ValueError("cooldown_ticks must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self._circuits: Dict[Hashable, _Circuit] = {}
        self._lock = threading.Lock()
        # Monotonic counters (scrape-time metrics read these directly).
        self.trips = 0
        self.short_circuits = 0
        self.recoveries = 0

    def _circuit(self, key: Hashable) -> _Circuit:
        """Caller holds ``_lock``."""
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = _Circuit()
            self._circuits[key] = circuit
        return circuit

    # -- the caller protocol ---------------------------------------------------

    def allow(self, key: Hashable) -> bool:
        """May the protected path be used for ``key`` right now?

        Each call while open advances the cool-down clock by one tick.
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == _CLOSED:
                return True
            if circuit.state == _OPEN:
                circuit.cooldown_left -= 1
                if circuit.cooldown_left > 0:
                    self.short_circuits += 1
                    return False
                circuit.state = _HALF_OPEN
                return True
            return True  # half-open: probe allowed

    def record_success(self, key: Hashable) -> None:
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None:
                return
            if circuit.state == _HALF_OPEN:
                self.recoveries += 1
            circuit.state = _CLOSED
            circuit.consecutive_failures = 0
            circuit.cooldown_left = 0

    def record_failure(self, key: Hashable) -> None:
        with self._lock:
            circuit = self._circuit(key)
            circuit.consecutive_failures += 1
            if (
                circuit.state == _HALF_OPEN
                or circuit.consecutive_failures >= self.failure_threshold
            ):
                if circuit.state != _OPEN:
                    self.trips += 1
                circuit.state = _OPEN
                # +1 because the next allow() call consumes the first tick.
                circuit.cooldown_left = self.cooldown_ticks + 1

    # -- introspection ---------------------------------------------------------
    #
    # Reads here are deliberately unlocked: ``state`` is a single
    # reference assignment (atomic under the GIL), dict.get on
    # ``_circuits`` never observes a half-inserted entry, and a reader
    # racing a transition just sees the state from one side of it —
    # acceptable for introspection and metrics scrapes, which are
    # advisory snapshots, not decisions.  The caller protocol above
    # stays fully locked.

    def state_of(self, key: Hashable) -> str:
        circuit = self._circuits.get(key)
        return circuit.state if circuit is not None else _CLOSED

    def is_open(self, key: Hashable) -> bool:
        return self.state_of(key) == _OPEN

    def forget(self, key: Hashable) -> None:
        """Drop a key's circuit (its file was deleted/replaced)."""
        self._circuits.pop(key, None)

    def register_metrics(self, registry, prefix: str = "repro_breaker") -> None:
        registry.counter(
            f"{prefix}_trips_total", "Circuits opened by consecutive failures",
            fn=lambda: self.trips,
        )
        registry.counter(
            f"{prefix}_short_circuits_total",
            "Operations routed around an open circuit",
            fn=lambda: self.short_circuits,
        )
        registry.counter(
            f"{prefix}_recoveries_total", "Circuits closed after a probe success",
            fn=lambda: self.recoveries,
        )
        registry.gauge(
            f"{prefix}_open_circuits", "Circuits currently open",
            fn=lambda: sum(
                1 for c in self._circuits.values() if c.state == _OPEN
            ),
        )
