"""Retry policy: bounded attempts, exponential backoff, model-time cost.

Backoff is *model time*: the computed delay is added to a counter the
cost model folds into ``model_seconds`` — never a real sleep.  Jitter
is drawn from the fault injector's seeded stream, so a replayed
workload backs off identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy", "quantize_model_seconds"]

#: Model-time accumulation granularity: 2**-20 s (~1 µs).  Quantized
#: addends are exact dyadic floats, so a float64 sum of up to 2**53
#: quanta is exact and therefore *order-independent* — serial and
#: parallel scans accumulate bit-identical backoff totals no matter how
#: their retries interleave.
_MODEL_TIME_QUANTUM_INV = float(1 << 20)


def quantize_model_seconds(seconds: float) -> float:
    """Round a model-time addend to the 2**-20 s accumulation grid."""
    return round(seconds * _MODEL_TIME_QUANTUM_INV) / _MODEL_TIME_QUANTUM_INV


@dataclass(frozen=True)
class RetryPolicy:
    """Tuning knobs for storage-read retries.

    Attributes:
        max_attempts: total tries per read (first attempt included).
        base_backoff_seconds: model-time delay before the first retry.
        backoff_multiplier: exponential growth factor per retry.
        max_backoff_seconds: cap on a single delay.
        jitter: fraction of each delay randomized (0 = deterministic,
            1 = fully random in ``(0, delay]``); the randomness comes
            from the injector's seeded stream.
        retry_budget: total retries one query may spend across all its
            reads (None = unlimited).  Exhausting the budget raises
            :class:`~repro.faults.RetryBudgetExceeded` — the only way a
            storage fault ever surfaces to a query.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.002
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 0.1
    jitter: float = 0.5
    retry_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.retry_budget is not None and self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0 or None")

    def backoff_seconds(self, retry_index: int, u: float) -> float:
        """Model-time delay before retry ``retry_index`` (0-based).

        ``u`` is a uniform draw in ``[0, 1)`` from the caller's seeded
        stream (deterministic jitter).
        """
        delay = min(
            self.base_backoff_seconds * self.backoff_multiplier**retry_index,
            self.max_backoff_seconds,
        )
        return delay * (1.0 - self.jitter + self.jitter * u)
