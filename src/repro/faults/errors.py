"""Fault taxonomy for the resilience layer.

Three failure classes, mirroring what cloud object storage actually
throws at a warehouse:

* :class:`TransientStorageError` — a fetch failed outright (connection
  reset, 500/503, throttling).  Retryable by definition.
* :class:`CorruptedBlockError` — a fetch *returned*, but the payload
  fails its checksum (bit flip in transit, truncated body).  Also
  retryable: the authoritative copy on managed storage is intact.
* :class:`RetryBudgetExceeded` — the retry policy gave up.  This is the
  only storage fault a query is ever allowed to surface: the bottom
  rung of the degradation ladder (cached scan -> full scan -> error
  only on exhausted budget).
* :class:`NodeDownError` — a cluster compute node stopped answering
  (crashed process, lost heartbeats).  Raised by a dead node's cache
  tombstone; the scan path degrades to cache-off scans for that node's
  slices and the health monitor routes around it (DESIGN.md §13).
"""

from __future__ import annotations

__all__ = [
    "StorageFault",
    "TransientStorageError",
    "CorruptedBlockError",
    "RetryBudgetExceeded",
    "NodeDownError",
]


class StorageFault(Exception):
    """Base class for injected or detected storage-layer faults."""


class TransientStorageError(StorageFault):
    """A remote read failed; the operation is safe to retry."""


class CorruptedBlockError(StorageFault):
    """A fetched block failed checksum verification."""


class RetryBudgetExceeded(StorageFault):
    """Retries were exhausted; the read cannot be served."""


class NodeDownError(StorageFault):
    """A cluster node is unreachable; callers must route around it."""
