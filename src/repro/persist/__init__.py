"""Persistent cache store & warm start: snapshot + journal subsystem.

The paper's predicate cache is volatile and per-compute-cluster — every
restart, resize, or node replacement starts cold and must relearn its
entries from query repetition (the hit-rate ramp of Fig. 13).  This
package makes the learned state durable:

* :mod:`~repro.persist.records` — transfer records between live cache
  objects and bytes (bit-identical reconstruction).
* :mod:`~repro.persist.format` — the versioned binary snapshot format
  (magic + version + per-section CRC32) and the framed journal records.
* :mod:`~repro.persist.store` — :class:`CacheStore`: atomic snapshot
  rotation, append-only journaling with crash injection points,
  compaction, and the recovery path (load → replay → revalidate →
  hydrate).

Warm start is wired into :class:`~repro.core.cache.PredicateCache`
(``attach_store`` write-through hooks) and
:class:`~repro.cluster.ClusterCaches` (replacement nodes in
``fail_node`` and re-sharded nodes in ``resize`` hydrate from the
store).  See DESIGN.md §9.
"""

from .records import EntryRecord, StateRecord, collect_records, key_digest
from .store import CacheStore, LoadResult

__all__ = [
    "CacheStore",
    "EntryRecord",
    "LoadResult",
    "StateRecord",
    "collect_records",
    "key_digest",
]
