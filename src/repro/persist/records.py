"""In-memory transfer records between live caches and the on-disk store.

The persistence layer never serializes live :class:`CacheEntry` /
:class:`SliceState` objects directly.  Everything funnels through two
plain records:

* :class:`StateRecord` — one slice's qualifying-row state, reduced to
  raw arrays: an ``(N, 2)`` int64 bounds array for the range variant, a
  bool bit vector for the bitmap variant.  Both reconstruct the exact
  live object (``to_state``) without re-running builder logic, so a
  snapshot → load round trip is bit-identical.
* :class:`EntryRecord` — one cache entry's metadata (key, generation,
  per-table vacuum epoch, build-side DML versions, scan stats) plus its
  slice states.  Records are keyed by the stable FNV-1a digest of the
  canonical key string, which the journal uses to reference entries
  compactly and the decoder re-derives to detect key drift.

``collect_records`` merges entries across cluster nodes (each node holds
only its owned slices' states of an entry) into one record per key —
the shape a snapshot stores and a re-shard redistributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from ..core.entry import BitmapSliceState, CacheEntry, RangeSliceState, SliceState
from ..core.keys import ScanKey, SemiJoinDescriptor
from ..core.rowrange import RangeList
from ..engine.hashing import fnv1a_hash

__all__ = [
    "StateRecord",
    "EntryRecord",
    "key_digest",
    "key_to_obj",
    "key_from_obj",
    "collect_records",
]


def key_digest(key: ScanKey) -> int:
    """Stable 64-bit digest of a scan key (FNV-1a over the canonical
    string) — process-independent, unlike builtin ``hash``."""
    return int(fnv1a_hash(np.array([key.key()], dtype=object))[0])


def key_to_obj(key: ScanKey) -> dict:
    """JSON-serializable structural form of a scan key."""
    return {
        "t": key.table,
        "p": key.predicate_key,
        "s": [_semijoin_to_obj(sj) for sj in key.semijoins],
    }


def _semijoin_to_obj(sj: SemiJoinDescriptor) -> dict:
    return {
        "j": sj.join_predicate,
        "b": sj.build_table,
        "f": sj.build_predicate_key,
        "n": [_semijoin_to_obj(nested) for nested in sj.build_semijoins],
    }


def key_from_obj(obj: Mapping) -> ScanKey:
    return ScanKey(
        str(obj["t"]),
        str(obj["p"]),
        tuple(_semijoin_from_obj(s) for s in obj.get("s", ())),
    )


def _semijoin_from_obj(obj: Mapping) -> SemiJoinDescriptor:
    return SemiJoinDescriptor(
        str(obj["j"]),
        str(obj["b"]),
        str(obj["f"]),
        tuple(_semijoin_from_obj(n) for n in obj.get("n", ())),
    )


KIND_RANGE = 0
KIND_BITMAP = 1


@dataclass
class StateRecord:
    """One slice's state reduced to raw arrays.

    ``param`` is ``max_ranges`` for the range variant and ``block_size``
    for the bitmap variant; ``data`` is the ``(N, 2)`` int64 bounds
    array or the bool bit vector respectively.
    """

    kind: int
    last_cached_row: int
    param: int
    data: np.ndarray

    @classmethod
    def from_state(cls, state: SliceState) -> "StateRecord":
        if isinstance(state, RangeSliceState):
            return cls(
                KIND_RANGE,
                int(state.last_cached_row),
                int(state.max_ranges),
                np.asarray(state.ranges.bounds, dtype=np.int64),
            )
        if isinstance(state, BitmapSliceState):
            return cls(
                KIND_BITMAP,
                int(state.last_cached_row),
                int(state.block_size),
                np.asarray(state.bits, dtype=bool),
            )
        raise TypeError(f"unknown slice-state type {type(state).__name__}")

    def to_state(self) -> SliceState:
        """Reconstruct the live state object, bit-identical to the
        original (no re-coalescing, no bit re-derivation)."""
        if self.kind == KIND_RANGE:
            state = RangeSliceState.__new__(RangeSliceState)
            state.max_ranges = int(self.param)
            # from_bounds re-validates: corrupt bounds that slipped past
            # the CRC (or a hand-edited file) raise here and the loader
            # drops the entry instead of installing garbage.
            state.ranges = RangeList.from_bounds(self.data)
            state.last_cached_row = int(self.last_cached_row)
            return state
        if self.kind == KIND_BITMAP:
            if self.param < 1:
                raise ValueError("bitmap block_size must be >= 1")
            state = BitmapSliceState.__new__(BitmapSliceState)
            state.block_size = int(self.param)
            state.bits = np.asarray(self.data, dtype=bool)
            state.last_cached_row = int(self.last_cached_row)
            return state
        raise ValueError(f"unknown state kind {self.kind}")

    def equals(self, other: "StateRecord") -> bool:
        return (
            self.kind == other.kind
            and self.last_cached_row == other.last_cached_row
            and self.param == other.param
            and np.array_equal(self.data, other.data)
        )


@dataclass
class EntryRecord:
    """One cache entry in transfer form (metadata + slice states).

    ``table_layout`` is the scanned table's ``layout_version`` (vacuum
    epoch) observed when the states were recorded — the load-time
    validity anchor: a mismatch means row numbering changed and the
    states describe rows that no longer exist.  ``build_versions`` are
    the build-side tables' ``data_version`` stamps with the same role
    for join-index entries (§4.4 invalidation across restarts).
    """

    key: ScanKey
    digest: int
    table_layout: int
    num_slices: int
    generation: int
    build_versions: Dict[str, int] = field(default_factory=dict)
    hits: int = 0
    rows_qualifying: int = 0
    rows_considered: int = 0
    provenance: str = "scan"
    source_digests: Tuple[int, ...] = ()
    states: Dict[int, StateRecord] = field(default_factory=dict)

    @classmethod
    def from_entry(
        cls, entry: CacheEntry, table_layout: int, with_states: bool = True
    ) -> "EntryRecord":
        states: Dict[int, StateRecord] = {}
        if with_states:
            states = {
                slice_id: StateRecord.from_state(state)
                for slice_id, state in enumerate(entry.slice_states)
                if state is not None
            }
        return cls(
            key=entry.key,
            digest=key_digest(entry.key),
            table_layout=int(table_layout),
            num_slices=len(entry.slice_states),
            generation=int(entry.generation),
            build_versions=dict(entry.build_versions),
            hits=int(entry.hits),
            rows_qualifying=int(entry.rows_qualifying),
            rows_considered=int(entry.rows_considered),
            provenance=entry.provenance,
            source_digests=tuple(entry.source_digests),
            states=states,
        )

    def merge_meta(self, other: "EntryRecord") -> None:
        """Take ``other``'s metadata (journal replay: last writer wins)."""
        self.table_layout = other.table_layout
        self.num_slices = max(self.num_slices, other.num_slices)
        self.generation = other.generation
        self.build_versions = dict(other.build_versions)
        self.hits = other.hits
        self.rows_qualifying = other.rows_qualifying
        self.rows_considered = other.rows_considered
        self.provenance = other.provenance
        self.source_digests = tuple(other.source_digests)

    def equals(self, other: "EntryRecord") -> bool:
        """Bit-identical comparison (the round-trip property)."""
        return (
            self.key == other.key
            and self.digest == other.digest
            and self.table_layout == other.table_layout
            and self.num_slices == other.num_slices
            and self.generation == other.generation
            and self.build_versions == other.build_versions
            and self.hits == other.hits
            and self.rows_qualifying == other.rows_qualifying
            and self.rows_considered == other.rows_considered
            and self.provenance == other.provenance
            and self.source_digests == other.source_digests
            and set(self.states) == set(other.states)
            and all(self.states[s].equals(other.states[s]) for s in self.states)
        )


def collect_records(caches: Iterable) -> Dict[int, EntryRecord]:
    """Merge live cache entries (one cache per cluster node) into one
    record per distinct key, union-ing per-slice states.

    Nodes hold disjoint slice shares of each entry, so the union never
    conflicts; entry metadata comes from whichever node saw the entry
    last (they agree up to per-node hit counters, which are summed).
    """
    records: Dict[int, EntryRecord] = {}
    for cache in caches:
        for entry in cache.entries():
            record = EntryRecord.from_entry(
                entry, cache.table_layout_of(entry.key.table)
            )
            if not record.states:
                continue
            existing = records.get(record.digest)
            if existing is None:
                records[record.digest] = record
            else:
                hits = existing.hits + record.hits
                qualifying = existing.rows_qualifying + record.rows_qualifying
                considered = existing.rows_considered + record.rows_considered
                existing.merge_meta(record)
                existing.hits = hits
                existing.rows_qualifying = qualifying
                existing.rows_considered = considered
                existing.states.update(record.states)
    return records
