"""On-disk byte formats: versioned snapshot + framed journal records.

Snapshot layout::

    header   : magic "RPPCSNAP" | format version u16 | flags u16 | reserved u32
    section* : kind u8 | pad[3] | payload_len u64 | crc32 u32 | payload
    end      : a zero-length END section closes a complete file

Section kinds are META (JSON: catalog versions at snapshot time, entry
count), ENTRY (one cache entry, binary), and END.  Each section's CRC32
covers its payload with a length prefix (reusing
:func:`repro.storage.compression.array_checksum`), so both bit flips and
truncation inside a section are caught.  The decoder is *total*: any
corruption drops the affected section (or the unreadable tail) and the
remainder still loads — recovery degrades toward a cold cache, it never
raises and never installs a section that failed its checksum.

Journal layout: a sequence of ``payload_len u32 | crc32 u32 | payload``
records appended over time.  Replay stops at the first record whose
header is short, whose length overruns the file, or whose CRC fails —
exactly the torn-tail semantics of a crash during append.  Journal
payloads carry either a STATE event (entry metadata + one slice state,
idempotent: replaying twice is a no-op) or a DROP event (entry digest +
the slice ids whose states were dropped).

Forward compatibility: the header version is checked on read; files
written by a *newer* format are refused wholesale (cold start) instead
of being half-parsed.  Version 2 appended entry provenance (a code into
:data:`repro.core.entry.PROVENANCES` plus the source-entry digests of
the reuse lattice, DESIGN.md §14) to the entry metadata; version-1
snapshots still decode, with every entry defaulting to ``"scan"``.
Journal records carry no version of their own — they are paired with a
snapshot from the same writer — so a journal from an older writer reads
as a torn tail (replay stops, recovery degrades toward cold, exactly
like any other unreadable journal).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..core.entry import PROVENANCES
from ..storage.compression import array_checksum
from .records import (
    EntryRecord,
    StateRecord,
    key_digest,
    key_from_obj,
    key_to_obj,
)

__all__ = [
    "FORMAT_VERSION",
    "SNAPSHOT_MAGIC",
    "DecodeIssues",
    "encode_snapshot",
    "decode_snapshot",
    "frame_record",
    "iter_journal",
    "encode_state_event",
    "encode_drop_event",
    "decode_journal_payload",
    "replay_journal",
]

SNAPSHOT_MAGIC = b"RPPCSNAP"
FORMAT_VERSION = 2

# Entry provenance on the wire: the index into PROVENANCES (order is
# part of the format — append-only).
_PROVENANCE_CODES = {name: code for code, name in enumerate(PROVENANCES)}

_HEADER = struct.Struct("<8sHHI")          # magic, version, flags, reserved
_SECTION = struct.Struct("<B3xQI")         # kind, payload_len, crc32
_JOURNAL_HDR = struct.Struct("<II")        # payload_len, crc32

SECTION_META = 1
SECTION_ENTRY = 2
SECTION_END = 255

OP_STATE = 1
OP_DROP = 2

# A journal record longer than this is treated as a corrupt length
# field, not a real record (the largest legitimate state is a few MB).
_MAX_RECORD_BYTES = 1 << 30


def _crc(payload: bytes) -> int:
    """CRC32 over a byte payload via the storage layer's checksum helper
    (length-prefixed, so truncation is always detectable)."""
    return array_checksum(np.frombuffer(payload, dtype=np.uint8))


@dataclass
class DecodeIssues:
    """What a (possibly damaged) snapshot/journal read ran into."""

    corrupt_sections: int = 0
    truncated: bool = False
    unsupported_version: bool = False

    @property
    def clean(self) -> bool:
        return (
            self.corrupt_sections == 0
            and not self.truncated
            and not self.unsupported_version
        )


# -- primitive encoders ------------------------------------------------------


def _put_bytes(buf: bytearray, data: bytes) -> None:
    buf += struct.pack("<I", len(data))
    buf += data


def _get_bytes(data: bytes, off: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from("<I", data, off)
    off += 4
    if off + length > len(data):
        raise ValueError("byte field overruns payload")
    return data[off : off + length], off + length


def _encode_meta(buf: bytearray, record: EntryRecord) -> None:
    _put_bytes(buf, json.dumps(key_to_obj(record.key), sort_keys=True).encode("utf-8"))
    buf += struct.pack(
        "<qQIQQQQ",
        record.digest,
        record.table_layout,
        record.num_slices,
        record.generation,
        record.hits,
        record.rows_qualifying,
        record.rows_considered,
    )
    buf += struct.pack("<I", len(record.build_versions))
    for name in sorted(record.build_versions):
        _put_bytes(buf, name.encode("utf-8"))
        buf += struct.pack("<Q", record.build_versions[name])
    # Version 2: provenance code + reuse-lattice source digests.
    buf += struct.pack("<B", _PROVENANCE_CODES[record.provenance])
    buf += struct.pack("<I", len(record.source_digests))
    for source_digest in record.source_digests:
        buf += struct.pack("<q", source_digest)


def _decode_meta(
    data: bytes, off: int, version: int = FORMAT_VERSION
) -> Tuple[EntryRecord, int]:
    key_json, off = _get_bytes(data, off)
    key = key_from_obj(json.loads(key_json.decode("utf-8")))
    (
        digest,
        table_layout,
        num_slices,
        generation,
        hits,
        qualifying,
        considered,
    ) = struct.unpack_from("<qQIQQQQ", data, off)
    off += struct.calcsize("<qQIQQQQ")
    if digest != key_digest(key):
        raise ValueError("key digest mismatch (stored key drifted)")
    (n_build,) = struct.unpack_from("<I", data, off)
    off += 4
    build_versions: Dict[str, int] = {}
    for _ in range(n_build):
        name, off = _get_bytes(data, off)
        (build_version,) = struct.unpack_from("<Q", data, off)
        off += 8
        build_versions[name.decode("utf-8")] = int(build_version)
    provenance = "scan"
    source_digests: Tuple[int, ...] = ()
    if version >= 2:
        (provenance_code,) = struct.unpack_from("<B", data, off)
        off += 1
        if provenance_code >= len(PROVENANCES):
            raise ValueError(f"unknown provenance code {provenance_code}")
        provenance = PROVENANCES[provenance_code]
        (n_sources,) = struct.unpack_from("<I", data, off)
        off += 4
        if off + 8 * n_sources > len(data):
            raise ValueError("source digests overrun payload")
        source_digests = tuple(
            int(d) for d in struct.unpack_from(f"<{n_sources}q", data, off)
        )
        off += 8 * n_sources
    record = EntryRecord(
        key=key,
        digest=int(digest),
        table_layout=int(table_layout),
        num_slices=int(num_slices),
        generation=int(generation),
        build_versions=build_versions,
        hits=int(hits),
        rows_qualifying=int(qualifying),
        rows_considered=int(considered),
        provenance=provenance,
        source_digests=source_digests,
    )
    return record, off


def _encode_state(buf: bytearray, slice_id: int, state: StateRecord) -> None:
    if state.kind == 0:  # range: raw (N, 2) int64 bounds
        payload = np.ascontiguousarray(state.data, dtype="<i8").tobytes()
        count = len(state.data)
    else:  # bitmap: packed bits
        bits = np.asarray(state.data, dtype=bool)
        payload = np.packbits(bits).tobytes()
        count = len(bits)
    buf += struct.pack(
        "<IB3xQQQ", slice_id, state.kind, state.last_cached_row, state.param, count
    )
    buf += payload


def _decode_state(data: bytes, off: int) -> Tuple[int, StateRecord, int]:
    slice_id, kind, last_cached_row, param, count = struct.unpack_from(
        "<IB3xQQQ", data, off
    )
    off += struct.calcsize("<IB3xQQQ")
    if kind == 0:
        nbytes = count * 16
        if off + nbytes > len(data):
            raise ValueError("range payload overruns section")
        bounds = (
            np.frombuffer(data, dtype="<i8", count=count * 2, offset=off)
            .astype(np.int64)
            .reshape(-1, 2)
        )
        record = StateRecord(0, int(last_cached_row), int(param), bounds)
    elif kind == 1:
        nbytes = (count + 7) // 8
        if off + nbytes > len(data):
            raise ValueError("bitmap payload overruns section")
        packed = np.frombuffer(data, dtype=np.uint8, count=nbytes, offset=off)
        bits = np.unpackbits(packed, count=int(count)).astype(bool)
        record = StateRecord(1, int(last_cached_row), int(param), bits)
    else:
        raise ValueError(f"unknown state kind {kind}")
    return int(slice_id), record, off + nbytes


def encode_entry(record: EntryRecord) -> bytes:
    buf = bytearray()
    _encode_meta(buf, record)
    buf += struct.pack("<I", len(record.states))
    for slice_id in sorted(record.states):
        _encode_state(buf, slice_id, record.states[slice_id])
    return bytes(buf)


def decode_entry(payload: bytes, version: int = FORMAT_VERSION) -> EntryRecord:
    record, off = _decode_meta(payload, 0, version)
    (n_states,) = struct.unpack_from("<I", payload, off)
    off += 4
    for _ in range(n_states):
        slice_id, state, off = _decode_state(payload, off)
        record.states[slice_id] = state
    return record


# -- snapshot ----------------------------------------------------------------


def _section(kind: int, payload: bytes) -> bytes:
    return _SECTION.pack(kind, len(payload), _crc(payload)) + payload


def encode_snapshot(
    records: Dict[int, EntryRecord], meta: Optional[dict] = None
) -> bytes:
    buf = bytearray(_HEADER.pack(SNAPSHOT_MAGIC, FORMAT_VERSION, 0, 0))
    meta_obj = dict(meta or {})
    meta_obj["entries"] = len(records)
    buf += _section(SECTION_META, json.dumps(meta_obj, sort_keys=True).encode("utf-8"))
    for digest in sorted(records):
        buf += _section(SECTION_ENTRY, encode_entry(records[digest]))
    buf += _section(SECTION_END, b"")
    return bytes(buf)


def decode_snapshot(
    data: bytes,
) -> Tuple[Dict[int, EntryRecord], dict, DecodeIssues]:
    """Decode a snapshot, tolerating truncation and bit flips.

    Returns every entry whose section passed its checksum and decoded
    cleanly; damage is reported through :class:`DecodeIssues`, never as
    an exception.
    """
    records: Dict[int, EntryRecord] = {}
    meta: dict = {}
    issues = DecodeIssues()
    if len(data) < _HEADER.size:
        if data:
            issues.truncated = True
        return records, meta, issues
    magic, version, _flags, _reserved = _HEADER.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        issues.corrupt_sections += 1
        return records, meta, issues
    if version > FORMAT_VERSION:
        issues.unsupported_version = True
        return records, meta, issues
    off = _HEADER.size
    saw_end = False
    while off < len(data):
        if off + _SECTION.size > len(data):
            issues.truncated = True
            break
        kind, length, crc = _SECTION.unpack_from(data, off)
        off += _SECTION.size
        if length > len(data) - off:
            issues.truncated = True
            break
        payload = data[off : off + length]
        off += length
        if _crc(payload) != crc:
            issues.corrupt_sections += 1
            continue
        try:
            if kind == SECTION_META:
                meta = json.loads(payload.decode("utf-8"))
            elif kind == SECTION_ENTRY:
                record = decode_entry(payload, version)
                records[record.digest] = record
            elif kind == SECTION_END:
                saw_end = True
                break
            else:
                # The section header is outside its payload's CRC, so a
                # bit flip in the kind byte lands here.  Writers that
                # add section kinds bump the format version (refused
                # above), so within a supported version an unknown kind
                # can only be damage — count it, keep decoding.
                issues.corrupt_sections += 1
        except Exception:
            issues.corrupt_sections += 1
    if not saw_end and not issues.truncated and off >= len(data):
        # The file ended cleanly on a section boundary but without the
        # END marker — a snapshot cut exactly between sections.
        issues.truncated = True
    return records, meta, issues


# -- journal -----------------------------------------------------------------


def frame_record(payload: bytes) -> bytes:
    return _JOURNAL_HDR.pack(len(payload), _crc(payload)) + payload


def iter_journal(data: bytes, issues: DecodeIssues) -> Iterator[bytes]:
    """Yield record payloads until the end or the first damaged record.

    A short header, an overrunning length, or a CRC failure marks the
    torn tail: everything after it is unreadable (framing is lost) and
    is abandoned — the crash-recovery semantics of an append-only log.
    """
    off = 0
    while off < len(data):
        if off + _JOURNAL_HDR.size > len(data):
            issues.truncated = True
            return
        length, crc = _JOURNAL_HDR.unpack_from(data, off)
        off += _JOURNAL_HDR.size
        if length > _MAX_RECORD_BYTES or length > len(data) - off:
            issues.truncated = True
            return
        payload = data[off : off + length]
        off += length
        if _crc(payload) != crc:
            issues.corrupt_sections += 1
            return
        yield payload


def encode_state_event(
    meta: EntryRecord, slice_id: int, state: StateRecord
) -> bytes:
    buf = bytearray(struct.pack("<B", OP_STATE))
    _encode_meta(buf, meta)
    _encode_state(buf, slice_id, state)
    return bytes(buf)


def encode_drop_event(digest: int, slice_ids) -> bytes:
    buf = bytearray(struct.pack("<Bq", OP_DROP, digest))
    buf += struct.pack("<I", len(slice_ids))
    for slice_id in slice_ids:
        buf += struct.pack("<I", slice_id)
    return bytes(buf)


def decode_journal_payload(payload: bytes):
    """Decode one journal record: ``("state", meta, slice_id, state)``
    or ``("drop", digest, slice_ids)``."""
    (op,) = struct.unpack_from("<B", payload, 0)
    if op == OP_STATE:
        meta, off = _decode_meta(payload, 1)
        slice_id, state, off = _decode_state(payload, off)
        return ("state", meta, slice_id, state)
    if op == OP_DROP:
        (digest,) = struct.unpack_from("<q", payload, 1)
        (n,) = struct.unpack_from("<I", payload, 9)
        slice_ids = list(struct.unpack_from(f"<{n}I", payload, 13)) if n else []
        return ("drop", int(digest), slice_ids)
    raise ValueError(f"unknown journal op {op}")


def replay_journal(
    records: Dict[int, EntryRecord], data: bytes, issues: DecodeIssues
) -> int:
    """Apply journal events on top of the snapshot's records in place.

    Returns the number of records replayed.  Undecodable payloads that
    passed their CRC (format drift) count as corrupt and stop the
    replay, like a torn tail.
    """
    replayed = 0
    for payload in iter_journal(data, issues):
        try:
            event = decode_journal_payload(payload)
        except Exception:
            issues.corrupt_sections += 1
            return replayed
        replayed += 1
        if event[0] == "state":
            _, meta, slice_id, state = event
            record = records.get(meta.digest)
            if record is None:
                meta.states = {slice_id: state}
                records[meta.digest] = meta
            else:
                record.merge_meta(meta)
                record.states[slice_id] = state
        else:
            _, digest, slice_ids = event
            record = records.get(digest)
            if record is None:
                continue
            for slice_id in slice_ids:
                record.states.pop(slice_id, None)
            if not record.states:
                del records[digest]
    return replayed
