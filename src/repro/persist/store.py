"""The durable cache store: snapshot rotation, journaling, warm start.

A :class:`CacheStore` owns one directory holding two files:

* ``cache.snapshot`` — the last complete snapshot, rotated atomically
  (write to a temp file, ``os.replace``): readers always see either the
  old complete snapshot or the new one, never a half-written file.
* ``cache.journal`` — the append-only event log since that snapshot.
  Install/extend events carry the full new slice state (idempotent
  replay); invalidate/evict events carry the entry digest plus the
  dropped slice ids.

``load`` = read snapshot + replay journal + **revalidate**: every
restored entry is checked against the bound catalog's current table
vacuum epochs (``layout_version``), slice counts, and build-side DML
versions; stale entries are dropped and counted, never installed.  The
whole read path is total — torn tails, bit flips, and truncation
degrade toward a cold cache without ever raising through ``load``.

Crash injection: an attached :class:`~repro.faults.FaultInjector` is
consulted before every snapshot write and journal append.  An injected
*error* models a crash mid-write: the snapshot write leaves only a
partial temp file (the previous snapshot survives), a journal append
leaves a torn record and wedges the journal (the process "crashed" —
later appends are dropped until the next snapshot resets the log).  An
injected *corruption* flips one bit in the written bytes, which the
CRCs catch at load time.

Compaction: once the journal outgrows the snapshot by
``compact_factor`` (and ``min_compact_bytes``), the store folds the
journal into a fresh snapshot and truncates the log.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional

from .. import invariants as _inv
from ..obs import lockwitness
from .format import (
    DecodeIssues,
    decode_snapshot,
    encode_drop_event,
    encode_snapshot,
    encode_state_event,
    frame_record,
    replay_journal,
)
from .records import EntryRecord, StateRecord, collect_records, key_digest

__all__ = ["CacheStore", "LoadResult"]


@dataclass
class LoadResult:
    """Outcome of one recovery (snapshot + journal replay + revalidate)."""

    records: Dict[int, EntryRecord] = field(default_factory=dict)
    snapshot_entries: int = 0
    journal_records: int = 0
    stale_dropped: int = 0
    corrupt_sections: int = 0
    truncated: bool = False
    unsupported_version: bool = False
    seconds: float = 0.0


def _caches_of(source) -> Iterable:
    """Normalize a PredicateCache / ClusterCaches / iterable of caches."""
    if hasattr(source, "nodes"):
        return source.nodes()
    if hasattr(source, "entries"):
        return (source,)
    return source


class CacheStore:
    """Durable snapshot + journal persistence for predicate caches."""

    SNAPSHOT_NAME = "cache.snapshot"
    JOURNAL_NAME = "cache.journal"

    def __init__(
        self,
        directory,
        catalog=None,
        injector=None,
        tracer=None,
        compact_factor: float = 2.0,
        min_compact_bytes: int = 64 * 1024,
        fsync: bool = False,
    ) -> None:
        """Args:
            directory: where the snapshot and journal live (created).
            catalog: the :class:`~repro.storage.Database` to revalidate
                restored entries against.  Without one, ``load`` skips
                revalidation (round-trip tests over synthetic entries).
            injector: optional :class:`~repro.faults.FaultInjector`
                consulted before every write (crash points).
            tracer: optional :class:`~repro.obs.Tracer` for persistence
                spans (``persist.snapshot`` / ``persist.load``).
            compact_factor: journal-to-snapshot size ratio that triggers
                compaction.
            min_compact_bytes: journal size below which compaction never
                triggers (avoids thrashing on tiny caches).
            fsync: fsync snapshot temp files before rotation (off by
                default; the reproduction's crash model is process-level).
        """
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.catalog = catalog
        self.injector = injector
        self.tracer = tracer
        self.compact_factor = float(compact_factor)
        self.min_compact_bytes = int(min_compact_bytes)
        self.fsync = bool(fsync)
        self._snapshot_path = os.path.join(self.directory, self.SNAPSHOT_NAME)
        self._journal_path = os.path.join(self.directory, self.JOURNAL_NAME)
        # A torn journal append models a crash: the store is wedged
        # (appends dropped) until a snapshot resets the log, the way a
        # crashed process would not keep writing after its torn record.
        self._wedged = False
        # One store is shared by every cluster node's cache; this lock
        # serializes snapshot rotation, journal appends, and recovery
        # reads so concurrent write-throughs never interleave frames.
        # Re-entrant because an append can trigger compaction, which
        # snapshots.  Lock ordering is cache → store (a cache calls in
        # while holding its own lock); hydration installs therefore run
        # *without* this lock held (see :meth:`hydrate`).
        self._io_lock = lockwitness.named_rlock("CacheStore._io_lock")
        # Monotonic counters (scrape-time metrics read these directly).
        self.snapshots_written = 0
        self.journal_records = 0
        self.journal_dropped = 0
        self.torn_writes = 0
        self.corrupt_writes = 0
        self.warm_restores = 0
        self.stale_dropped = 0
        self.corrupt_sections = 0
        self.recoveries = 0
        self.journal_replayed = 0
        self.recovery_seconds = 0.0
        self.last_recovery_seconds = 0.0
        self.compactions = 0
        self.injected_latency_seconds = 0.0

    # -- introspection ---------------------------------------------------------

    @property
    def snapshot_bytes(self) -> int:
        try:
            return os.path.getsize(self._snapshot_path)
        except OSError:
            return 0

    @property
    def journal_bytes(self) -> int:
        try:
            return os.path.getsize(self._journal_path)
        except OSError:
            return 0

    def bind_catalog(self, catalog) -> None:
        self.catalog = catalog

    # -- fault hooks -----------------------------------------------------------

    def _draw(self):
        """Caller holds ``_io_lock`` (fault counters are shared state)."""
        if self.injector is None or not self.injector.can_fault:
            return None
        decision = self.injector.draw()
        if decision.latency_seconds:
            self.injected_latency_seconds += decision.latency_seconds
        return decision

    def _flip_bit(self, data: bytes) -> bytes:
        corrupted = bytearray(data)
        index = min(int(self.injector.uniform() * len(corrupted)), len(corrupted) - 1)
        corrupted[index] ^= 1 << int(self.injector.uniform() * 8)
        return bytes(corrupted)

    # -- snapshot --------------------------------------------------------------

    def snapshot(self, caches) -> bool:
        """Serialize the live cache(s) into a fresh snapshot and reset
        the journal.  Returns False if an injected crash tore the write
        (the previous snapshot and journal survive untouched)."""
        return self.snapshot_records(collect_records(_caches_of(caches)))

    def snapshot_records(self, records: Dict[int, EntryRecord]) -> bool:
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("persist.snapshot", entries=len(records))
        ok = self._write_snapshot(records)
        if span is not None:
            span.set("ok", ok)
            span.set("snapshot_bytes", self.snapshot_bytes)
            self.tracer.end(span)
        return ok

    def _write_snapshot(self, records: Dict[int, EntryRecord]) -> bool:
        with self._io_lock:
            return self._write_snapshot_locked(records)

    def _write_snapshot_locked(self, records: Dict[int, EntryRecord]) -> bool:
        """Caller holds ``_io_lock``."""
        data = encode_snapshot(records, self._catalog_meta())
        if _inv.ACTIVE:
            # Round-trip self-check on the pristine bytes, before any
            # injected fault gets a chance to touch them.
            _inv.check_snapshot_roundtrip(records, data)
        temp_path = self._snapshot_path + ".tmp"
        decision = self._draw()
        if decision is not None and decision.fail:
            # Crash mid-write: a partial temp file is left behind and
            # never renamed — recovery still sees the old snapshot.
            cut = 1 + int(self.injector.uniform() * (len(data) - 1))
            with open(temp_path, "wb") as handle:
                handle.write(data[:cut])
            self.torn_writes += 1
            return False
        if decision is not None and decision.corrupt:
            data = self._flip_bit(data)
            self.corrupt_writes += 1
        with open(temp_path, "wb") as handle:
            handle.write(data)
            if self.fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temp_path, self._snapshot_path)
        with open(self._journal_path, "wb"):
            pass
        self._wedged = False
        self.snapshots_written += 1
        return True

    def _catalog_meta(self) -> dict:
        if self.catalog is None:
            return {}
        return {
            "tables": {
                name: {
                    "layout": table.layout_version,
                    "data": table.data_version,
                    "slices": table.num_slices,
                }
                for name, table in self.catalog.tables.items()
            }
        }

    # -- journal (write-through event hooks) ----------------------------------

    def log_state(self, entry, slice_id: int, state, table_layout: int) -> bool:
        """Journal an install/extend: entry metadata + the new state."""
        meta = EntryRecord.from_entry(entry, table_layout, with_states=False)
        payload = encode_state_event(meta, slice_id, StateRecord.from_state(state))
        return self._append(payload)

    def log_drop(self, key, slice_ids) -> bool:
        """Journal an invalidate/evict of ``key``'s listed slice states."""
        if not slice_ids:
            return True
        return self._append(encode_drop_event(key_digest(key), list(slice_ids)))

    def _append(self, payload: bytes) -> bool:
        with self._io_lock:
            if self._wedged:
                self.journal_dropped += 1
                return False
            framed = frame_record(payload)
            decision = self._draw()
            if decision is not None and decision.fail:
                cut = 1 + int(self.injector.uniform() * (len(framed) - 1))
                with open(self._journal_path, "ab") as handle:
                    handle.write(framed[:cut])
                self.torn_writes += 1
                self._wedged = True
                return False
            if decision is not None and decision.corrupt:
                framed = self._flip_bit(framed)
                self.corrupt_writes += 1
            with open(self._journal_path, "ab") as handle:
                handle.write(framed)
            self.journal_records += 1
            self._maybe_compact()
            return True

    # -- compaction ------------------------------------------------------------

    def _maybe_compact(self) -> None:
        journal_bytes = self.journal_bytes
        if journal_bytes <= self.min_compact_bytes:
            return
        if journal_bytes <= self.compact_factor * max(1, self.snapshot_bytes):
            return
        self.compact()

    def compact(self) -> bool:
        """Fold the journal into a fresh snapshot and truncate it.

        Replays the raw persisted state (no revalidation — compaction
        must not consult the live catalog, it only rewrites what the
        log already says).  A torn compaction write leaves snapshot and
        journal as they were.
        """
        # Hold the I/O lock across read-then-rewrite: an append landing
        # between the replay and the truncating snapshot would be lost.
        with self._io_lock:
            records, _issues = self._read_state()
            if self.snapshot_records(records):
                self.compactions += 1
                return True
            return False

    # -- recovery --------------------------------------------------------------

    def _read_state(self):
        """Snapshot + journal replay, damage-tolerant; never raises.

        Runs under ``_io_lock`` so a recovery never reads a snapshot
        mid-rotation or a journal mid-append.
        """
        with self._io_lock:
            return self._read_state_locked()

    def _read_state_locked(self):
        """Caller holds ``_io_lock``."""
        issues = DecodeIssues()
        records: Dict[int, EntryRecord] = {}
        meta: dict = {}
        try:
            with open(self._snapshot_path, "rb") as handle:
                snapshot_data = handle.read()
        except OSError:
            snapshot_data = b""
        try:
            records, meta, issues = decode_snapshot(snapshot_data)
        except Exception:  # pragma: no cover - decode_snapshot is total
            issues.corrupt_sections += 1
        try:
            with open(self._journal_path, "rb") as handle:
                journal_data = handle.read()
        except OSError:
            journal_data = b""
        replayed = replay_journal(records, journal_data, issues)
        issues_meta = {"meta": meta, "replayed": replayed}
        return records, (issues, issues_meta)

    def load(self, revalidate: bool = True) -> LoadResult:
        """Recover the persisted cache state.

        Reads the snapshot, replays the journal tail, and (with a bound
        catalog) revalidates every record against current table layout
        versions and build-side data versions.  Stale and damaged
        records are dropped and counted; the method never raises.
        """
        span = None
        if self.tracer is not None:
            span = self.tracer.begin("persist.load")
        start = time.perf_counter()
        records, (issues, extra) = self._read_state()
        result = LoadResult(
            records=records,
            snapshot_entries=len(records),
            journal_records=extra["replayed"],
            corrupt_sections=issues.corrupt_sections + (1 if issues.truncated else 0),
            truncated=issues.truncated,
            unsupported_version=issues.unsupported_version,
        )
        if revalidate and self.catalog is not None:
            result.stale_dropped = self._revalidate(records)
        result.seconds = time.perf_counter() - start
        # Recovery counters are read by the health monitor thread while
        # failover hydrations run on workers — update them under the
        # I/O lock (re-entrant, so the nested _read_state acquire above
        # already released it).
        with self._io_lock:
            self.recoveries += 1
            self.journal_replayed += result.journal_records
            self.recovery_seconds += result.seconds
            self.last_recovery_seconds = result.seconds
            self.stale_dropped += result.stale_dropped
            self.corrupt_sections += result.corrupt_sections
        if span is not None:
            span.set("entries", len(records))
            span.set("journal_records", result.journal_records)
            span.set("stale_dropped", result.stale_dropped)
            span.set("corrupt_sections", result.corrupt_sections)
            self.tracer.end(span)
        return result

    def _revalidate(self, records: Dict[int, EntryRecord]) -> int:
        """Drop records the current catalog says are stale; return count.

        Validity rules (DESIGN.md §9): the scanned table must still
        exist with the same slice count and the same vacuum epoch
        (``layout_version``); every build-side table must still be at
        the recorded ``data_version``; each state's watermark must not
        exceed its slice's current row count.
        """
        dropped = 0
        for digest in list(records):
            record = records[digest]
            table = self.catalog.tables.get(record.key.table)
            valid = (
                table is not None
                and record.table_layout == table.layout_version
                and record.num_slices == table.num_slices
            )
            if valid:
                for build_table, version in record.build_versions.items():
                    build = self.catalog.tables.get(build_table)
                    if build is None or build.data_version != version:
                        valid = False
                        break
            if not valid:
                del records[digest]
                dropped += 1
                continue
            bad_states = [
                slice_id
                for slice_id, state in record.states.items()
                if slice_id >= table.num_slices
                or state.last_cached_row > table.slices[slice_id].num_rows
            ]
            for slice_id in bad_states:
                del record.states[slice_id]
                dropped += 1
            if not record.states:
                del records[digest]
        return dropped

    # -- warm start ------------------------------------------------------------

    def hydrate(
        self,
        cache,
        owned: Optional[Callable[[int], bool]] = None,
    ) -> int:
        """Install the persisted (revalidated) entries into ``cache``.

        ``owned`` filters slice ids for cluster nodes (a node restores
        only its own slices' states).  Restored tables are watched
        immediately, so a vacuum between hydration and the first scan
        still invalidates — there is no unwatched window.  Returns the
        number of entries restored.

        The installs run *without* ``_io_lock`` held (only the
        underlying :meth:`load` takes it): ``install_restored`` takes
        the cache's lock, and the cache→store lock order must never be
        inverted.
        """
        result = self.load()
        restored = 0
        tables = set()
        for record in result.records.values():
            try:
                states = {
                    slice_id: state_record.to_state()
                    for slice_id, state_record in record.states.items()
                    if owned is None or owned(slice_id)
                }
            except Exception:
                with self._io_lock:
                    self.corrupt_sections += 1
                continue
            if not states:
                continue
            cache.install_restored(
                record.key,
                record.num_slices,
                record.build_versions,
                states,
                stats=(record.hits, record.rows_qualifying, record.rows_considered),
                table_layout=record.table_layout,
                provenance=record.provenance,
                source_digests=record.source_digests,
            )
            tables.add(record.key.table)
            restored += 1
            with self._io_lock:
                self.warm_restores += 1
        if self.catalog is not None:
            for name in tables:
                table = self.catalog.tables.get(name)
                if table is not None:
                    cache.watch_table(table)
        return restored

    def attach(self, cache, owned: Optional[Callable[[int], bool]] = None) -> int:
        """Hydrate ``cache`` from the store, then enable write-through."""
        restored = self.hydrate(cache, owned)
        cache.attach_store(self)
        return restored

    # -- observability ---------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_persist") -> None:
        """Expose the store on a :class:`~repro.obs.MetricsRegistry`."""
        for name, help_text in (
            ("journal_records", "Journal events appended"),
            ("journal_dropped", "Journal events dropped while wedged"),
            ("torn_writes", "Writes torn by injected crashes"),
            ("corrupt_writes", "Writes bit-flipped by injected corruption"),
            ("warm_restores", "Entries restored into caches at warm start"),
            ("stale_dropped", "Restored entries/states dropped as stale"),
            ("corrupt_sections", "Sections/records dropped by checksum or framing"),
            ("snapshots_written", "Complete snapshots rotated in"),
            ("compactions", "Journal compactions folded into snapshots"),
            ("recoveries", "Load (recovery) operations"),
            ("journal_replayed", "Journal events replayed during recoveries"),
            ("recovery_seconds", "Wall-clock seconds spent in recovery"),
            ("injected_latency_seconds", "Model-time latency injected on writes"),
        ):
            registry.counter(
                f"{prefix}_{name}_total",
                f"Cache store: {help_text}",
                fn=lambda s=self, n=name: getattr(s, n),
            )
        registry.gauge(
            f"{prefix}_snapshot_bytes",
            "Current snapshot file size",
            fn=lambda: self.snapshot_bytes,
        )
        registry.gauge(
            f"{prefix}_journal_bytes",
            "Current journal file size",
            fn=lambda: self.journal_bytes,
        )
        registry.gauge(
            f"{prefix}_last_recovery_seconds",
            "Duration of the most recent recovery",
            fn=lambda: self.last_recovery_seconds,
        )
