"""Predicate Caching — reproduction of Schmidt et al., SIGMOD 2024.

A query-driven secondary index for cloud data warehouses: scans cache
the row ranges that qualified their filter (and semi-join) predicates;
repeats of the same scan skip everything else.

Quickstart::

    from repro import Database, QueryEngine, PredicateCache
    from repro.storage import TableSchema, ColumnSpec, DataType

    db = Database()
    db.create_table(TableSchema("t", (ColumnSpec("x", DataType.INT64),)))
    engine = QueryEngine(db, predicate_cache=PredicateCache())
    engine.insert("t", {"x": range(100_000)})
    result = engine.execute("select count(*) from t where x < 10")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .cluster import ClusterCaches
from .core import (
    AlwaysAdmit,
    CacheStats,
    CostBasedPolicy,
    PredicateCache,
    PredicateCacheConfig,
    RangeList,
    ReuseStats,
    RowRange,
    ScanKey,
    SemiJoinDescriptor,
)
from .engine import CostModel, QueryCounters, QueryEngine, QueryResult
from .faults import (
    CircuitBreaker,
    CorruptedBlockError,
    FaultInjector,
    RetryBudgetExceeded,
    RetryPolicy,
    StorageFault,
    TransientStorageError,
)
from .obs import MetricsRegistry, Span, Tracer
from .persist import CacheStore
from .predicates import normalize, parse_predicate
from .serve import (
    AdmissionController,
    QueryServer,
    Request,
    RequestStatus,
    Response,
)
from .storage import (
    ColumnSpec,
    Database,
    DataType,
    MemmapBlockStore,
    Table,
    TableSchema,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AlwaysAdmit",
    "CacheStats",
    "CacheStore",
    "CircuitBreaker",
    "ClusterCaches",
    "CorruptedBlockError",
    "CostBasedPolicy",
    "ColumnSpec",
    "CostModel",
    "Database",
    "MemmapBlockStore",
    "DataType",
    "FaultInjector",
    "MetricsRegistry",
    "PredicateCache",
    "PredicateCacheConfig",
    "QueryCounters",
    "QueryEngine",
    "QueryResult",
    "QueryServer",
    "RangeList",
    "Request",
    "RequestStatus",
    "Response",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "ReuseStats",
    "RowRange",
    "ScanKey",
    "SemiJoinDescriptor",
    "Span",
    "StorageFault",
    "Table",
    "TransientStorageError",
    "TableSchema",
    "Tracer",
    "normalize",
    "parse_predicate",
]
