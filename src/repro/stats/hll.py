"""HyperLogLog distinct-value sketches.

Standard HLL (Flajolet et al.) with the usual small-range correction,
vectorized over numpy arrays: values are hashed with a 64-bit mixer,
the top ``p`` bits select a register, and the register keeps the
maximum number of leading zeros (+1) of the remaining bits.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["HyperLogLog"]

_MIX = np.uint64(0xFF51AFD7ED558CCD)
_MIX2 = np.uint64(0xC4CEB9FE1A85EC53)


def _hash64(values: np.ndarray) -> np.ndarray:
    """A 64-bit avalanche mix (splitmix-style) over int64 inputs."""
    if values.dtype == object:
        # Stable FNV-1a over the string form: builtin hash() is salted
        # per process for str, which would make sketch contents (and the
        # estimates derived from them) irreproducible across runs.
        # Imported lazily: repro.engine pulls in the whole engine stack.
        from ..engine.hashing import fnv1a_hash

        values = fnv1a_hash(values.astype("U"))
    x = values.astype(np.int64, copy=False).view(np.uint64).copy()
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(33)
        x *= _MIX
        x ^= x >> np.uint64(33)
        x *= _MIX2
        x ^= x >> np.uint64(33)
    return x


class HyperLogLog:
    """A distinct-count sketch with ~1.04/sqrt(2^p) relative error."""

    def __init__(self, p: int = 12) -> None:
        if not 4 <= p <= 18:
            raise ValueError("p must be in [4, 18]")
        self.p = p
        self.m = 1 << p
        self._registers = np.zeros(self.m, dtype=np.uint8)

    def add_many(self, values: np.ndarray) -> None:
        """Fold all values into the sketch (vectorized)."""
        values = np.asarray(values)
        if len(values) == 0:
            return
        hashed = _hash64(values)
        registers = (hashed >> np.uint64(64 - self.p)).astype(np.int64)
        remainder = hashed << np.uint64(self.p) | np.uint64(1 << (self.p - 1))
        # Leading zeros of the remainder + 1 == 64 - bit_length + 1.
        # numpy has no clz; use log2 via the exponent bits of float64,
        # which is exact for the leading-one position.
        bit_length = np.frexp(remainder.astype(np.float64))[1]
        rho = (64 - bit_length + 1).astype(np.uint8)
        np.maximum.at(self._registers, registers, rho)

    def cardinality(self) -> float:
        """The HLL estimate with small-range (linear counting) fix."""
        registers = self._registers.astype(np.float64)
        alpha = 0.7213 / (1.0 + 1.079 / self.m)
        estimate = alpha * self.m * self.m / np.sum(np.power(2.0, -registers))
        zeros = int(np.count_nonzero(self._registers == 0))
        if estimate <= 2.5 * self.m and zeros:
            return self.m * math.log(self.m / zeros)
        return float(estimate)

    def merge(self, other: "HyperLogLog") -> None:
        """Union with another sketch of the same precision."""
        if other.p != self.p:
            raise ValueError("cannot merge sketches of different precision")
        np.maximum(self._registers, other._registers, out=self._registers)

    @property
    def nbytes(self) -> int:
        return int(self._registers.nbytes)
