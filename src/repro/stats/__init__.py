"""Table statistics: the optimizer's cost inputs.

Warehouses maintain per-column statistics via ANALYZE (the paper's
Table 2 counts those runs under "other" statements).  This package
implements the standard toolkit:

* :mod:`repro.stats.hll` — HyperLogLog distinct-value sketches,
* :mod:`repro.stats.histogram` — equi-depth histograms with a
  most-common-values list,
* :mod:`repro.stats.collector` — ANALYZE: sample a table, build the
  per-column statistics, and estimate predicate selectivities for the
  planner (join ordering) and the cache admission policy.
"""

from .collector import ColumnStatistics, TableStatistics, analyze_table
from .histogram import EquiDepthHistogram
from .hll import HyperLogLog

__all__ = [
    "ColumnStatistics",
    "EquiDepthHistogram",
    "HyperLogLog",
    "TableStatistics",
    "analyze_table",
]
