"""Equi-depth histograms with a most-common-values list.

The classic optimizer statistic: ``num_buckets`` quantile boundaries
over a sample, plus the top-k most common values with their observed
frequencies (equality estimates for skewed columns, exactly what the
skewed TPC-H workload needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..predicates.ast import Bounds

__all__ = ["EquiDepthHistogram"]


@dataclass
class EquiDepthHistogram:
    """Histogram over a numeric (or orderable) column sample."""

    boundaries: np.ndarray  # num_buckets + 1 quantile edges
    mcv_values: List[object]
    mcv_fractions: List[float]
    sample_size: int

    @classmethod
    def build(
        cls,
        values: np.ndarray,
        num_buckets: int = 32,
        num_mcv: int = 8,
    ) -> "EquiDepthHistogram":
        values = np.asarray(values)
        if len(values) == 0:
            return cls(np.array([]), [], [], 0)
        if values.dtype == object:
            values = np.sort(values.astype(object))
            quantile_positions = np.linspace(
                0, len(values) - 1, num_buckets + 1
            ).astype(int)
            boundaries = values[quantile_positions]
        else:
            boundaries = np.quantile(
                values, np.linspace(0.0, 1.0, num_buckets + 1)
            )
        uniques, counts = np.unique(values, return_counts=True)
        order = np.argsort(counts)[::-1][:num_mcv]
        mcv_values = [
            u.item() if isinstance(u, np.generic) else u for u in uniques[order]
        ]
        mcv_fractions = [float(c) / len(values) for c in counts[order]]
        return cls(
            boundaries=np.asarray(boundaries),
            mcv_values=mcv_values,
            mcv_fractions=mcv_fractions,
            sample_size=int(len(values)),
        )

    # -- estimates ----------------------------------------------------------------

    @property
    def num_buckets(self) -> int:
        return max(0, len(self.boundaries) - 1)

    def equality_fraction(self, value: object, ndv: float) -> float:
        """Estimated fraction of rows equal to ``value``."""
        if self.sample_size == 0:
            return 0.0
        for mcv, fraction in zip(self.mcv_values, self.mcv_fractions):
            if mcv == value:
                return fraction
        # Not a common value: uniform share of the non-MCV mass.
        mcv_mass = sum(self.mcv_fractions)
        rest_ndv = max(1.0, ndv - len(self.mcv_values))
        return max(0.0, (1.0 - mcv_mass)) / rest_ndv

    def range_fraction(self, bounds: Bounds) -> float:
        """Estimated fraction of rows inside ``bounds``.

        Handles heavy duplicates (boundary runs) correctly: the mass of
        a value that spans several quantile boundaries is attributed to
        the inclusive side only.
        """
        if self.sample_size == 0 or self.num_buckets == 0:
            return 1.0
        hi_cumulative = (
            self._cumulative(bounds.hi, inclusive=not bounds.hi_strict)
            if bounds.hi is not None
            else 1.0
        )
        lo_cumulative = (
            self._cumulative(bounds.lo, inclusive=bounds.lo_strict)
            if bounds.lo is not None
            else 0.0
        )
        return float(max(0.0, min(1.0, hi_cumulative - lo_cumulative)))

    def _cumulative(self, value: object, inclusive: bool) -> float:
        """Estimated fraction of values ``<= value`` (or ``< value``).

        ``searchsorted`` over the quantile boundaries counts how many
        boundary quantiles the value covers — exactly the cumulative
        mass, duplicates included; linear interpolation fills in within
        a bucket.
        """
        boundaries = self.boundaries
        side = "right" if inclusive else "left"
        try:
            idx = int(np.searchsorted(boundaries, value, side=side))
        except TypeError:
            return 0.5  # incomparable types: no information
        if idx <= 0:
            return 0.0
        if idx >= len(boundaries):
            return 1.0
        lo, hi = boundaries[idx - 1], boundaries[idx]
        within = 0.0
        if lo < value < hi:
            try:
                within = float((value - lo) / (hi - lo))
            except TypeError:
                within = 0.5  # orderable but not arithmetic (strings)
        return ((idx - 1) + within) / self.num_buckets

    @property
    def nbytes(self) -> int:
        return int(self.boundaries.nbytes if self.boundaries.dtype != object else
                   len(self.boundaries) * 16) + 24 * len(self.mcv_values)
