"""ANALYZE: collect table statistics and estimate selectivities.

``analyze_table`` samples every column of a table (through managed
storage, so the cost is accounted like any scan), builds per-column
NDV sketches and histograms, and returns a :class:`TableStatistics`
the planner uses to order joins and the admission policy can consult.

Selectivity estimation walks the predicate AST with the textbook
independence assumptions: conjuncts multiply, disjuncts add with the
inclusion-exclusion correction, NOT complements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from ..core.rowrange import RangeList
from ..predicates.ast import (
    And,
    Between,
    Bounds,
    ColumnComparison,
    Comparison,
    FalsePredicate,
    InList,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from ..storage.table import Table
from .histogram import EquiDepthHistogram
from .hll import HyperLogLog

__all__ = ["ColumnStatistics", "TableStatistics", "analyze_table"]


@dataclass
class ColumnStatistics:
    """Statistics of one column."""

    column: str
    ndv: float
    histogram: EquiDepthHistogram
    num_sampled: int

    @property
    def nbytes(self) -> int:
        return self.histogram.nbytes + 8


@dataclass
class TableStatistics:
    """Statistics of one table at analyze time."""

    table: str
    num_rows: int
    data_version: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    # -- selectivity estimation ---------------------------------------------------

    def selectivity(self, predicate: Predicate) -> float:
        """Estimated qualifying fraction in [0, 1]."""
        return float(min(1.0, max(0.0, self._estimate(predicate))))

    def estimated_rows(self, predicate: Predicate) -> float:
        return self.num_rows * self.selectivity(predicate)

    def _estimate(self, predicate: Predicate) -> float:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, And):
            result = 1.0
            for operand in predicate.operands:
                result *= self._estimate(operand)
            return result
        if isinstance(predicate, Or):
            result = 0.0
            for operand in predicate.operands:
                s = self._estimate(operand)
                result = result + s - result * s  # inclusion-exclusion
            return result
        if isinstance(predicate, Not):
            return 1.0 - self._estimate(predicate.operand)
        if isinstance(predicate, Comparison):
            return self._estimate_comparison(predicate)
        if isinstance(predicate, Between):
            stats = self.columns.get(predicate.column.name)
            if stats is None:
                return 0.25
            return stats.histogram.range_fraction(
                Bounds(lo=predicate.low.value, hi=predicate.high.value)
            )
        if isinstance(predicate, InList):
            stats = self.columns.get(predicate.column.name)
            if stats is None:
                return min(1.0, 0.05 * len(predicate.values))
            return min(
                1.0,
                sum(
                    stats.histogram.equality_fraction(v, stats.ndv)
                    for v in predicate.values
                ),
            )
        if isinstance(predicate, Like):
            # Prefix patterns estimate via their implied range; generic
            # patterns fall back to a fixed guess.
            bounds = predicate.bounds(predicate.column.name)
            stats = self.columns.get(predicate.column.name)
            if bounds is not None and stats is not None:
                fraction = stats.histogram.range_fraction(bounds)
            else:
                fraction = 0.1
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, ColumnComparison):
            return 0.5 if predicate.op != "=" else 0.05
        if isinstance(predicate, IsNull):
            # The engine stores no nulls unless a validity column exists.
            return 0.99 if predicate.negated else 0.01
        return 0.33  # unknown node type: neutral guess

    def _estimate_comparison(self, predicate: Comparison) -> float:
        stats = self.columns.get(predicate.column.name)
        if stats is None:
            return {"=": 0.05, "<>": 0.95}.get(predicate.op, 0.3)
        value = predicate.literal.value
        if predicate.op == "=":
            return stats.histogram.equality_fraction(value, stats.ndv)
        if predicate.op == "<>":
            return 1.0 - stats.histogram.equality_fraction(value, stats.ndv)
        bounds = predicate.bounds(predicate.column.name)
        if bounds is None:
            return 0.3
        return stats.histogram.range_fraction(bounds)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.columns.values())


def analyze_table(
    table: Table,
    txid: int,
    sample_rows: int = 10_000,
    num_buckets: int = 32,
    seed: int = 0,
) -> TableStatistics:
    """ANALYZE: sample the table and build per-column statistics."""
    statistics = TableStatistics(
        table=table.name,
        num_rows=table.visible_row_count(txid),
        data_version=table.data_version,
    )
    rng = np.random.default_rng(seed)
    for name in table.schema.column_names:
        pieces = []
        for data_slice in table.slices:
            n = data_slice.num_rows
            if n == 0:
                continue
            per_slice = max(1, sample_rows // max(1, table.num_slices))
            if n <= per_slice:
                ranges = RangeList.full(n)
            else:
                picks = np.sort(rng.choice(n, size=per_slice, replace=False))
                ranges = RangeList.from_rows(picks)
            pieces.append(data_slice.columns[name].read_ranges(ranges, table.rms))
        if pieces:
            if pieces[0].dtype == object:
                sample = np.concatenate([np.asarray(p, dtype=object) for p in pieces])
            else:
                sample = np.concatenate(pieces)
        else:
            sample = np.array([])
        hll = HyperLogLog()
        hll.add_many(sample)
        # Scale sampled NDV toward the table (bounded by row count).
        sampled_ndv = hll.cardinality()
        scale = statistics.num_rows / max(1, len(sample))
        ndv = min(statistics.num_rows, sampled_ndv * max(1.0, min(scale, 1.0) + (scale - 1.0) * 0.1))
        statistics.columns[name] = ColumnStatistics(
            column=name,
            ndv=float(max(1.0, ndv)),
            histogram=EquiDepthHistogram.build(sample, num_buckets=num_buckets),
            num_sampled=int(len(sample)),
        )
    return statistics
