"""Per-node cache routing for multi-node clusters."""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from ..core.cache import PredicateCache
from ..core.config import PredicateCacheConfig
from ..core.stats import CacheStats
from ..faults.errors import NodeDownError

__all__ = ["ClusterCaches", "DownedCache"]


class DownedCache:
    """Tombstone standing in for a dead node's cache.

    :meth:`ClusterCaches.kill_node` swaps one of these into the node
    list to model a compute node whose process died: every cache
    operation raises :class:`~repro.faults.NodeDownError`, the way an
    RPC to a crashed node fails.  The scan path catches the error at
    cache-context resolution and degrades to cache-off scans for the
    node's slices; the health monitor's ``ping`` probes turn the raise
    into missed heartbeats and eventually mark the node down, after
    which the router stops handing the tombstone out at all
    (DESIGN.md §13).
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def _refuse(self, *_args, **_kwargs):
        raise NodeDownError(f"cache node {self.node_id} is down")

    ping = _refuse
    lookup = _refuse
    select_entry = _refuse
    get_or_create = _refuse
    record_slice_scan = _refuse
    record_entry_stats = _refuse
    admits = _refuse
    watch_table = _refuse
    watched_tables = _refuse
    table_layout_of = _refuse
    generation_of = _refuse
    install_restored = _refuse
    attach_store = _refuse
    detach_store = _refuse
    invalidate_table = _refuse
    invalidate_build_side = _refuse
    drop_stale = _refuse
    trim_to_bytes = _refuse
    clear = _refuse
    entries = _refuse
    keys = _refuse

    @property
    def total_nbytes(self) -> int:
        self._refuse()
        raise AssertionError("unreachable")  # pragma: no cover

    @property
    def stats(self) -> CacheStats:
        self._refuse()
        raise AssertionError("unreachable")  # pragma: no cover


class ClusterCaches:
    """N independent per-node predicate caches, routed by slice id.

    Slice ``s`` belongs to node ``s % num_nodes`` — the same static
    assignment the leader uses for data slices.  Each node's cache
    fills only its own slices' states of each entry; no state is ever
    shared or synchronized between nodes (§4.6).

    The object exposes ``cache_for_slice``, which the scan path detects
    and uses for routing; everything else (aggregate stats, memory,
    failure injection, persistence) is operator convenience.

    With a :class:`~repro.persist.CacheStore` attached, every node
    writes its cache events through to the store, initial nodes and the
    replacements created by :meth:`fail_node` / :meth:`resize` hydrate
    their slice shares from it (warm start), and restored entries are
    revalidated against the store's bound catalog first.

    Concurrency: the router itself holds no lock — each
    :class:`PredicateCache` node is internally synchronized, and the
    only router-level mutations (``fail_node`` swapping one element,
    ``resize`` swapping the whole node list) publish by single
    reference assignment, which readers snapshot (see
    :meth:`cache_for_slice`).  Administrative operations themselves
    (resize/fail_node racing each other) are expected to be serialized
    by the operator, e.g. under the serving layer's write lock.

    **Canonical shard-lock order** (enforced by ``tools.analyze``
    RP010 on the global lock-order graph): at most one node cache's
    lock may be held at a time.  Cross-node operations — aggregate
    stats, ``clear_all``, hydration, the health monitor's probes —
    visit nodes sequentially in ascending node id and never call into
    node *j*'s cache while holding node *i*'s lock.  All node caches
    share the lock name ``PredicateCache._lock``, and the runtime
    witness skips only *same-instance* re-entry — so a nested
    cross-node acquisition records a ``PredicateCache._lock →
    PredicateCache._lock`` edge that is absent from the static graph
    (the static side elides re-entrant self-edges) and fails the
    witness cross-check.  The reference-swap mutations above are
    deliberately lock-free and carry RP012 waivers (see
    ``tools/analyze/waivers.toml``).
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[PredicateCacheConfig] = None,
        policy_factory=None,
        store=None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.config = config if config is not None else PredicateCacheConfig()
        self.policy_factory = policy_factory
        self._store = store
        self._registrations: List[tuple] = []
        # Nodes the health monitor declared dead: the router returns
        # None for their slices (degraded cache-off scans) instead of
        # handing out the tombstone.  Published by whole-set swap.
        self._down: FrozenSet[int] = frozenset()
        #: Scrape-side counter: slices routed around because their
        #: owning node was marked down (an int += is GIL-atomic enough
        #: for a monotonic metric).
        self.down_route_fallbacks = 0
        self._nodes: List[PredicateCache] = [
            self._new_node() for _ in range(num_nodes)
        ]
        if store is not None:
            for node_id, cache in enumerate(self._nodes):
                self._hydrate_node(node_id, cache)

    def _new_node(self) -> PredicateCache:
        return PredicateCache(
            self.config,
            policy=self.policy_factory() if self.policy_factory is not None else None,
        )

    def _hydrate_node(self, node_id: int, cache: PredicateCache) -> int:
        """Warm-start one node from the store: restore only the slice
        states this node owns under the *current* shard layout, then
        enable write-through."""
        num_nodes = self.num_nodes
        return self._store.attach(
            cache, owned=lambda slice_id: slice_id % num_nodes == node_id
        )

    # -- routing (the scan-path interface) -------------------------------------

    def cache_for_slice(self, slice_id: int) -> Optional[PredicateCache]:
        # Snapshot the node list once and derive the modulus from it:
        # a concurrent resize() publishes a new list as a single
        # reference swap, so the captured list and its length always
        # agree (indexing self._nodes by self.num_nodes separately
        # could race a grow and fall off the shorter old list).
        nodes = self._nodes
        node_id = slice_id % len(nodes)
        if node_id in self._down:
            # Failover routing: the owning node was declared dead, so
            # its slices scan cache-off until a replacement is restored
            # (the scan path treats a None cache as "no cache node").
            self.down_route_fallbacks += 1
            return None
        return nodes[node_id]

    # -- operator surface ---------------------------------------------------------

    def node(self, node_id: int) -> PredicateCache:
        return self._nodes[node_id]

    def nodes(self) -> List[PredicateCache]:
        """The live per-node caches (persistence snapshots read these).

        Killed nodes' tombstones are excluded: a dead node's state is
        unreachable, so snapshots and in-memory re-shards work from the
        survivors only.
        """
        return [c for c in self._nodes if not isinstance(c, DownedCache)]

    @property
    def store(self):
        return self._store

    # -- failure injection & liveness marking ----------------------------------

    def kill_node(self, node_id: int) -> None:
        """Kill one node's process (drill injection, DESIGN.md §13).

        The node's cache is replaced by a :class:`DownedCache`
        tombstone: until the health monitor detects the death and marks
        the node down, scans routed to it fail with
        :class:`~repro.faults.NodeDownError` and degrade to cache-off —
        the undetected-failure window is modeled, not skipped.  The dead
        cache is detached from the store first (a crashed process stops
        journaling).  Idempotent.
        """
        dead = self._nodes[node_id]
        if isinstance(dead, DownedCache):
            return
        dead.detach_store()
        self._nodes[node_id] = DownedCache(node_id)

    def mark_down(self, node_id: int) -> None:
        """Declare a node dead: route its slices cache-off from now on."""
        self._down = self._down | {node_id}

    def mark_up(self, node_id: int) -> None:
        """Clear a node's down marker (its slot must hold a live cache)."""
        self._down = self._down - {node_id}

    def is_down(self, node_id: int) -> bool:
        return node_id in self._down

    def down_nodes(self) -> List[int]:
        return sorted(self._down)

    def fail_node(self, node_id: int) -> PredicateCache:
        """Simulate a node failure.

        A new compute node downloads its data slices from managed
        storage (§4.2.1).  Without a store its cache starts cold and
        only its share of each entry must be relearned — the other
        nodes keep theirs.  With a store attached, the replacement
        hydrates its slice share from the last snapshot + journal
        (revalidated against the catalog) and continues warm.  The
        replacement is built exactly like the original node, including
        a fresh policy from ``policy_factory`` (a failure must not
        silently downgrade a cost-based cluster to default admission).
        """
        replacement = self._new_node()
        self._nodes[node_id] = replacement
        if self._store is not None:
            self._hydrate_node(node_id, replacement)
        # Restoring a node also clears its down marker: the router may
        # hand the replacement out as soon as it is hydrated.
        self._down = self._down - {node_id}
        return replacement

    def resize(self, num_nodes: int) -> "ClusterCaches":
        """Re-shard the cluster to ``num_nodes`` compute nodes.

        Slice ownership is recomputed (``slice % num_nodes``), so every
        entry's per-slice states move to their new owning node.  With a
        store attached the new nodes hydrate from it (snapshot first,
        so nothing learned since the last rotation is lost); without
        one, states are re-sharded in memory from the old nodes.  Table
        subscriptions move too — a vacuum right after the resize still
        invalidates.  Metrics registered through
        :meth:`register_metrics` are re-registered so new node labels
        appear and the cluster rollups stay consistent.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if num_nodes == self.num_nodes:
            return self
        from ..persist.records import collect_records

        # Tombstones of killed nodes are excluded: a re-shard works
        # from surviving state, exactly like a real cluster resize
        # after a node loss.
        old_nodes = self.nodes()
        records = None
        if self._store is not None:
            self._store.snapshot(self)
        else:
            records = collect_records(old_nodes)
        self.num_nodes = num_nodes
        # Build and hydrate the new shard off to the side, then publish
        # the node list as one reference swap: concurrent scans routing
        # through cache_for_slice see either the complete old layout or
        # the complete new one, never a half-built mix.
        new_nodes = [self._new_node() for _ in range(num_nodes)]
        watched = {
            table.name: table
            for cache in old_nodes
            for table in cache.watched_tables()
        }
        for node_id, cache in enumerate(new_nodes):
            if self._store is not None:
                self._hydrate_node(node_id, cache)
            else:
                self._install_shard(cache, node_id, records)
            for table in watched.values():
                cache.watch_table(table)
        self._nodes = new_nodes
        # Every slot now holds a freshly built live cache; down markers
        # referred to the old layout's node ids.
        self._down = frozenset()
        for registry, prefix in self._registrations:
            self._register(registry, prefix)
        return self

    def _install_shard(self, cache: PredicateCache, node_id: int, records) -> None:
        """In-memory re-shard: install this node's slice share."""
        for record in records.values():
            states = {
                slice_id: state_record.to_state()
                for slice_id, state_record in record.states.items()
                if slice_id % self.num_nodes == node_id
            }
            if not states:
                continue
            cache.install_restored(
                record.key,
                record.num_slices,
                record.build_versions,
                states,
                stats=(record.hits, record.rows_qualifying, record.rows_considered),
                table_layout=record.table_layout,
                provenance=record.provenance,
                source_digests=record.source_digests,
            )

    def clear(self) -> None:
        for cache in self.nodes():
            cache.clear()

    def trim_to_bytes(self, budget_bytes: int) -> int:
        """Trim the cluster's caches toward a byte budget (DESIGN.md §13).

        Each live node gets a share of the budget proportional to its
        current payload, so a hot node is trimmed harder than a cold
        one.  Returns the total payload bytes released.
        """
        live = self.nodes()
        per_node = [cache.total_nbytes for cache in live]
        total = sum(per_node)
        if total <= budget_bytes or total == 0:
            return 0
        released = 0
        for cache, nbytes in zip(live, per_node):
            target = (budget_bytes * nbytes) // total
            released += cache.trim_to_bytes(target)
        return released

    # -- observability ---------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_predicate_cache") -> None:
        """Expose every node's cache plus cluster-level rollups.

        Each node gets the standard per-cache series labelled with its
        node id, read *through the router* at scrape time so a node
        replaced by :meth:`fail_node` reports its successor, not the
        dead cache.  After :meth:`resize`, removed node ids report zero
        and new node ids are registered automatically.  The cluster
        adds aggregate gauges so dashboards do not need to sum label
        sets client-side.
        """
        if (registry, prefix) not in self._registrations:
            self._registrations.append((registry, prefix))
        self._register(registry, prefix)

    def _register(self, registry, prefix: str) -> None:
        for node_id in range(self.num_nodes):
            labels = {"node": str(node_id)}
            for field_name in vars(CacheStats()):
                registry.counter(
                    f"{prefix}_{field_name}_total",
                    f"Predicate cache {field_name.replace('_', ' ')}",
                    labels=labels,
                    fn=lambda n=node_id, f=field_name: self._node_stat(n, f),
                )
            registry.gauge(
                f"{prefix}_entries",
                "Live predicate-cache entries",
                labels=labels,
                fn=lambda n=node_id: self._node_value(n, len, 0),
            )
            registry.gauge(
                f"{prefix}_nbytes",
                "Total payload bytes across entries (Table 3 metric)",
                labels=labels,
                fn=lambda n=node_id: self._node_value(
                    n, lambda c: c.total_nbytes, 0
                ),
            )
            registry.gauge(
                f"{prefix}_hit_rate",
                "Hits over lookups (Fig. 13 metric)",
                labels=labels,
                fn=lambda n=node_id: self._node_value(
                    n, lambda c: c.stats.hit_rate, 0.0
                ),
            )
        registry.gauge(
            f"{prefix}_cluster_nbytes",
            "Summed predicate-cache payload bytes across nodes",
            fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_cluster_keys",
            "Distinct scan keys cached anywhere in the cluster",
            fn=lambda: len(self),
        )
        registry.gauge(
            f"{prefix}_cluster_nodes",
            "Compute nodes in the cluster",
            fn=lambda: self.num_nodes,
        )

    def _node_stat(self, node_id: int, field: str):
        """Scrape helper: node ids removed by a resize — or currently
        dead — report zero instead of dangling into the shrunk node
        list or raising out of a scrape."""
        if node_id >= len(self._nodes):
            return 0
        node = self._nodes[node_id]
        if isinstance(node, DownedCache):
            return 0
        return getattr(node.stats, field)

    def _node_value(self, node_id: int, fn, default):
        if node_id >= len(self._nodes):
            return default
        node = self._nodes[node_id]
        if isinstance(node, DownedCache):
            return default
        return fn(node)

    # -- aggregation -----------------------------------------------------------------

    @property
    def total_nbytes(self) -> int:
        return sum(cache.total_nbytes for cache in self.nodes())

    def per_node_nbytes(self) -> List[int]:
        """Per-slot payload bytes (dead nodes report zero)."""
        return [
            0 if isinstance(cache, DownedCache) else cache.total_nbytes
            for cache in self._nodes
        ]

    def per_node_entries(self) -> List[int]:
        """Per-slot entry counts (dead nodes report zero)."""
        return [
            0 if isinstance(cache, DownedCache) else len(cache)
            for cache in self._nodes
        ]

    def aggregate_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self.nodes():
            for field in vars(total):
                setattr(
                    total, field,
                    getattr(total, field) + getattr(cache.stats, field),
                )
        return total

    def __len__(self) -> int:
        """Distinct keys across live nodes (entries are per-node shards)."""
        keys = set()
        for cache in self.nodes():
            keys.update(cache.keys())
        return len(keys)
