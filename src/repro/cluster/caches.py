"""Per-node cache routing for multi-node clusters."""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.cache import PredicateCache
from ..core.config import PredicateCacheConfig
from ..core.stats import CacheStats

__all__ = ["ClusterCaches"]


class ClusterCaches:
    """N independent per-node predicate caches, routed by slice id.

    Slice ``s`` belongs to node ``s % num_nodes`` — the same static
    assignment the leader uses for data slices.  Each node's cache
    fills only its own slices' states of each entry; no state is ever
    shared or synchronized between nodes (§4.6).

    The object exposes ``cache_for_slice``, which the scan path detects
    and uses for routing; everything else (aggregate stats, memory,
    failure injection) is operator convenience.
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[PredicateCacheConfig] = None,
        policy_factory=None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.config = config if config is not None else PredicateCacheConfig()
        self.policy_factory = policy_factory
        self._nodes: List[PredicateCache] = [
            self._new_node() for _ in range(num_nodes)
        ]

    def _new_node(self) -> PredicateCache:
        return PredicateCache(
            self.config,
            policy=self.policy_factory() if self.policy_factory is not None else None,
        )

    # -- routing (the scan-path interface) -------------------------------------

    def cache_for_slice(self, slice_id: int) -> PredicateCache:
        return self._nodes[slice_id % self.num_nodes]

    # -- operator surface ---------------------------------------------------------

    def node(self, node_id: int) -> PredicateCache:
        return self._nodes[node_id]

    def fail_node(self, node_id: int) -> PredicateCache:
        """Simulate a node failure: the replacement starts cold.

        A new compute node downloads its data slices from managed
        storage (§4.2.1) but has no cache state; only its share of each
        entry must be relearned — the other nodes keep theirs.  The
        replacement is built exactly like the original node, including a
        fresh policy from ``policy_factory`` (a failure must not
        silently downgrade a cost-based cluster to default admission).
        """
        replacement = self._new_node()
        self._nodes[node_id] = replacement
        return replacement

    def clear(self) -> None:
        for cache in self._nodes:
            cache.clear()

    # -- observability ---------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_predicate_cache") -> None:
        """Expose every node's cache plus cluster-level rollups.

        Each node gets the standard per-cache series labelled with its
        node id, read *through the router* at scrape time so a node
        replaced by :meth:`fail_node` reports its successor, not the
        dead cache.  The cluster adds aggregate gauges so dashboards do
        not need to sum label sets client-side.
        """
        for node_id in range(self.num_nodes):
            labels = {"node": str(node_id)}
            for field_name in vars(CacheStats()):
                registry.counter(
                    f"{prefix}_{field_name}_total",
                    f"Predicate cache {field_name.replace('_', ' ')}",
                    labels=labels,
                    fn=lambda n=node_id, f=field_name: getattr(
                        self._nodes[n].stats, f
                    ),
                )
            registry.gauge(
                f"{prefix}_entries",
                "Live predicate-cache entries",
                labels=labels,
                fn=lambda n=node_id: len(self._nodes[n]),
            )
            registry.gauge(
                f"{prefix}_nbytes",
                "Total payload bytes across entries (Table 3 metric)",
                labels=labels,
                fn=lambda n=node_id: self._nodes[n].total_nbytes,
            )
            registry.gauge(
                f"{prefix}_hit_rate",
                "Hits over lookups (Fig. 13 metric)",
                labels=labels,
                fn=lambda n=node_id: self._nodes[n].stats.hit_rate,
            )
        registry.gauge(
            f"{prefix}_cluster_nbytes",
            "Summed predicate-cache payload bytes across nodes",
            fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_cluster_keys",
            "Distinct scan keys cached anywhere in the cluster",
            fn=lambda: len(self),
        )
        registry.gauge(
            f"{prefix}_cluster_nodes",
            "Compute nodes in the cluster",
            fn=lambda: self.num_nodes,
        )

    # -- aggregation -----------------------------------------------------------------

    @property
    def total_nbytes(self) -> int:
        return sum(cache.total_nbytes for cache in self._nodes)

    def per_node_nbytes(self) -> List[int]:
        return [cache.total_nbytes for cache in self._nodes]

    def per_node_entries(self) -> List[int]:
        return [len(cache) for cache in self._nodes]

    def aggregate_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._nodes:
            for field in vars(total):
                setattr(
                    total, field,
                    getattr(total, field) + getattr(cache.stats, field),
                )
        return total

    def __len__(self) -> int:
        """Distinct keys across nodes (entries are per-node shards)."""
        keys = set()
        for cache in self._nodes:
            keys.update(cache.keys())
        return len(keys)
