"""Per-node cache routing for multi-node clusters."""

from __future__ import annotations

from typing import List, Optional

from ..core.cache import PredicateCache
from ..core.config import PredicateCacheConfig
from ..core.stats import CacheStats

__all__ = ["ClusterCaches"]


class ClusterCaches:
    """N independent per-node predicate caches, routed by slice id.

    Slice ``s`` belongs to node ``s % num_nodes`` — the same static
    assignment the leader uses for data slices.  Each node's cache
    fills only its own slices' states of each entry; no state is ever
    shared or synchronized between nodes (§4.6).

    The object exposes ``cache_for_slice``, which the scan path detects
    and uses for routing; everything else (aggregate stats, memory,
    failure injection, persistence) is operator convenience.

    With a :class:`~repro.persist.CacheStore` attached, every node
    writes its cache events through to the store, initial nodes and the
    replacements created by :meth:`fail_node` / :meth:`resize` hydrate
    their slice shares from it (warm start), and restored entries are
    revalidated against the store's bound catalog first.

    Concurrency: the router itself holds no lock — each
    :class:`PredicateCache` node is internally synchronized, and the
    only router-level mutations (``fail_node`` swapping one element,
    ``resize`` swapping the whole node list) publish by single
    reference assignment, which readers snapshot (see
    :meth:`cache_for_slice`).  Administrative operations themselves
    (resize/fail_node racing each other) are expected to be serialized
    by the operator, e.g. under the serving layer's write lock.
    """

    def __init__(
        self,
        num_nodes: int,
        config: Optional[PredicateCacheConfig] = None,
        policy_factory=None,
        store=None,
    ) -> None:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self.config = config if config is not None else PredicateCacheConfig()
        self.policy_factory = policy_factory
        self._store = store
        self._registrations: List[tuple] = []
        self._nodes: List[PredicateCache] = [
            self._new_node() for _ in range(num_nodes)
        ]
        if store is not None:
            for node_id, cache in enumerate(self._nodes):
                self._hydrate_node(node_id, cache)

    def _new_node(self) -> PredicateCache:
        return PredicateCache(
            self.config,
            policy=self.policy_factory() if self.policy_factory is not None else None,
        )

    def _hydrate_node(self, node_id: int, cache: PredicateCache) -> int:
        """Warm-start one node from the store: restore only the slice
        states this node owns under the *current* shard layout, then
        enable write-through."""
        num_nodes = self.num_nodes
        return self._store.attach(
            cache, owned=lambda slice_id: slice_id % num_nodes == node_id
        )

    # -- routing (the scan-path interface) -------------------------------------

    def cache_for_slice(self, slice_id: int) -> PredicateCache:
        # Snapshot the node list once and derive the modulus from it:
        # a concurrent resize() publishes a new list as a single
        # reference swap, so the captured list and its length always
        # agree (indexing self._nodes by self.num_nodes separately
        # could race a grow and fall off the shorter old list).
        nodes = self._nodes
        return nodes[slice_id % len(nodes)]

    # -- operator surface ---------------------------------------------------------

    def node(self, node_id: int) -> PredicateCache:
        return self._nodes[node_id]

    def nodes(self) -> List[PredicateCache]:
        """The live per-node caches (persistence snapshots read these)."""
        return list(self._nodes)

    @property
    def store(self):
        return self._store

    def fail_node(self, node_id: int) -> PredicateCache:
        """Simulate a node failure.

        A new compute node downloads its data slices from managed
        storage (§4.2.1).  Without a store its cache starts cold and
        only its share of each entry must be relearned — the other
        nodes keep theirs.  With a store attached, the replacement
        hydrates its slice share from the last snapshot + journal
        (revalidated against the catalog) and continues warm.  The
        replacement is built exactly like the original node, including
        a fresh policy from ``policy_factory`` (a failure must not
        silently downgrade a cost-based cluster to default admission).
        """
        replacement = self._new_node()
        self._nodes[node_id] = replacement
        if self._store is not None:
            self._hydrate_node(node_id, replacement)
        return replacement

    def resize(self, num_nodes: int) -> "ClusterCaches":
        """Re-shard the cluster to ``num_nodes`` compute nodes.

        Slice ownership is recomputed (``slice % num_nodes``), so every
        entry's per-slice states move to their new owning node.  With a
        store attached the new nodes hydrate from it (snapshot first,
        so nothing learned since the last rotation is lost); without
        one, states are re-sharded in memory from the old nodes.  Table
        subscriptions move too — a vacuum right after the resize still
        invalidates.  Metrics registered through
        :meth:`register_metrics` are re-registered so new node labels
        appear and the cluster rollups stay consistent.
        """
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if num_nodes == self.num_nodes:
            return self
        from ..persist.records import collect_records

        old_nodes = self._nodes
        records = None
        if self._store is not None:
            self._store.snapshot(self)
        else:
            records = collect_records(old_nodes)
        self.num_nodes = num_nodes
        # Build and hydrate the new shard off to the side, then publish
        # the node list as one reference swap: concurrent scans routing
        # through cache_for_slice see either the complete old layout or
        # the complete new one, never a half-built mix.
        new_nodes = [self._new_node() for _ in range(num_nodes)]
        watched = {
            table.name: table
            for cache in old_nodes
            for table in cache.watched_tables()
        }
        for node_id, cache in enumerate(new_nodes):
            if self._store is not None:
                self._hydrate_node(node_id, cache)
            else:
                self._install_shard(cache, node_id, records)
            for table in watched.values():
                cache.watch_table(table)
        self._nodes = new_nodes
        for registry, prefix in self._registrations:
            self._register(registry, prefix)
        return self

    def _install_shard(self, cache: PredicateCache, node_id: int, records) -> None:
        """In-memory re-shard: install this node's slice share."""
        for record in records.values():
            states = {
                slice_id: state_record.to_state()
                for slice_id, state_record in record.states.items()
                if slice_id % self.num_nodes == node_id
            }
            if not states:
                continue
            cache.install_restored(
                record.key,
                record.num_slices,
                record.build_versions,
                states,
                stats=(record.hits, record.rows_qualifying, record.rows_considered),
                table_layout=record.table_layout,
            )

    def clear(self) -> None:
        for cache in self._nodes:
            cache.clear()

    # -- observability ---------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_predicate_cache") -> None:
        """Expose every node's cache plus cluster-level rollups.

        Each node gets the standard per-cache series labelled with its
        node id, read *through the router* at scrape time so a node
        replaced by :meth:`fail_node` reports its successor, not the
        dead cache.  After :meth:`resize`, removed node ids report zero
        and new node ids are registered automatically.  The cluster
        adds aggregate gauges so dashboards do not need to sum label
        sets client-side.
        """
        if (registry, prefix) not in self._registrations:
            self._registrations.append((registry, prefix))
        self._register(registry, prefix)

    def _register(self, registry, prefix: str) -> None:
        for node_id in range(self.num_nodes):
            labels = {"node": str(node_id)}
            for field_name in vars(CacheStats()):
                registry.counter(
                    f"{prefix}_{field_name}_total",
                    f"Predicate cache {field_name.replace('_', ' ')}",
                    labels=labels,
                    fn=lambda n=node_id, f=field_name: self._node_stat(n, f),
                )
            registry.gauge(
                f"{prefix}_entries",
                "Live predicate-cache entries",
                labels=labels,
                fn=lambda n=node_id: self._node_value(n, len, 0),
            )
            registry.gauge(
                f"{prefix}_nbytes",
                "Total payload bytes across entries (Table 3 metric)",
                labels=labels,
                fn=lambda n=node_id: self._node_value(
                    n, lambda c: c.total_nbytes, 0
                ),
            )
            registry.gauge(
                f"{prefix}_hit_rate",
                "Hits over lookups (Fig. 13 metric)",
                labels=labels,
                fn=lambda n=node_id: self._node_value(
                    n, lambda c: c.stats.hit_rate, 0.0
                ),
            )
        registry.gauge(
            f"{prefix}_cluster_nbytes",
            "Summed predicate-cache payload bytes across nodes",
            fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_cluster_keys",
            "Distinct scan keys cached anywhere in the cluster",
            fn=lambda: len(self),
        )
        registry.gauge(
            f"{prefix}_cluster_nodes",
            "Compute nodes in the cluster",
            fn=lambda: self.num_nodes,
        )

    def _node_stat(self, node_id: int, field: str):
        """Scrape helper: node ids removed by a resize report zero
        instead of dangling into the shrunk node list."""
        if node_id >= len(self._nodes):
            return 0
        return getattr(self._nodes[node_id].stats, field)

    def _node_value(self, node_id: int, fn, default):
        if node_id >= len(self._nodes):
            return default
        return fn(self._nodes[node_id])

    # -- aggregation -----------------------------------------------------------------

    @property
    def total_nbytes(self) -> int:
        return sum(cache.total_nbytes for cache in self._nodes)

    def per_node_nbytes(self) -> List[int]:
        return [cache.total_nbytes for cache in self._nodes]

    def per_node_entries(self) -> List[int]:
        return [len(cache) for cache in self._nodes]

    def aggregate_stats(self) -> CacheStats:
        total = CacheStats()
        for cache in self._nodes:
            for field in vars(total):
                setattr(
                    total, field,
                    getattr(total, field) + getattr(cache.stats, field),
                )
        return total

    def __len__(self) -> int:
        """Distinct keys across nodes (entries are per-node shards)."""
        keys = set()
        for cache in self._nodes:
            keys.update(cache.keys())
        return len(keys)
