"""Multi-node clusters with per-node predicate caches.

One of the paper's design objectives (§3.4) is that the cache be
*lightweight*: "keep the cache independent of other nodes in the
cluster to reduce synchronization overhead... The state is maintained
per node, avoiding communication and synchronization with other
workers" (§4.6).  This package models that topology:

* slices are assigned to compute nodes round-robin (Redshift's leader
  assigns data slices to nodes, Fig. 10),
* every node owns an independent :class:`~repro.core.cache.PredicateCache`
  holding entries *only for its own slices*,
* a node failure replaces the node with an empty cache — only that
  node's share of every entry is relearned (§4.2.1's recovery story).

:class:`ClusterCaches` plugs into the engine wherever a single
``PredicateCache`` would: the scan path routes each slice to its owning
node's cache via ``cache_for_slice``.
"""

from .caches import ClusterCaches

__all__ = ["ClusterCaches"]
