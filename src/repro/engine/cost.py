"""Cost model: counters to modeled runtime.

The paper's testbed is a 4-node ra3.16xlarge cluster; wall-clock numbers
from a single-process Python engine cannot match it.  Instead, "runtime"
is derived from the engine's exact work counters with weights shaped
like a cloud warehouse: a remote block fetch costs orders of magnitude
more than scanning a row, and local block reads sit in between.  The
weights are configurable; benchmarks report both modeled runtime and
wall time, and all speedup claims are checked on the counters too.
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import QueryCounters

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Linear cost model over query counters.

    Default weights approximate a cloud columnar warehouse:

    * ``remote_fetch_cost`` — fetching one compressed block from managed
      storage (network + decompress), ~1 ms.
    * ``local_block_cost`` — reading one locally cached block, ~50 µs.
    * ``row_scan_cost`` — predicate-evaluating one row (vectorized),
      ~5 ns.
    * ``row_join_cost`` — probing one row through a hash join, ~20 ns.
    * ``row_output_cost`` — materializing one result row, ~50 ns.
    * ``query_overhead`` — parse/plan/dispatch floor, ~2 ms.
    """

    remote_fetch_cost: float = 1.0e-3
    local_block_cost: float = 5.0e-5
    row_scan_cost: float = 5.0e-9
    row_join_cost: float = 2.0e-8
    row_output_cost: float = 5.0e-8
    query_overhead: float = 2.0e-3

    def runtime(self, counters: QueryCounters) -> float:
        """Modeled runtime in seconds for one query's counters."""
        local_blocks = counters.blocks_accessed - counters.remote_fetches
        return (
            self.query_overhead
            + counters.remote_fetches * self.remote_fetch_cost
            + max(0, local_blocks) * self.local_block_cost
            + counters.rows_scanned * self.row_scan_cost
            + counters.rows_joined * self.row_join_cost
            + counters.rows_output * self.row_output_cost
        )
