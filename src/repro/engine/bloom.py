"""Bloom filters for semi-join pushdown.

Redshift builds a Bloom filter on the build side of a hash join and
passes it to the probe-side scan (§4.4) so rows without a join partner
are dropped during the vectorized scan.  The implementation is fully
vectorized: ``k`` multiply-shift hash functions over int64 keys, bits in
a packed numpy array.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BloomFilter"]

# Odd 64-bit multipliers for the multiply-shift hash family.
_MULTIPLIERS = np.array(
    [
        0x9E3779B97F4A7C15,
        0xC2B2AE3D27D4EB4F,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
        0x85EBCA77C2B2AE63,
        0xFF51AFD7ED558CCD,
        0xC4CEB9FE1A85EC53,
        0x2545F4914F6CDD1D,
    ],
    dtype=np.uint64,
)


class BloomFilter:
    """A fixed-size Bloom filter over int64 keys.

    Args:
        expected_items: sizing hint.
        fpr: target false-positive rate (default 1 %).
    """

    def __init__(self, expected_items: int, fpr: float = 0.01) -> None:
        expected_items = max(1, int(expected_items))
        if not (0.0 < fpr < 1.0):
            raise ValueError("fpr must be in (0, 1)")
        num_bits = max(64, int(-expected_items * math.log(fpr) / (math.log(2) ** 2)))
        self.num_bits = 1 << max(6, (num_bits - 1).bit_length())
        self.num_hashes = min(
            len(_MULTIPLIERS), max(1, round(self.num_bits / expected_items * math.log(2)))
        )
        self._bits = np.zeros(self.num_bits // 8, dtype=np.uint8)
        self._shift = np.uint64(64 - int(math.log2(self.num_bits)))
        self.items_added = 0

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """Bit positions, shape (num_hashes, len(keys))."""
        keys = keys.astype(np.int64, copy=False).view(np.uint64)
        mults = _MULTIPLIERS[: self.num_hashes, None]
        with np.errstate(over="ignore"):
            hashed = keys[None, :] * mults
        return (hashed >> self._shift).astype(np.int64)

    def add_many(self, keys: np.ndarray) -> None:
        """Insert all keys (vectorized)."""
        if len(keys) == 0:
            return
        positions = self._positions(np.asarray(keys)).ravel()
        np.bitwise_or.at(
            self._bits, positions // 8, (1 << (positions % 8)).astype(np.uint8)
        )
        self.items_added += len(keys)

    def may_contain(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership mask (false positives possible)."""
        keys = np.asarray(keys)
        if len(keys) == 0:
            return np.zeros(0, dtype=bool)
        positions = self._positions(keys)
        bytes_ = self._bits[positions // 8]
        bits = (bytes_ >> (positions % 8).astype(np.uint8)) & 1
        return bits.all(axis=0)

    @property
    def nbytes(self) -> int:
        return int(self._bits.nbytes)

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (diagnostics / fpr estimation)."""
        return float(np.unpackbits(self._bits).mean()) if self.num_bits else 0.0
