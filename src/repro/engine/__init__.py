"""Distributed-warehouse query engine (single-process analogue).

Implements Redshift's scan and join machinery the paper integrates with
(§4.2): the two-step scan (zone-map pruning, then vectorized predicate
evaluation producing row ranges), hash joins with Bloom semi-join
filters pushed into probe-side scans, aggregation, and a cost model in
which remote block fetches dominate.  The predicate cache plugs into the
scan path exactly as the paper's Fig. 11 describes.
"""

from .cost import CostModel
from .counters import QueryCounters
from .engine import QueryEngine, QueryResult
from .plan import (
    AggregateNode,
    Aggregation,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)

__all__ = [
    "AggregateNode",
    "Aggregation",
    "CostModel",
    "FilterNode",
    "JoinNode",
    "LimitNode",
    "PlanNode",
    "ProjectNode",
    "QueryCounters",
    "QueryEngine",
    "QueryResult",
    "ScanNode",
    "SortNode",
]
