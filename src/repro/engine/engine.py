"""The query engine facade (the "leader node").

:class:`QueryEngine` ties together the database, the executor, the
predicate cache, an optional result cache, and the cost model.  It is
the public entry point examples and benchmarks use:

    engine = QueryEngine(db, predicate_cache=PredicateCache())
    result = engine.execute_plan(plan)       # or engine.execute(sql)
    result.counters.rows_scanned, result.counters.model_seconds
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import PredicateCache
from ..predicates.ast import Predicate, TruePredicate
from ..storage.database import Database
from .cost import CostModel
from .counters import QueryCounters
from .executor import Batch, Executor, _batch_len
from .plan import PlanNode
from .scan import execute_scan

__all__ = ["QueryEngine", "QueryResult"]


def _normalize_sql(sql: str) -> str:
    """Whitespace-insensitive, case-insensitive result-cache key.

    Matching the paper's result cache: a hit requires the *same
    statement including parameters* — no structural generalization.
    """
    return " ".join(sql.split()).rstrip(";").lower()


@dataclass
class QueryResult:
    """Columns plus the execution counters of one query."""

    columns: Dict[str, np.ndarray]
    column_order: List[str]
    counters: QueryCounters
    #: Root span of this query's trace (when the engine has a tracer).
    trace: Optional[object] = None

    @property
    def num_rows(self) -> int:
        return _batch_len(self.columns)

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def rows(self) -> List[Tuple]:
        """Materialize as a list of row tuples (column order preserved)."""
        arrays = [self.columns[name] for name in self.column_order]
        return [tuple(a[i] for a in arrays) for i in range(self.num_rows)]

    def scalar(self):
        """The single value of a 1x1 result."""
        if self.num_rows != 1 or len(self.column_order) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{self.num_rows}x{len(self.column_order)}"
            )
        return self.columns[self.column_order[0]][0]


class QueryEngine:
    """Executes plans and DML against a database, with caching layers."""

    def __init__(
        self,
        database: Database,
        predicate_cache: Optional[PredicateCache] = None,
        result_cache=None,
        cost_model: Optional[CostModel] = None,
        tracer=None,
        metrics=None,
        scan_workers: Optional[int] = None,
    ) -> None:
        """Args beyond the caching layers:

        tracer: optional :class:`~repro.obs.Tracer`; when set, every
            query records a span tree (``query → parse/plan → execute →
            operators → scan[slice]``) exposed as ``result.trace`` and
            rendered by :meth:`explain_analyze`.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; the
            engine registers query counters/latency and wires up the
            predicate cache's and database's metrics.  Both default to
            ``None`` — the uninstrumented engine runs the exact
            pre-observability code path.
        scan_workers: slice-scan worker threads for this engine; ``0``
            forces serial, ``None`` (default) defers to the session
            configuration (``REPRO_PARALLEL`` / ``REPRO_SCAN_WORKERS``).
            Worker counts never change results or surfaced counters.
        """
        self.database = database
        self.predicate_cache = predicate_cache
        self.result_cache = result_cache
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.tracer = tracer
        self.metrics = metrics
        self.scan_workers = scan_workers
        self._executor = Executor(database, predicate_cache, scan_workers=scan_workers)
        self._m_queries = None
        if metrics is not None:
            self._register_metrics(metrics)

    def set_predicate_cache(self, predicate_cache) -> None:
        """Swap the predicate cache (or :class:`ClusterCaches` router)
        mid-workload — e.g. after a cluster restart hydrated a fresh
        cache from a :class:`~repro.persist.CacheStore`.  The executor
        holds its own reference, so both must move together."""
        self.predicate_cache = predicate_cache
        self._executor.predicate_cache = predicate_cache

    def _register_metrics(self, registry) -> None:
        self._m_queries = registry.counter(
            "repro_queries_total", "Queries executed (incl. DML statements)"
        )
        self._m_result_cache_hits = registry.counter(
            "repro_result_cache_hits_total", "Queries served by the result cache"
        )
        self._m_query_seconds = registry.histogram(
            "repro_query_seconds", "Per-query wall-clock latency"
        )
        # Every numeric QueryCounters field gets a summed total; the
        # project linter's RP004 rule checks this list stays complete
        # (result_cache_hit is covered by the dedicated counter above,
        # wall_seconds additionally by the latency histogram).
        self._m_counter_totals = {
            name: registry.counter(
                f"repro_query_{name}_total", f"Summed per-query {name}"
            )
            for name in (
                "rows_scanned",
                "rows_qualifying",
                "rows_joined",
                "rows_output",
                "rows_skipped_cache",
                "blocks_accessed",
                "blocks_pruned_zonemap",
                "remote_fetches",
                "bytes_fetched",
                "cache_hits",
                "cache_misses",
                "bloom_probes",
                "bloom_positives",
                "reuse_composed_serves",
                "reuse_subsumed_serves",
                "reuse_recheck_rows",
                "reuse_skipped_rows",
                "storage_faults",
                "corrupt_blocks",
                "storage_retries",
                "retry_giveups",
                "degraded_scans",
                "backoff_seconds",
                "wall_seconds",
                "model_seconds",
            )
        }
        self.database.register_metrics(registry)
        if self.predicate_cache is not None and hasattr(
            self.predicate_cache, "register_metrics"
        ):
            self.predicate_cache.register_metrics(registry)

    def _record_query_metrics(self, counters: QueryCounters) -> None:
        if self._m_queries is None:
            return
        self._m_queries.inc()
        self._m_query_seconds.observe(counters.wall_seconds)
        if counters.result_cache_hit:
            self._m_result_cache_hits.inc()
        as_dict = counters.as_dict()
        for name, instrument in self._m_counter_totals.items():
            value = as_dict[name]
            if value:
                instrument.inc(value)

    # -- queries ------------------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse, plan, and run one SQL statement.

        SELECTs go through the result cache (when configured) keyed by
        the normalized statement text; DML returns a single-column
        ``affected`` result.  With a tracer attached the whole
        statement runs under a ``query`` root span, returned on
        ``result.trace``.
        """
        tracer = self.tracer
        if tracer is None:
            return self._execute_statement(sql, None)
        query_span = tracer.begin("query", sql=sql)
        try:
            result = self._execute_statement(sql, tracer)
        finally:
            tracer.end(query_span)
        query_span.set("rows_output", result.counters.rows_output)
        query_span.set("wall_seconds", result.counters.wall_seconds)
        result.trace = query_span
        return result

    def _execute_statement(self, sql: str, tracer) -> QueryResult:
        from ..sql import (
            AnalyzeStatement,
            DeleteStatement,
            InsertStatement,
            SelectStatement,
            UpdateStatement,
            VacuumStatement,
            parse_statement,
            plan_select,
        )

        if tracer is None:
            statement = parse_statement(sql)
        else:
            with tracer.span("parse"):
                statement = parse_statement(sql)
        if isinstance(statement, SelectStatement):
            if tracer is None:
                plan = plan_select(statement, self.database)
            else:
                with tracer.span("plan"):
                    plan = plan_select(statement, self.database)
            return self.execute_plan(plan, cache_key=_normalize_sql(sql))
        if isinstance(statement, InsertStatement):
            table = self.database.table(statement.table)
            columns = statement.columns or table.schema.column_names
            if any(len(row) != len(columns) for row in statement.rows):
                raise ValueError("VALUES row width does not match column list")
            rows = {
                name: [row[i] for row in statement.rows]
                for i, name in enumerate(columns)
            }
            # Unlisted columns are not supported (no NULL defaults here).
            missing = set(table.schema.column_names) - set(columns)
            if missing:
                raise ValueError(f"INSERT must provide columns {sorted(missing)}")
            return self._dml_result(self.insert(statement.table, rows))
        if isinstance(statement, DeleteStatement):
            predicate = statement.predicate or TruePredicate()
            return self._dml_result(self.delete_where(statement.table, predicate))
        if isinstance(statement, UpdateStatement):
            predicate = statement.predicate or TruePredicate()
            return self._dml_result(
                self.update_where(
                    statement.table, predicate, dict(statement.assignments)
                )
            )
        if isinstance(statement, VacuumStatement):
            changed = self.vacuum([statement.table] if statement.table else None)
            return self._dml_result(len(changed))
        if isinstance(statement, AnalyzeStatement):
            analyzed = self.database.analyze(
                [statement.table] if statement.table else None
            )
            return self._dml_result(len(analyzed))
        raise TypeError(f"unhandled statement {type(statement).__name__}")

    def _dml_result(self, affected: int) -> QueryResult:
        counters = QueryCounters()
        counters.rows_output = 1
        self._record_query_metrics(counters)
        return QueryResult(
            {"affected": np.array([affected])}, ["affected"], counters
        )

    def execute_plan(
        self, plan: PlanNode, cache_key: Optional[str] = None
    ) -> QueryResult:
        """Execute a plan tree.

        ``cache_key`` enables the result cache: identical keys over
        unchanged tables return the stored result without execution
        (§3.1).  SQL execution passes the statement text.
        """
        tracer = self.tracer
        counters = QueryCounters()
        if self.result_cache is not None and cache_key is not None:
            versions = self._table_versions(plan)
            hit = self.result_cache.lookup(cache_key, versions)
            if hit is not None:
                counters.result_cache_hit = True
                counters.model_seconds = self.cost_model.query_overhead
                columns, order = hit
                if tracer is not None:
                    with tracer.span("result-cache") as span:
                        span.set("outcome", "hit")
                self._record_query_metrics(counters)
                return QueryResult(dict(columns), list(order), counters)

        started = time.perf_counter()
        rms = self.database.rms
        # Per-query storage accounting: the context's private sink sees
        # only this query's block traffic, even when other queries run
        # concurrently on the same storage (a global snapshot/delta
        # would fold their fetches in).  It also carries the per-query
        # retry budget the resilient fetch path spends.
        storage_context = rms.begin_query()
        try:
            txid = self.database.begin()
            execute_span = None
            if tracer is not None:
                execute_span = tracer.begin("execute")
            batch = self._executor.execute(plan, txid, counters, tracer)
            if execute_span is not None:
                tracer.end(execute_span)
                with tracer.span("output") as span:
                    order = self._output_order(plan, batch)
                    span.set("rows_output", _batch_len(batch))
            else:
                order = self._output_order(plan, batch)
        finally:
            rms.end_query(storage_context)
        counters.rows_output = _batch_len(batch)
        storage_delta = storage_context.stats
        counters.blocks_accessed += storage_delta.blocks_accessed
        counters.remote_fetches += storage_delta.remote_fetches
        counters.bytes_fetched += storage_delta.bytes_fetched
        counters.storage_faults += storage_delta.transient_errors
        counters.corrupt_blocks += storage_delta.corrupt_blocks
        counters.storage_retries += storage_delta.retries
        counters.retry_giveups += storage_delta.retry_giveups
        counters.backoff_seconds += storage_delta.backoff_model_seconds
        counters.wall_seconds = time.perf_counter() - started
        # Retry backoff and injected latency are model time the query
        # actually waited out; fold them into the modeled runtime.
        counters.model_seconds = (
            self.cost_model.runtime(counters) + counters.backoff_seconds
        )

        if self.result_cache is not None and cache_key is not None:
            self.result_cache.store(
                cache_key, self._table_versions(plan), (batch, order)
            )
        self._record_query_metrics(counters)
        return QueryResult(batch, order, counters, trace=execute_span)

    def _output_order(self, plan: PlanNode, batch: Batch) -> List[str]:
        try:
            order = plan.output_columns()
        except ValueError:
            order = sorted(batch)
        return [name for name in order if name in batch] + [
            name for name in sorted(batch) if name not in order
        ]

    def _table_versions(self, plan: PlanNode) -> Dict[str, int]:
        return {
            name: self.database.table(name).data_version
            for name in plan.referenced_tables()
        }

    # -- DML ---------------------------------------------------------------------

    def insert(self, table_name: str, rows: Mapping[str, Sequence[object]]) -> int:
        """Insert rows; returns the number of rows added."""
        txid = self.database.begin()
        return self.database.table(table_name).insert(rows, txid)

    def delete_where(self, table_name: str, predicate: Predicate) -> int:
        """MVCC-delete every visible row matching ``predicate``."""
        table = self.database.table(table_name)
        rms = self.database.rms
        storage_context = rms.begin_query()
        try:
            read_txid = self.database.begin()
            counters = QueryCounters()
            # Deletes bypass the predicate cache: reusing a cached entry here
            # would be correct (false positives re-checked), but Redshift's
            # prototype hooks only the SELECT scan path.
            result = execute_scan(
                table, predicate, read_txid, counters, cache=None,
                workers=self.scan_workers,
            )
            write_txid = self.database.begin()
            deleted = 0
            for slice_id, qualifying in enumerate(result.per_slice):
                if qualifying:
                    deleted += table.delete_local_rows(
                        slice_id, qualifying.to_row_ids(), write_txid
                    )
            return deleted
        finally:
            rms.end_query(storage_context)

    def update_where(
        self,
        table_name: str,
        predicate: Predicate,
        assignments: Mapping[str, object],
    ) -> int:
        """Update = MVCC delete + append of new row versions (§4.3.3)."""
        table = self.database.table(table_name)
        unknown = set(assignments) - set(table.schema.column_names)
        if unknown:
            raise ValueError(f"unknown columns in UPDATE: {sorted(unknown)}")
        rms = self.database.rms
        storage_context = rms.begin_query()
        try:
            read_txid = self.database.begin()
            counters = QueryCounters()
            result = execute_scan(
                table, predicate, read_txid, counters, cache=None,
                workers=self.scan_workers,
            )
            old_rows = result.gather(table.schema.column_names)
            count = _batch_len(old_rows)
            if count == 0:
                return 0
            write_txid = self.database.begin()
            for slice_id, qualifying in enumerate(result.per_slice):
                if qualifying:
                    table.delete_local_rows(
                        slice_id, qualifying.to_row_ids(), write_txid
                    )
            new_rows = dict(old_rows)
            for name, value in assignments.items():
                new_rows[name] = np.full(count, value, dtype=old_rows[name].dtype)
            table.insert(new_rows, write_txid)
            return count
        finally:
            rms.end_query(storage_context)

    def vacuum(self, tables: Optional[Sequence[str]] = None) -> List[str]:
        """Physically reclaim deleted rows (invalidates cache entries)."""
        return self.database.vacuum(tables)

    # -- introspection -----------------------------------------------------------

    def explain(self, sql: str) -> str:
        """Plan a SELECT and render its plan tree (no execution)."""
        from ..sql import SelectStatement, parse_statement, plan_select
        from .explain import explain as render

        statement = parse_statement(sql)
        if not isinstance(statement, SelectStatement):
            raise ValueError("EXPLAIN supports SELECT statements only")
        return render(plan_select(statement, self.database))

    def explain_analyze(self, sql: str) -> str:
        """Execute ``sql`` under a one-off tracer and render the span tree.

        The rendering shows per-operator wall time, rows, block fetches,
        and the cache outcome of every scan slice — the runtime twin of
        :meth:`explain`.  Works whether or not the engine already has a
        tracer (a temporary one is used either way so concurrent traces
        are not mixed in).
        """
        from ..obs import Tracer
        from .explain import render_analyze

        saved = self.tracer
        self.tracer = Tracer()
        try:
            result = self.execute(sql)
        finally:
            self.tracer = saved
        return render_analyze(result.trace, result.counters)

    def count_rows(self, table_name: str) -> int:
        """Visible row count of a table at a fresh snapshot."""
        txid = self.database.begin()
        return self.database.table(table_name).visible_row_count(txid)
