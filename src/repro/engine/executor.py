"""Plan execution.

The executor walks a plan tree bottom-up, producing column batches
(dict of name -> numpy array).  Join nodes execute their build side
first, construct a Bloom filter, and push it down into the probe-side
scan that produces the probe key column — the semi-join mechanism the
predicate cache's join-index extension records (§4.4).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.cache import PredicateCache
from ..core.keys import SemiJoinDescriptor
from ..storage.database import Database
from .bloom import BloomFilter
from .counters import QueryCounters
from .hashing import stable_int_keys
from .plan import (
    AggregateNode,
    Aggregation,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from .scan import SemiJoinFilter, execute_scan

if TYPE_CHECKING:
    from ..obs.trace import Tracer

__all__ = ["Executor", "Batch"]

Batch = Dict[str, np.ndarray]


class Executor:
    """Executes plan trees against a database."""

    def __init__(
        self,
        database: Database,
        predicate_cache: Optional[PredicateCache] = None,
        scan_workers: Optional[int] = None,
    ) -> None:
        self.database = database
        self.predicate_cache = predicate_cache
        self.scan_workers = scan_workers

    def execute(
        self,
        plan: PlanNode,
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        """Execute ``plan`` with visibility snapshot ``txid``.

        ``tracer`` (a :class:`~repro.obs.Tracer`) turns on per-operator
        spans carrying inclusive counter deltas; ``None`` executes the
        uninstrumented path.
        """
        needed = self._root_needed(plan)
        return self._execute(plan, needed, [], txid, counters, tracer)

    def _root_needed(self, plan: PlanNode) -> Set[str]:
        try:
            return set(plan.output_columns())
        except ValueError:
            # The plan bottoms out in SELECT-*-style unresolved scans:
            # every column of every referenced table is needed.
            return {
                column
                for table in plan.referenced_tables()
                for column in self.database.table(table).schema.column_names
            }

    # -- dispatch -----------------------------------------------------------

    def _execute(
        self,
        node: PlanNode,
        needed: Set[str],
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        if tracer is None:
            return self._dispatch(node, needed, filters, txid, counters, None)
        # One span per operator, carrying the *inclusive* counter delta
        # (this operator plus its subtree, EXPLAIN ANALYZE convention).
        with tracer.span(
            type(node).__name__.removesuffix("Node"), operator=node.describe()
        ) as span:
            before = counters.snapshot()
            batch = self._dispatch(node, needed, filters, txid, counters, tracer)
            span.set("rows_out", _batch_len(batch))
            span.update(counters.delta(before))
            return batch

    def _dispatch(
        self,
        node: PlanNode,
        needed: Set[str],
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer],
    ) -> Batch:
        if isinstance(node, ScanNode):
            return self._execute_scan(node, needed, filters, txid, counters, tracer)
        if isinstance(node, JoinNode):
            return self._execute_join(node, needed, filters, txid, counters, tracer)
        if isinstance(node, AggregateNode):
            return self._execute_aggregate(node, filters, txid, counters, tracer)
        if isinstance(node, MapNode):
            child_needed = (needed - {a for a, _ in node.computations}) | {
                column for _, expr in node.computations for column in expr.columns()
            }
            child = self._execute(
                node.child, child_needed, filters, txid, counters, tracer
            )
            n = _batch_len(child)
            out = dict(child)
            for alias, expr in node.computations:
                values = expr.evaluate(child)
                if values.shape == ():
                    values = np.full(n, values)
                out[alias] = values
            return out
        if isinstance(node, FilterNode):
            child_needed = needed | node.predicate.columns()
            child = self._execute(
                node.child, child_needed, filters, txid, counters, tracer
            )
            mask = node.predicate.evaluate(child)
            return {name: values[mask] for name, values in child.items()}
        if isinstance(node, ProjectNode):
            return self._execute_project(node, filters, txid, counters, tracer)
        if isinstance(node, SortNode):
            return self._execute_sort(node, needed, filters, txid, counters, tracer)
        if isinstance(node, LimitNode):
            child = self._execute(node.child, needed, filters, txid, counters, tracer)
            return {name: values[: node.count] for name, values in child.items()}
        raise TypeError(f"unknown plan node {type(node).__name__}")

    # -- scans --------------------------------------------------------------

    def _execute_scan(
        self,
        node: ScanNode,
        needed: Set[str],
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        table = self.database.table(node.table)
        schema_columns = set(table.schema.column_names)
        # Only filters whose probe column this table provides apply here.
        local_filters = [f for f in filters if f.probe_column in schema_columns]
        if node.columns is not None:
            columns = [c for c in node.columns if c in needed] or list(node.columns)
        else:
            columns = sorted(needed & schema_columns)
        if not columns:
            # Nothing but a row count is needed (e.g. ``count(*)``):
            # gather the virtual row column instead of real data.
            columns = ["__rows__"]
        result = execute_scan(
            table,
            node.predicate,
            txid,
            counters,
            cache=self.predicate_cache,
            semijoins=local_filters,
            current_versions=self._current_versions(local_filters),
            tracer=tracer,
            workers=self.scan_workers,
            # The slice tasks materialize the output columns themselves,
            # so gather latency overlaps across slices in parallel mode.
            gather_columns=[c for c in columns if c != "__rows__"],
        )
        return result.gather(columns)

    def _current_versions(
        self, filters: Sequence[SemiJoinFilter]
    ) -> Dict[str, int]:
        versions: Dict[str, int] = {}
        for f in filters:
            for table_name in f.build_versions:
                versions[table_name] = self.database.table(table_name).data_version
        return versions

    # -- joins --------------------------------------------------------------

    def _execute_join(
        self,
        node: JoinNode,
        needed: Set[str],
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        # Filters from enclosing joins go to whichever side produces
        # their probe column — Redshift pushes semi-join filters into
        # the scan that provides the column, even through build sides
        # (snowflake chains, §4.4).
        build_columns = set(self._subtree_columns(node.build))
        build_side_filters = [f for f in filters if f.probe_column in build_columns]
        probe_filters = [f for f in filters if f.probe_column not in build_columns]

        build_needed = (needed | {node.build_key}) & build_columns
        build = self._execute(
            node.build, build_needed, build_side_filters, txid, counters, tracer
        )
        build_keys = stable_int_keys(build[node.build_key])

        if node.semijoin:
            bloom = BloomFilter(expected_items=max(len(build_keys), 1))
            bloom.add_many(build_keys)
            descriptor = self._describe_build(node, build_side_filters)
            versions: Dict[str, int] = {}
            if descriptor is not None:
                versions = self._build_versions(node)
                for f in build_side_filters:
                    versions.update(f.build_versions)
            probe_filters.append(
                SemiJoinFilter(
                    probe_column=node.probe_key,
                    bloom=bloom,
                    descriptor=descriptor,
                    build_versions=versions,
                )
            )

        probe_needed = (needed | {node.probe_key}) & set(
            self._subtree_columns(node.probe)
        )
        probe = self._execute(
            node.probe, probe_needed, probe_filters, txid, counters, tracer
        )
        probe_keys = stable_int_keys(probe[node.probe_key])

        counters.rows_joined += len(probe_keys)
        probe_idx, build_idx = _hash_join_indices(probe_keys, build_keys)

        out: Batch = {name: values[probe_idx] for name, values in probe.items()}
        for name, values in build.items():
            if name not in out:
                out[name] = values[build_idx]
        return out

    def _subtree_columns(self, node: PlanNode) -> List[str]:
        if isinstance(node, ScanNode) and node.columns is None:
            return self.database.table(node.table).schema.column_names
        if isinstance(node, JoinNode):
            left = self._subtree_columns(node.probe)
            right = [c for c in self._subtree_columns(node.build) if c not in left]
            return left + right
        return node.output_columns()

    def _describe_build(
        self, node: JoinNode, build_side_filters: Sequence["SemiJoinFilter"] = ()
    ) -> Optional[SemiJoinDescriptor]:
        """Build the cache-key descriptor for a join's build side.

        Only build sides that are scans (or joins over scans) can be
        described; anything else (aggregates, projections) disables the
        join-index key for this filter — the Bloom filter still runs,
        but its effect is not cached (soundness first).  Semi-join
        filters pushed *into* the build side become nested descriptors;
        an undescribable pushed filter poisons the whole descriptor.
        """
        described = _describe_node(node.build)
        if described is None:
            return None
        build_table, build_filter, nested = described
        for f in build_side_filters:
            if f.descriptor is None:
                return None
            nested = nested + (f.descriptor,)
        return SemiJoinDescriptor(
            join_predicate=node.join_predicate_text(),
            build_table=build_table,
            build_predicate_key=build_filter,
            build_semijoins=nested,
        )

    def _build_versions(self, node: JoinNode) -> Dict[str, int]:
        return {
            name: self.database.table(name).data_version
            for name in node.build.referenced_tables()
        }

    # -- aggregation ----------------------------------------------------------

    def _execute_aggregate(
        self,
        node: AggregateNode,
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        needed = set(node.group_by)
        for agg in node.aggregations:
            needed |= agg.input_columns()
        child = self._execute(node.child, needed, filters, txid, counters, tracer)
        return _aggregate(child, node.group_by, node.aggregations)

    def _execute_project(
        self,
        node: ProjectNode,
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        needed: Set[str] = set()
        for _, expr in node.projections:
            needed |= expr.columns()
        child = self._execute(node.child, needed, filters, txid, counters, tracer)
        n = _batch_len(child)
        out: Batch = {}
        for alias, expr in node.projections:
            values = expr.evaluate(child)
            if values.shape == ():
                values = np.full(n, values)
            out[alias] = values
        return out

    def _execute_sort(
        self,
        node: SortNode,
        needed: Set[str],
        filters: List[SemiJoinFilter],
        txid: int,
        counters: QueryCounters,
        tracer: Optional[Tracer] = None,
    ) -> Batch:
        child_needed = needed | {col for col, _ in node.keys}
        child = self._execute(
            node.child, child_needed, filters, txid, counters, tracer
        )
        if _batch_len(child) == 0:
            return child
        # lexsort's last key is primary, so feed keys reversed.
        arrays = []
        for col, ascending in reversed(node.keys):
            values = child[col]
            if not ascending:
                values = _descending_key(values)
            arrays.append(values)
        order = np.lexsort(arrays)
        return {name: values[order] for name, values in child.items()}


# -- pure helpers -------------------------------------------------------------


def _describe_node(
    node: PlanNode,
) -> Optional[Tuple[str, str, Tuple[SemiJoinDescriptor, ...]]]:
    """(table, filter key, nested semi-joins) of a scan-shaped subtree.

    Returns None for subtrees that do not reduce to a (possibly joined)
    base-table scan — those cannot be described in a cache key.
    """
    if isinstance(node, ScanNode):
        return (node.table, node.predicate.cache_key(), ())
    if isinstance(node, (SortNode, LimitNode)):
        return _describe_node(node.child)
    if isinstance(node, JoinNode):
        probe = _describe_node(node.probe)
        build = _describe_node(node.build)
        if probe is None or build is None:
            return None
        build_table, build_filter, build_nested = build
        inner = SemiJoinDescriptor(
            join_predicate=node.join_predicate_text(),
            build_table=build_table,
            build_predicate_key=build_filter,
            build_semijoins=build_nested,
        )
        probe_table, probe_filter, probe_nested = probe
        return (probe_table, probe_filter, probe_nested + (inner,))
    return None


def _batch_len(batch: Batch) -> int:
    for values in batch.values():
        return len(values)
    return 0


def _descending_key(values: np.ndarray) -> np.ndarray:
    if values.dtype == object:
        # Rank-invert strings for descending order.
        order = np.argsort(values, kind="stable")
        ranks = np.empty(len(values), dtype=np.int64)
        ranks[order] = np.arange(len(values))
        return -ranks
    return -values


def _hash_join_indices(
    probe_keys: np.ndarray, build_keys: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Matching (probe index, build index) pairs of an inner equi-join.

    Sort-based lookup: duplicates on either side produce the full cross
    product per key, like a hash join's bucket chain.
    """
    if len(probe_keys) == 0 or len(build_keys) == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    order = np.argsort(build_keys, kind="stable")
    sorted_keys = build_keys[order]
    left = np.searchsorted(sorted_keys, probe_keys, side="left")
    right = np.searchsorted(sorted_keys, probe_keys, side="right")
    counts = right - left
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    probe_idx = np.repeat(np.arange(len(probe_keys), dtype=np.int64), counts)
    run_starts = np.cumsum(counts) - counts
    offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, counts)
    build_pos = np.repeat(left, counts) + offsets
    return probe_idx, order[build_pos]


def _aggregate(
    batch: Batch, group_by: List[str], aggregations: List[Aggregation]
) -> Batch:
    n = _batch_len(batch)
    if group_by:
        group_codes, group_values = _factorize(batch, group_by)
        num_groups = len(next(iter(group_values.values()))) if group_values else 0
    else:
        group_codes = np.zeros(n, dtype=np.int64)
        group_values = {}
        num_groups = 1

    out: Batch = {name: values for name, values in group_values.items()}
    for agg in aggregations:
        out[agg.alias] = _compute_aggregate(agg, batch, group_codes, num_groups, n)
    return out


def _factorize(
    batch: Batch, group_by: List[str]
) -> Tuple[np.ndarray, Batch]:
    """Group codes per row plus the distinct group key values, sorted."""
    n = _batch_len(batch)
    if n == 0:
        return (
            np.zeros(0, dtype=np.int64),
            {name: batch[name][:0] for name in group_by},
        )
    codes = np.zeros(n, dtype=np.int64)
    uniques_per_col: List[np.ndarray] = []
    for name in group_by:
        uniq, inverse = np.unique(batch[name], return_inverse=True)
        codes = codes * len(uniq) + inverse
        uniques_per_col.append(uniq)
    distinct, group_codes = np.unique(codes, return_inverse=True)
    # Decode the mixed-radix code back into per-column values.
    group_values: Batch = {}
    remaining = distinct.copy()
    for name, uniq in zip(reversed(group_by), reversed(uniques_per_col)):
        group_values[name] = uniq[remaining % len(uniq)]
        remaining = remaining // len(uniq)
    return group_codes, {name: group_values[name] for name in group_by}


def _compute_aggregate(
    agg: Aggregation,
    batch: Batch,
    group_codes: np.ndarray,
    num_groups: int,
    n: int,
) -> np.ndarray:
    if agg.func == "count" and agg.expr is None:
        return np.bincount(group_codes, minlength=num_groups).astype(np.int64)
    values = agg.expr.evaluate(batch)
    if values.shape == ():
        values = np.full(n, values)
    if agg.func == "count":
        return np.bincount(group_codes, minlength=num_groups).astype(np.int64)
    if agg.func == "sum":
        return np.bincount(group_codes, weights=values, minlength=num_groups)
    if agg.func == "avg":
        sums = np.bincount(group_codes, weights=values, minlength=num_groups)
        counts = np.bincount(group_codes, minlength=num_groups)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    if agg.func == "count_distinct":
        if n == 0:
            return np.zeros(num_groups, dtype=np.int64)
        _, value_codes = np.unique(values, return_inverse=True)
        pairs = group_codes * (value_codes.max() + 1) + value_codes
        distinct_pairs = np.unique(pairs)
        groups_of_pairs = distinct_pairs // (value_codes.max() + 1)
        return np.bincount(groups_of_pairs, minlength=num_groups).astype(np.int64)
    if agg.func in ("min", "max"):
        if n == 0:
            return np.full(num_groups, np.nan)
        if values.dtype == object:
            return _object_minmax(agg.func, values, group_codes, num_groups)
        fill = np.inf if agg.func == "min" else -np.inf
        result = np.full(num_groups, fill, dtype=np.float64)
        op = np.minimum if agg.func == "min" else np.maximum
        op.at(result, group_codes, values.astype(np.float64))
        return result
    raise ValueError(f"unknown aggregate {agg.func!r}")


def _object_minmax(
    func: str, values: np.ndarray, group_codes: np.ndarray, num_groups: int
) -> np.ndarray:
    result = np.empty(num_groups, dtype=object)
    pick = min if func == "min" else max
    for code in range(num_groups):
        members = values[group_codes == code]
        result[code] = pick(members) if len(members) else None
    return result
