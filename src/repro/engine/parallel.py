"""Parallel slice-scan execution.

Slices are the paper's unit of distribution and are embarrassingly
parallel: a scan touches each slice's blocks, bitmap, and cache entry
state independently.  :class:`ParallelScanExecutor` fans the per-slice
scan closures out over a thread pool — the numpy filter kernels release
the GIL, and simulated remote-fetch latency (``fetch_delay_seconds`` on
managed storage) overlaps across workers the way real cloud round trips
would.

Scheduling is a dynamic work queue, not static striping: every slice is
submitted as its own task and idle workers pull the next pending one,
so a skewed slice cannot straggle the whole scan behind a pre-assigned
stripe.  Results are collected in slice order regardless of completion
order; the coordinator in ``scan.py`` merges counters, emits tracer
spans, and installs cache entries deterministically at the barrier.

Selection:

* default — serial, bit-identical to the single-threaded executor;
* ``REPRO_PARALLEL=1`` — parallel with :data:`DEFAULT_WORKERS` workers;
* ``REPRO_PARALLEL=N`` (N >= 2) — parallel with N workers;
* ``REPRO_SCAN_WORKERS=N`` — overrides the worker count when parallel
  mode is enabled;
* ``QueryEngine(scan_workers=N)`` / ``execute_scan(workers=N)`` —
  programmatic override; ``0`` forces serial, ``None`` defers to the
  environment.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

__all__ = [
    "DEFAULT_WORKERS",
    "ParallelScanExecutor",
    "configured_workers",
    "set_workers",
]

T = TypeVar("T")

#: Worker count when ``REPRO_PARALLEL=1`` enables parallel mode without
#: naming one.  Matches the bench gate ("2.5x cold speedup at 4 workers").
DEFAULT_WORKERS = 4


def _workers_from_env() -> int:
    """Resolve the worker count from the environment (0 = serial)."""
    enabled = os.environ.get("REPRO_PARALLEL", "").strip()
    if enabled in ("", "0"):
        return 0
    try:
        requested = int(enabled)
    except ValueError:
        return 0
    if requested <= 0:
        return 0
    override = os.environ.get("REPRO_SCAN_WORKERS", "").strip()
    if override:
        try:
            return max(1, int(override))
        except ValueError:
            pass
    return DEFAULT_WORKERS if requested == 1 else requested


_WORKERS: int = _workers_from_env()


def configured_workers() -> int:
    """The session-wide worker count (0 = serial)."""
    return _WORKERS


def set_workers(workers: Optional[int]) -> int:
    """Programmatically override the worker count; returns the previous
    value so tests can restore it.  ``None`` or ``0`` means serial."""
    global _WORKERS
    previous = _WORKERS
    _WORKERS = 0 if workers is None else max(0, int(workers))
    return previous


# One shared pool per worker count: scans are frequent and short, and
# thread start-up would otherwise dominate small scans.
_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def _pool(workers: int) -> ThreadPoolExecutor:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix=f"repro-scan-{workers}"
            )
            _POOLS[workers] = pool
        return pool


class ParallelScanExecutor:
    """Runs per-slice scan tasks on a shared worker pool.

    Tasks must be self-contained closures that touch only per-task
    state (their own ``QueryCounters``, their slice's immutable entry
    state) plus the internally-synchronized managed-storage read path;
    the linter rule RP006 enforces that worker code never mutates
    shared engine or cache state.
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))

    def run(self, tasks: Sequence[Callable[[], T]]) -> List[T]:
        """Execute ``tasks``, returning results in task (slice) order.

        With one worker — or one task — runs inline on the caller's
        thread; the phased coordinator path is exercised either way.
        On failure, every in-flight task is drained first (so callers
        can safely close the storage scan phase) and the error of the
        lowest-numbered failing slice propagates, matching the serial
        executor's first-failure semantics.
        """
        if self.workers == 1 or len(tasks) <= 1:
            return [task() for task in tasks]
        pool = _pool(self.workers)
        futures: List[Future[T]] = [pool.submit(task) for task in tasks]
        wait(futures)
        return [future.result() for future in futures]
