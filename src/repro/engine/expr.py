"""Scalar expressions for projections and aggregate arguments.

Filter *predicates* (boolean trees) live in :mod:`repro.predicates`;
this module covers the value-typed expressions queries compute over
qualifying rows — e.g. TPC-H Q6's ``sum(l_extendedprice * l_discount)``.
Everything evaluates vectorized over a column batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Union

import numpy as np

__all__ = ["Expr", "Col", "Const", "BinOp", "Func", "column", "const"]

Batch = Mapping[str, np.ndarray]

_BINARY_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}


class Expr:
    """Base class for scalar (value-typed) expressions."""

    def evaluate(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def label(self) -> str:
        """Canonical text, used for output column naming and MV keys."""
        raise NotImplementedError

    def __add__(self, other: "Expr") -> "Expr":
        return BinOp(self, "+", _coerce(other))

    def __sub__(self, other: "Expr") -> "Expr":
        return BinOp(self, "-", _coerce(other))

    def __mul__(self, other: "Expr") -> "Expr":
        return BinOp(self, "*", _coerce(other))

    def __truediv__(self, other: "Expr") -> "Expr":
        return BinOp(self, "/", _coerce(other))

    def __rsub__(self, other: object) -> "Expr":
        return BinOp(_coerce(other), "-", self)

    def __rmul__(self, other: object) -> "Expr":
        return BinOp(_coerce(other), "*", self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Expr({self.label()})"


def _coerce(value: object) -> "Expr":
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot use {value!r} in a scalar expression")


@dataclass(frozen=True, slots=True)
class Col(Expr):
    """A column reference."""

    name: str

    def evaluate(self, batch: Batch) -> np.ndarray:
        try:
            return batch[self.name]
        except KeyError:
            raise KeyError(
                f"column {self.name!r} missing from batch (have {sorted(batch)})"
            ) from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def label(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A numeric constant."""

    value: Union[int, float]

    def evaluate(self, batch: Batch) -> np.ndarray:
        return np.asarray(self.value)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def label(self) -> str:
        return repr(self.value) if isinstance(self.value, float) else str(self.value)


@dataclass(frozen=True, slots=True)
class BinOp(Expr):
    """Arithmetic over two sub-expressions."""

    left: Expr
    op: str
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise ValueError(f"unsupported arithmetic operator {self.op!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        return _BINARY_OPS[self.op](
            self.left.evaluate(batch), self.right.evaluate(batch)
        )

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def label(self) -> str:
        return f"({self.left.label()} {self.op} {self.right.label()})"


_SCALAR_FUNCS = ("year", "month", "abs")

_EPOCH_YEAR = 1970


@dataclass(frozen=True, slots=True)
class Func(Expr):
    """A scalar function call: ``year(expr)``, ``month(expr)``, ``abs``.

    Date functions operate on the engine's date encoding (days since
    1970-01-01), so ``year(l_shipdate)`` works directly on DATE columns.
    """

    name: str
    arg: Expr

    def __post_init__(self) -> None:
        if self.name not in _SCALAR_FUNCS:
            raise ValueError(f"unknown scalar function {self.name!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        values = np.asarray(self.arg.evaluate(batch))
        if self.name == "abs":
            return np.abs(values)
        days = values.astype("datetime64[D]")
        if self.name == "year":
            return days.astype("datetime64[Y]").astype(np.int64) + _EPOCH_YEAR
        months = days.astype("datetime64[M]").astype(np.int64)
        return months % 12 + 1

    def columns(self) -> FrozenSet[str]:
        return self.arg.columns()

    def label(self) -> str:
        return f"{self.name}({self.arg.label()})"


def column(name: str) -> Col:
    """Shorthand constructor for a column expression."""
    return Col(name)


def const(value: Union[int, float]) -> Const:
    """Shorthand constructor for a constant."""
    return Const(value)
