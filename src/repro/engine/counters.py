"""Per-query execution counters.

These counters are the reproduction's primary results: the paper's
Table 4 reports *runtime*, *rows scanned*, and *blocks accessed* — the
latter two are exact counts here, and runtime is derived from them via
the :class:`~repro.engine.cost.CostModel` (plus measured wall time).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from operator import attrgetter
from typing import Dict, Tuple

__all__ = ["QueryCounters"]


@dataclass
class QueryCounters:
    """Counters accumulated while executing one query."""

    rows_scanned: int = 0
    rows_qualifying: int = 0
    rows_joined: int = 0
    rows_output: int = 0
    blocks_accessed: int = 0
    remote_fetches: int = 0
    bytes_fetched: int = 0
    blocks_pruned_zonemap: int = 0
    rows_skipped_cache: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bloom_probes: int = 0
    bloom_positives: int = 0
    # Reuse-lattice counters (zero unless enable_reuse is configured).
    reuse_composed_serves: int = 0
    reuse_subsumed_serves: int = 0
    reuse_recheck_rows: int = 0
    reuse_skipped_rows: int = 0
    # Resilience counters (zero unless fault injection is armed).
    storage_faults: int = 0
    corrupt_blocks: int = 0
    storage_retries: int = 0
    retry_giveups: int = 0
    degraded_scans: int = 0
    backoff_seconds: float = 0.0
    result_cache_hit: bool = False
    wall_seconds: float = 0.0
    model_seconds: float = 0.0

    def merge(self, other: "QueryCounters") -> None:
        """Accumulate another counter set (sub-plan into query totals).

        Every numeric field sums, *including* ``wall_seconds`` and
        ``model_seconds``: a sub-plan's measured time is part of the
        enclosing query's total, so merging two timed sub-plans yields
        their combined time.  (Callers that re-measure the whole query
        overwrite ``wall_seconds`` afterwards — ``execute_plan`` does.)
        ``result_cache_hit`` ORs: a merged result is cache-served if any
        merged part was.
        """
        self.rows_scanned += other.rows_scanned
        self.rows_qualifying += other.rows_qualifying
        self.rows_joined += other.rows_joined
        self.rows_output += other.rows_output
        self.blocks_accessed += other.blocks_accessed
        self.remote_fetches += other.remote_fetches
        self.bytes_fetched += other.bytes_fetched
        self.blocks_pruned_zonemap += other.blocks_pruned_zonemap
        self.rows_skipped_cache += other.rows_skipped_cache
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.bloom_probes += other.bloom_probes
        self.bloom_positives += other.bloom_positives
        self.reuse_composed_serves += other.reuse_composed_serves
        self.reuse_subsumed_serves += other.reuse_subsumed_serves
        self.reuse_recheck_rows += other.reuse_recheck_rows
        self.reuse_skipped_rows += other.reuse_skipped_rows
        self.storage_faults += other.storage_faults
        self.corrupt_blocks += other.corrupt_blocks
        self.storage_retries += other.storage_retries
        self.retry_giveups += other.retry_giveups
        self.degraded_scans += other.degraded_scans
        self.backoff_seconds += other.backoff_seconds
        self.result_cache_hit = self.result_cache_hit or other.result_cache_hit
        self.wall_seconds += other.wall_seconds
        self.model_seconds += other.model_seconds

    def reset(self) -> None:
        """Zero every field in place (reusing one counter set per query).

        Kept as an explicit field list (like :meth:`merge`) so the
        project linter's RP004 rule can prove no field was forgotten
        when the counter set grows.
        """
        self.rows_scanned = 0
        self.rows_qualifying = 0
        self.rows_joined = 0
        self.rows_output = 0
        self.blocks_accessed = 0
        self.remote_fetches = 0
        self.bytes_fetched = 0
        self.blocks_pruned_zonemap = 0
        self.rows_skipped_cache = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.bloom_probes = 0
        self.bloom_positives = 0
        self.reuse_composed_serves = 0
        self.reuse_subsumed_serves = 0
        self.reuse_recheck_rows = 0
        self.reuse_skipped_rows = 0
        self.storage_faults = 0
        self.corrupt_blocks = 0
        self.storage_retries = 0
        self.retry_giveups = 0
        self.degraded_scans = 0
        self.backoff_seconds = 0.0
        self.result_cache_hit = False
        self.wall_seconds = 0.0
        self.model_seconds = 0.0

    def snapshot(self) -> Tuple[float, ...]:
        """Current values as a flat tuple (for before/after deltas).

        Deliberately not a ``QueryCounters`` copy: tracing snapshots run
        twice per slice per traced scan — per worker in parallel mode —
        and a plain tuple skips dataclass construction entirely.  The
        field order is :data:`_FIELD_NAMES` (dataclass declaration
        order); only :meth:`delta` should interpret it.
        """
        return _SNAPSHOT(self)

    def delta(self, before: Tuple[float, ...]) -> Dict[str, float]:
        """Non-zero numeric changes since a :meth:`snapshot` tuple
        (span attributes)."""
        out: Dict[str, float] = {}
        for name, previous in zip(_FIELD_NAMES, before):
            if name == "result_cache_hit":
                continue
            diff = getattr(self, name) - previous
            if diff:
                out[name] = diff
        return out

    def as_dict(self) -> Dict[str, float]:
        return dict(vars(self))


#: Dataclass field order — derived, so it cannot drift from the class.
_FIELD_NAMES: Tuple[str, ...] = tuple(f.name for f in fields(QueryCounters))
_SNAPSHOT = attrgetter(*_FIELD_NAMES)

#: Snapshot of a zero counter set; the parallel coordinator deltas each
#: worker's fresh counters against this to build span attributes.
ZERO_SNAPSHOT: Tuple[float, ...] = _SNAPSHOT(QueryCounters())
