"""The two-step table scan with predicate-cache integration (Fig. 11).

Scan flow per data slice:

1. **Cache probe** — the scan offers its join-extended key and its plain
   key to the predicate cache and takes the most selective live entry.
2. **Range restriction** — on a hit, candidate rows come from the cached
   entry (cached qualifying ranges plus the uncached appended tail) and
   the zone-map step is skipped; on a miss, zone maps prune whole blocks
   whose min/max bounds cannot satisfy the predicate.
3. **Vectorized scan** — the predicate (and any semi-join Bloom filters)
   is evaluated on the candidate rows; cached false positives are
   eliminated here, as is MVCC visibility.
4. **Cache fill** — the qualifying row ranges (which the scan produced
   anyway) are inserted back into the cache: the join-extended entry
   always, the plain entry whenever the scan's candidate set covers it.

Step 4's coverage rule keeps entries sound: a scan restricted by a
*join* entry's candidates has not evaluated the bare predicate outside
those candidates, so it must not write the plain entry.  A scan
restricted by the *plain* entry covers every join-qualifying row (the
join result is a subset of the predicate result), so it may write both.

With ``enable_reuse`` on (DESIGN.md §14), a full-key miss additionally
consults the reuse lattice (:mod:`repro.reuse`): the predicate's cached
conjuncts — or a cached wider range on the same column — yield an
ephemeral serving whose candidates are a superset of the truth, so step
3's re-evaluation keeps the result bit-identical to a cache-off scan.
Served or not, the scan derives per-conjunct qualifying sets on the way
(each padded with the complement of the candidate set, so they stay
supersets under *any* serving basis) and installs them at the same
coordinator barrier as every other entry.

Execution is coordinator/worker structured (see ``parallel.py``): the
coordinating thread resolves cache contexts, dispatches one
:func:`_scan_slice` task per slice (serially, or over a worker pool),
and at the barrier merges per-task counters, emits tracer spans, and
installs cache entries — all in slice order.  Worker code touches only
per-task state plus the internally-synchronized storage read path;
linter rule RP006 rejects shared-state mutation inside the worker
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import PredicateCache
from ..core.keys import ScanKey, SemiJoinDescriptor
from ..core.rowrange import RangeList
from ..faults.errors import NodeDownError
from ..predicates.ast import Predicate, TruePredicate
from ..storage.slice import DataSlice
from ..storage.table import Table
from . import parallel
from .bloom import BloomFilter
from .counters import ZERO_SNAPSHOT, QueryCounters
from .hashing import stable_int_keys

__all__ = ["SemiJoinFilter", "ScanResult", "execute_scan"]


@dataclass
class SemiJoinFilter:
    """A runtime semi-join filter pushed into a probe-side scan."""

    probe_column: str
    bloom: BloomFilter
    descriptor: Optional[SemiJoinDescriptor]
    build_versions: Dict[str, int] = field(default_factory=dict)


@dataclass
class ScanResult:
    """Qualifying rows of one scan, per slice, plus gather support."""

    table: Table
    per_slice: List[RangeList]
    txid: int
    #: Per-slice output columns materialized by the scan itself (the
    #: ``gather_columns`` of :func:`execute_scan`).  Reading them inside
    #: the slice tasks lets a parallel scan overlap the gather fetches
    #: too; ``gather`` falls back to storage for anything not here.
    prefetched: Optional[List[Dict[str, np.ndarray]]] = None

    @cached_property
    def num_rows(self) -> int:
        return sum(r.num_rows for r in self.per_slice)

    def gather(self, columns: Sequence[str]) -> Dict[str, np.ndarray]:
        """Materialize the given columns of all qualifying rows.

        Reads go through managed storage (block accesses are counted) —
        this is step (6) of Fig. 11, loading and decompressing only the
        required columns of qualifying rows.  Columns the slice scans
        already materialized (``prefetched``) are assembled without
        touching storage again.  The virtual column ``"__rows__"``
        yields a zero array of the right length without touching
        storage (used by ``count(*)``-only plans).
        """
        if list(columns) == ["__rows__"]:
            return {"__rows__": np.zeros(self.num_rows, dtype=np.int8)}
        out: Dict[str, List[np.ndarray]] = {name: [] for name in columns}
        for slice_id, (s, qualifying) in enumerate(
            zip(self.table.slices, self.per_slice)
        ):
            if not qualifying:
                continue
            ready = self.prefetched[slice_id] if self.prefetched else {}
            for name in columns:
                if name in ready:
                    out[name].append(ready[name])
                else:
                    out[name].append(
                        s.columns[name].read_ranges(qualifying, self.table.rms)
                    )
        result: Dict[str, np.ndarray] = {}
        for name in columns:
            pieces = out[name]
            if not pieces:
                result[name] = s_empty(self.table, name)
            elif self.table.schema.dtype_of(name).numpy_dtype == object:
                result[name] = np.concatenate([np.asarray(p, dtype=object) for p in pieces])
            else:
                result[name] = np.concatenate(pieces)
        return result


def s_empty(table: Table, column: str) -> np.ndarray:
    dtype = table.schema.dtype_of(column).numpy_dtype
    return np.empty(0, dtype=dtype)


def execute_scan(
    table: Table,
    predicate: Predicate,
    txid: int,
    counters: QueryCounters,
    cache: Optional[PredicateCache] = None,
    semijoins: Sequence[SemiJoinFilter] = (),
    current_versions: Optional[Mapping[str, int]] = None,
    tracer=None,
    workers: Optional[int] = None,
    gather_columns: Sequence[str] = (),
) -> ScanResult:
    """Run the two-step scan over every slice of ``table``.

    Args:
        table: the relation to scan.
        predicate: the pushed-down filter (``TruePredicate`` for none).
        txid: MVCC visibility snapshot.
        counters: query counters to accumulate into.
        cache: the predicate cache, or None to disable caching entirely.
        semijoins: Bloom filters pushed down from hash joins (§4.4).
        current_versions: data versions of semi-join build tables, for
            stale-entry rejection.
        tracer: optional :class:`~repro.obs.Tracer`; when set, the scan
            records ``cache-lookup`` and per-slice ``scan[slice]`` spans
            with counter and block-fetch deltas.  ``None`` keeps the
            pre-instrumentation hot path byte-for-byte.
        workers: slice-scan worker threads; ``0`` forces serial, ``None``
            defers to the session configuration (``REPRO_PARALLEL`` /
            ``REPRO_SCAN_WORKERS``).  Results and surfaced counters are
            bit-identical across worker counts.
        gather_columns: output columns the caller will gather from the
            result.  The slice tasks materialize them for their
            qualifying rows — the same reads ``ScanResult.gather``
            would issue, moved inside the (possibly parallel) scan so
            their fetch latency overlaps across slices too.

    Returns:
        Per-slice qualifying row ranges (post predicate, semi-join
        filters, and visibility).
    """
    predicate_key = predicate.cache_key()
    if cache is not None and cache.config.normalize_keys:
        from ..predicates.normalize import normalize

        predicate_key = normalize(predicate).cache_key()
    plain_key = ScanKey(table.name, predicate_key)
    join_key: Optional[ScanKey] = None
    build_versions: Dict[str, int] = {}
    # A join key must describe *every* filter the scan applies; filters
    # without a descriptor (undescribable build sides) disable it.
    if semijoins and all(sj.descriptor is not None for sj in semijoins):
        join_key = ScanKey(
            table.name,
            predicate_key,
            tuple(sj.descriptor for sj in semijoins),
        )
        for sj in semijoins:
            build_versions.update(sj.build_versions)

    # A multi-node cluster routes each slice to its owning node's
    # cache (``cache_for_slice``); a plain PredicateCache serves every
    # slice — the single-node special case.
    per_node = cache is not None and hasattr(cache, "cache_for_slice")

    # Columns the vectorized scan needs.
    scan_columns = sorted(predicate.columns() | {sj.probe_column for sj in semijoins})

    num_workers = (
        parallel.configured_workers() if workers is None else max(0, int(workers))
    )

    # -- coordinator pre-pass: resolve cache contexts per slice -------------
    # One context per *cache node*, held by direct reference (never
    # keyed by ``id()``: a collected cache's id can be reused mid-scan,
    # which would alias two distinct nodes into one context).  A plain
    # single-node cache shares one context across every slice.
    contexts: List[Optional[_SliceCacheContext]]
    node_contexts: List[_SliceCacheContext] = []
    if cache is not None and per_node:
        contexts = []
        down_caches: List[object] = []
        degraded_nodes = 0
        for slice_id in range(len(table.slices)):
            node_cache = cache.cache_for_slice(slice_id)
            if node_cache is None:
                # The cluster already marked this slice's node DOWN:
                # route around it with a cache-off scan (degradation
                # ladder, rung 2 — correctness never depends on the
                # cache).  Count the degradation once per table scan.
                if degraded_nodes == 0:
                    counters.degraded_scans += 1
                degraded_nodes += 1
                contexts.append(None)
                continue
            if any(down is node_cache for down in down_caches):
                contexts.append(None)
                continue
            context = None
            for known in node_contexts:
                if known.cache is node_cache:
                    context = known
                    break
            if context is None:
                try:
                    context = _prepare_cache_context(
                        node_cache, table, predicate, plain_key, join_key,
                        build_versions, current_versions, counters, tracer,
                    )
                except NodeDownError:
                    # Undetected failure window: the node died but the
                    # health monitor has not routed around it yet.  Same
                    # fallback — cache-off for this node's slices.
                    if degraded_nodes == 0:
                        counters.degraded_scans += 1
                    degraded_nodes += 1
                    down_caches.append(node_cache)
                    contexts.append(None)
                    continue
                node_contexts.append(context)
            contexts.append(context)
    elif cache is not None:
        shared_context = _prepare_cache_context(
            cache, table, predicate, plain_key, join_key,
            build_versions, current_versions, counters, tracer,
        )
        contexts = [shared_context] * len(table.slices)
        node_contexts.append(shared_context)
    else:
        contexts = [None] * len(table.slices)

    for slice_id, data_slice in enumerate(table.slices):
        context = contexts[slice_id]
        if context is not None and context.entry is not None:
            state = context.entry.slice_states[slice_id]
            if state is not None and state.last_cached_row > data_slice.num_rows:
                # Degradation ladder, rung 2: the cached state claims a
                # row numbering this slice no longer has (an invalidation
                # was missed).  Drop the entry — through _drop, so
                # metrics fire — and fall back to full scans for the
                # rest of this table scan.  An ephemeral reuse serving
                # names the *source* entries it was composed from; those
                # are what hold the stale state.
                stale_keys = getattr(context.entry, "source_keys", None) or (
                    context.entry.key,
                )
                for stale_key in stale_keys:
                    context.cache.drop_stale(stale_key)
                counters.degraded_scans += 1
                context.entry = None

    # -- dispatch ------------------------------------------------------------
    if num_workers <= 0:
        results = _run_slices_serial(
            table, predicate, semijoins, txid, counters,
            contexts, scan_columns, list(gather_columns), tracer,
        )
    else:
        results = _run_slices_parallel(
            table, predicate, semijoins, txid, counters,
            contexts, scan_columns, list(gather_columns), tracer, num_workers,
        )
    per_slice: List[RangeList] = [qualifying for qualifying, _, _, _ in results]
    prefetched = [materialized for _, _, materialized, _ in results]

    # -- barrier: install cache entries, coordinator-side, in slice order ----
    # Workers never write the cache (RP006); batching the installs here
    # keeps the cache mutation sequence identical whatever order the
    # slice tasks actually completed in.  Derived conjunct entries ride
    # the same barrier (RP009: the reuse package itself never writes).
    for slice_id, (qualifying, q_plain, _, extras) in enumerate(results):
        context = contexts[slice_id]
        if context is None:
            continue
        num_rows = table.slices[slice_id].num_rows
        if context.join_entry is not None:
            context.cache.record_slice_scan(
                context.join_entry, slice_id, qualifying, num_rows
            )
            context.cache.record_entry_stats(
                context.join_entry, qualifying.num_rows, num_rows
            )
        if context.plain_entry is not None:
            context.cache.record_slice_scan(
                context.plain_entry, slice_id, q_plain, num_rows
            )
            context.cache.record_entry_stats(
                context.plain_entry, q_plain.num_rows, num_rows
            )
        if context.conjunct_entries and extras.conjunct_lists is not None:
            for (c_entry, _), c_list in zip(
                context.conjunct_entries, extras.conjunct_lists
            ):
                context.cache.record_slice_scan(c_entry, slice_id, c_list, num_rows)
                context.cache.record_entry_stats(c_entry, c_list.num_rows, num_rows)
        if (
            context.basis in ("composed", "subsumed")
            and context.entry is not None
        ):
            # The subsumption/composition re-check accounting: candidate
            # rows were re-evaluated, the rest were skipped outright.
            rechecked = extras.candidate_rows
            counters.reuse_recheck_rows += rechecked
            counters.reuse_skipped_rows += num_rows - rechecked
            context.cache.record_reuse_rows(rechecked, num_rows - rechecked)

    # One policy observation per (node, scan) — not per slice — so a
    # "sighting" means one execution of the scan, like the paper's
    # repetitiveness notion.
    if cache is not None and per_node:
        for slice_id, (qualifying, _, _, _) in enumerate(results):
            context = contexts[slice_id]
            if context is not None:
                context.qualifying_rows += qualifying.num_rows
                context.total_rows += table.slices[slice_id].num_rows
        for context in node_contexts:
            _observe_policy(
                context.cache, predicate, plain_key, join_key,
                context.qualifying_rows, max(1, context.total_rows),
            )
    elif cache is not None:
        total_q = sum(q.num_rows for q in per_slice)
        _observe_policy(
            node_contexts[0].cache, predicate, plain_key, join_key,
            total_q, max(1, table.num_rows),
        )

    return ScanResult(table, per_slice, txid, prefetched)


def _run_slices_serial(
    table: Table,
    predicate: Predicate,
    semijoins: Sequence[SemiJoinFilter],
    txid: int,
    counters: QueryCounters,
    contexts: List[Optional["_SliceCacheContext"]],
    scan_columns: List[str],
    gather_columns: List[str],
    tracer,
) -> List["_SliceResult"]:
    """Scan every slice on the calling thread, in slice order."""
    rms = table.rms
    results: List["_SliceResult"] = []
    rms.begin_scan_phase(concurrent=False)
    try:
        for slice_id, data_slice in enumerate(table.slices):
            context = contexts[slice_id]
            slice_span = None
            if tracer is not None:
                slice_span = tracer.begin(
                    f"scan[slice {slice_id}]", table=table.name, slice=slice_id
                )
                counters_before = counters.snapshot()
                storage_before = rms.stats.snapshot()
            pair = _scan_slice(
                table, data_slice, slice_id, predicate, semijoins,
                txid, counters,
                context.entry if context is not None else None,
                scan_columns, gather_columns,
                context.conjunct_predicates() if context is not None else (),
            )
            if slice_span is not None:
                slice_span.update(counters.delta(counters_before))
                storage_delta = rms.stats.delta(storage_before)
                slice_span.set("blocks_fetched", storage_delta.blocks_accessed)
                slice_span.set(
                    "cache_basis", context.basis if context is not None else "off"
                )
                tracer.end(slice_span)
            results.append(pair)
    finally:
        rms.end_scan_phase()
    return results


def _run_slices_parallel(
    table: Table,
    predicate: Predicate,
    semijoins: Sequence[SemiJoinFilter],
    txid: int,
    counters: QueryCounters,
    contexts: List[Optional["_SliceCacheContext"]],
    scan_columns: List[str],
    gather_columns: List[str],
    tracer,
    num_workers: int,
) -> List["_SliceResult"]:
    """Fan the slice scans over a worker pool; merge at the barrier.

    Each task gets a fresh ``QueryCounters`` and records its own span
    window via the tracer's shared clock; the coordinator merges the
    counters and emits the spans in slice order, so traces and totals
    match the serial executor exactly.
    """
    rms = table.rms
    executor = parallel.ParallelScanExecutor(num_workers)
    # The phase is started *before* the tasks are built so each task can
    # capture it: pool threads adopt the coordinator's (phase, query)
    # storage bindings for the duration of their slice, then restore —
    # pool threads are shared across concurrent scans, and the inline
    # path runs tasks on the coordinator thread itself.
    phase = rms.begin_scan_phase(concurrent=True)
    query_context = rms.current_query_context()

    def make_task(
        slice_id: int,
        data_slice: DataSlice,
        entry,
        conjunct_predicates: Tuple[Predicate, ...],
    ):
        def task() -> Tuple["_SliceResult", QueryCounters, float, float]:
            local = QueryCounters()
            adopted = rms.adopt_scan_context(phase, query_context)
            try:
                start = tracer.now() if tracer is not None else 0.0
                pair = _scan_slice(
                    table, data_slice, slice_id, predicate, semijoins,
                    txid, local, entry, scan_columns, gather_columns,
                    conjunct_predicates,
                )
                end = tracer.now() if tracer is not None else 0.0
            finally:
                rms.release_scan_context(adopted)
            return pair, local, start, end

        return task

    try:
        tasks = [
            make_task(
                slice_id,
                data_slice,
                contexts[slice_id].entry if contexts[slice_id] is not None else None,
                contexts[slice_id].conjunct_predicates()
                if contexts[slice_id] is not None
                else (),
            )
            for slice_id, data_slice in enumerate(table.slices)
        ]
        outcomes = executor.run(tasks)
    finally:
        access_counts = rms.end_scan_phase()

    results: List["_SliceResult"] = []
    for slice_id, (pair, local, start, end) in enumerate(outcomes):
        counters.merge(local)
        if tracer is not None:
            context = contexts[slice_id]
            attrs: Dict[str, object] = {"table": table.name, "slice": slice_id}
            attrs.update(local.delta(ZERO_SNAPSHOT))
            attrs["blocks_fetched"] = access_counts.get(slice_id, 0)
            attrs["cache_basis"] = context.basis if context is not None else "off"
            tracer.emit(f"scan[slice {slice_id}]", start, end, attrs)
        results.append(pair)
    return results


@dataclass
class _SliceCacheContext:
    """Resolved cache interaction for a scan (or one cache node of it).

    Built by the coordinator before dispatch and mutated only by the
    coordinator afterwards; workers read ``entry`` (immutable slice
    states) and the conjunct predicates, nothing else.
    ``qualifying_rows``/``total_rows`` accumulate the per-node policy
    observation at the barrier.
    """

    cache: PredicateCache
    entry: Optional[object]
    join_entry: Optional[object]
    plain_entry: Optional[object]
    basis: str = "full"
    #: Derived per-conjunct entries this scan installs at the barrier,
    #: paired with the normalized conjunct predicate each one records.
    conjunct_entries: List[Tuple[object, Predicate]] = field(default_factory=list)
    qualifying_rows: int = 0
    total_rows: int = 0

    def conjunct_predicates(self) -> Tuple[Predicate, ...]:
        return tuple(predicate for _, predicate in self.conjunct_entries)


def _prepare_cache_context(
    cache: PredicateCache,
    table: Table,
    predicate: Predicate,
    plain_key: ScanKey,
    join_key: Optional[ScanKey],
    build_versions: Dict[str, int],
    current_versions: Optional[Mapping[str, int]],
    counters: QueryCounters,
    tracer=None,
) -> _SliceCacheContext:
    """Probe the cache and decide which entries this scan records."""
    cache.watch_table(table)
    cache_join = cache.config.cache_join_keys
    candidate_keys = []
    if join_key is not None and cache_join:
        candidate_keys.append(join_key)
    candidate_keys.append(plain_key)
    decomposition = None
    if cache.config.enable_reuse and not isinstance(predicate, TruePredicate):
        # Deferred import: the reuse package sits above the engine in
        # the import graph (it reads persist/ for key digests).
        from ..reuse import decompose

        decomposition = decompose(
            table.name, predicate, cache.config.reuse_max_conjuncts
        )
    lookup_span = None
    if tracer is not None:
        lookup_span = tracer.begin(
            "cache-lookup", table=table.name, candidates=len(candidate_keys)
        )
    entry = cache.select_entry(candidate_keys, current_versions)
    serving = None
    if entry is None:
        # The exact-match miss is counted regardless of a reuse serve:
        # stats.hit_rate stays the paper's Fig. 13 metric, reuse serves
        # are accounted on top in reuse_stats.
        counters.cache_misses += 1
        basis = "full"
        if decomposition is not None:
            from ..reuse import plan_reuse

            plan_span = None
            if tracer is not None:
                plan_span = tracer.begin(
                    "reuse-plan",
                    table=table.name,
                    conjuncts=len(decomposition.conjuncts),
                )
            plan = plan_reuse(
                cache, decomposition, plain_key, current_versions,
                table.num_slices,
            )
            if plan is not None:
                serving = plan.serving
                entry = serving
                basis = serving.basis
                cache.record_reuse_serve(basis)
                if basis == "composed":
                    counters.reuse_composed_serves += 1
                else:
                    counters.reuse_subsumed_serves += 1
            if plan_span is not None:
                plan_span.set("outcome", basis if plan is not None else "none")
                if plan is not None:
                    plan_span.set("resolved", plan.resolved)
                    plan_span.set("subsumed_parts", plan.subsumed_parts)
                    plan_span.set(
                        "sources", [str(k) for k in plan.serving.source_keys]
                    )
                tracer.end(plan_span)
    else:
        counters.cache_hits += 1
        basis = "join" if entry.key.is_join_key else "plain"
    if lookup_span is not None:
        if entry is None:
            outcome = "miss"
        elif serving is not None:
            outcome = f"reuse-{basis}"
        else:
            outcome = "hit"
        lookup_span.set("outcome", outcome)
        lookup_span.set("basis", basis)
        if entry is not None:
            lookup_span.set("entry_selectivity", round(entry.selectivity, 6))
            lookup_span.set("entry_nbytes", entry.nbytes)
        tracer.end(lookup_span)

    join_entry = None
    plain_entry = None
    conjunct_entries: List[Tuple[object, Predicate]] = []
    if _should_cache(cache, table):
        if join_key is not None and cache_join and cache.admits(join_key):
            join_entry = cache.get_or_create(
                join_key, table.num_slices, build_versions
            )
        # Unfiltered scans are not worth a plain entry: the paper
        # caches "predicates pushed into table scans", and a TRUE
        # entry would qualify every row.
        if (
            basis != "join"
            and not isinstance(predicate, TruePredicate)
            and cache.admits(plain_key)
        ):
            if serving is not None:
                # A reuse-served scan evaluates the real predicate over
                # a candidate superset, so its q_plain is exact — the
                # full-key entry it fills records how it was derived.
                plain_entry = cache.get_or_create(
                    plain_key,
                    table.num_slices,
                    {},
                    provenance=serving.basis,
                    source_digests=serving.source_digests,
                )
            else:
                plain_entry = cache.get_or_create(plain_key, table.num_slices, {})
        # Derived conjunct entries: sound under any serving basis except
        # "join" (where the complement-padded sets would be uselessly
        # wide — the join candidates are already heavily filtered).
        if decomposition is not None and basis != "join":
            for conjunct in decomposition.conjuncts:
                if conjunct.key == plain_key or not cache.admits(conjunct.key):
                    continue
                conjunct_entries.append(
                    (
                        cache.get_or_create(
                            conjunct.key,
                            table.num_slices,
                            {},
                            provenance="conjunct",
                        ),
                        conjunct.predicate,
                    )
                )
    return _SliceCacheContext(
        cache, entry, join_entry, plain_entry, basis,
        conjunct_entries=conjunct_entries,
    )


def _observe_policy(
    cache: PredicateCache,
    predicate: Predicate,
    plain_key: ScanKey,
    join_key: Optional[ScanKey],
    qualifying_rows: int,
    total_rows: int,
) -> None:
    """Feed the admission policy (repetitiveness + selectivity, §4.1.2)."""
    if isinstance(predicate, TruePredicate):
        return
    selectivity = qualifying_rows / total_rows
    cache.policy.observe(plain_key, selectivity)
    if join_key is not None and cache.config.cache_join_keys:
        cache.policy.observe(join_key, selectivity)


def _should_cache(cache: PredicateCache, table: Table) -> bool:
    return table.num_rows >= cache.config.min_rows_to_cache


@dataclass
class _SliceScanExtras:
    """Worker-side byproducts the coordinator's barrier consumes."""

    #: Candidate rows this slice actually re-evaluated (post zone-map);
    #: for a reuse-served scan these are the re-checked rows.
    candidate_rows: int
    #: Derived per-conjunct qualifying sets (each padded with the
    #: complement of the candidate set so it stays a superset of the
    #: conjunct's truth under any serving basis), or ``None`` when the
    #: slice evaluated nothing.
    conjunct_lists: Optional[List[RangeList]] = None


_SliceResult = Tuple[RangeList, RangeList, Dict[str, np.ndarray], _SliceScanExtras]


def _scan_slice(
    table: Table,
    data_slice: DataSlice,
    slice_id: int,
    predicate: Predicate,
    semijoins: Sequence[SemiJoinFilter],
    txid: int,
    counters: QueryCounters,
    entry,
    scan_columns: List[str],
    gather_columns: List[str],
    conjunct_predicates: Tuple[Predicate, ...] = (),
) -> _SliceResult:
    """Scan one slice; returns ``(qualifying, plain-qualifying,
    materialized gather columns, extras)``.

    Worker-side code: may run on a pool thread with a per-task
    ``counters``.  It must not mutate shared engine or cache state —
    entry installs happen at the coordinator's barrier (rule RP006).
    """
    num_rows = data_slice.num_rows
    state = entry.slice_states[slice_id] if entry is not None else None

    if state is not None:
        # Cache hit: the cached ranges replace the range-restricted scan.
        # Zone-map pruning is still applied on top — it is metadata-only
        # and guarantees a hit never scans more than a miss would
        # ("rigorously avoiding slowdowns", §1).
        candidates = state.candidates(num_rows)
        counters.rows_skipped_cache += num_rows - candidates.num_rows
        candidates = _prune_with_zonemaps(
            data_slice, predicate, candidates, counters
        )
    else:
        candidates = RangeList.full(num_rows)
        candidates = _prune_with_zonemaps(
            data_slice, predicate, candidates, counters
        )

    counters.rows_scanned += candidates.num_rows
    extras = _SliceScanExtras(candidate_rows=candidates.num_rows)

    if candidates.num_rows == 0:
        qualifying = RangeList.empty()
        q_plain = RangeList.empty()
    else:
        batch = {
            name: data_slice.columns[name].read_ranges(candidates, table.rms)
            for name in scan_columns
        }
        if isinstance(predicate, TruePredicate) and not scan_columns:
            pred_mask = np.ones(candidates.num_rows, dtype=bool)
        else:
            pred_mask = predicate.evaluate(batch)
            if pred_mask.shape == ():  # scalar result of an empty batch
                pred_mask = np.full(candidates.num_rows, bool(pred_mask))
        vis_mask = data_slice.visibility_mask(candidates, txid)
        plain_mask = pred_mask & vis_mask
        full_mask = plain_mask
        for sj in semijoins:
            keys = stable_int_keys(batch[sj.probe_column])
            bloom_mask = sj.bloom.may_contain(keys)
            counters.bloom_probes += len(keys)
            counters.bloom_positives += int(np.count_nonzero(bloom_mask))
            full_mask = full_mask & bloom_mask
        row_ids = candidates.to_row_ids()
        qualifying = RangeList.from_rows(row_ids[full_mask])
        q_plain = (
            qualifying
            if full_mask is plain_mask
            else RangeList.from_rows(row_ids[plain_mask])
        )
        if conjunct_predicates:
            # Per-conjunct qualifying sets for the reuse lattice.  Rows
            # outside the candidate set were not evaluated here, so each
            # set is padded with the complement — a false-positive-only
            # superset of the conjunct's truth whatever basis restricted
            # this scan (zone-map-pruned rows included; they re-prune).
            complement = candidates.complement(num_rows)
            conjunct_lists: List[RangeList] = []
            for conjunct in conjunct_predicates:
                c_mask = conjunct.evaluate(batch)
                if c_mask.shape == ():
                    c_mask = np.full(candidates.num_rows, bool(c_mask))
                c_mask = c_mask & vis_mask
                conjunct_lists.append(
                    RangeList.from_rows(row_ids[c_mask]).union(complement)
                )
            extras.conjunct_lists = conjunct_lists

    counters.rows_qualifying += qualifying.num_rows

    # Materialize the caller's output columns for the qualifying rows —
    # exactly the reads ScanResult.gather would issue, moved here so
    # parallel slice tasks overlap the gather fetches too.
    materialized: Dict[str, np.ndarray] = {}
    if qualifying:
        for name in gather_columns:
            materialized[name] = data_slice.columns[name].read_ranges(
                qualifying, table.rms
            )

    return qualifying, q_plain, materialized, extras


def _prune_with_zonemaps(
    data_slice: DataSlice,
    predicate: Predicate,
    candidates: RangeList,
    counters: QueryCounters,
) -> RangeList:
    """Step 1 of the standard scan: drop blocks by min/max bounds."""
    for column_name in predicate.columns():
        bounds = predicate.bounds(column_name)
        if bounds is None or bounds.unbounded:
            continue
        column = data_slice.columns.get(column_name)
        if column is None:
            continue
        prunable = column.prunable_block_ranges(bounds)
        if prunable:
            counters.blocks_pruned_zonemap += len(prunable)
            candidates = candidates.difference(prunable)
        if not candidates:
            break
    return candidates
