"""Stable vectorized key hashing for joins and Bloom filters.

Join keys are reduced to int64 before hash-join bucketing and Bloom
probing.  Integer keys pass through unchanged; string keys are hashed
with FNV-1a over their UTF-8 bytes.

Python's builtin ``hash`` must NOT be used here: for ``str`` it is salted
per process (``PYTHONHASHSEED``), so Bloom-filter false-positive behavior
— and with it every counter derived from semi-join pushdown — would not
reproduce across runs.  FNV-1a is process-independent, endian-independent
(we feed bytes, not words), and cheap to vectorize: strings are encoded
into a zero-padded byte matrix and the hash state advances one byte
*column* at a time, so the Python-level loop is bounded by the longest
key, not the number of keys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stable_int_keys", "fnv1a_hash"]

_FNV_OFFSET = np.uint64(0xCBF29CE484222325)
_FNV_PRIME = np.uint64(0x100000001B3)


def fnv1a_hash(strings: np.ndarray) -> np.ndarray:
    """FNV-1a over the UTF-8 bytes of each string, as int64.

    NUL bytes terminate a key early (they cannot occur in valid column
    data and double as the padding sentinel of the byte matrix).
    """
    strings = np.asarray(strings)
    if strings.size == 0:
        return np.empty(0, dtype=np.int64)
    encoded = np.char.encode(strings.astype("U"), "utf-8")
    width = encoded.dtype.itemsize
    matrix = np.frombuffer(
        encoded.tobytes(), dtype=np.uint8
    ).reshape(len(encoded), width)
    state = np.full(len(encoded), _FNV_OFFSET, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for column in range(width):
            byte = matrix[:, column]
            live = byte != 0
            if not live.any():
                break
            state[live] = (state[live] ^ byte[live]) * _FNV_PRIME
    return state.view(np.int64)


def stable_int_keys(values: np.ndarray) -> np.ndarray:
    """Join keys as int64 (strings via stable FNV-1a, not ``hash()``)."""
    values = np.asarray(values)
    if values.dtype == object or values.dtype.kind == "U":
        return fnv1a_hash(values)
    return values.astype(np.int64, copy=False)
