"""EXPLAIN: render plan trees for inspection.

``explain(plan)`` produces an indented tree like::

    Aggregate(by=[], aggs=[sum->revenue])
      HashJoin(l_partkey = p_partkey, semijoin=True)
        Scan(lineitem, filter=l_quantity BETWEEN 35 AND 45)
        Scan(part, filter=p_brand = 'Brand#45')

and ``QueryEngine.explain(sql)`` plans a statement and renders it —
useful for checking what was pushed down where (e.g. the Q19 implied
disjunctions).
"""

from __future__ import annotations

from typing import List

from .plan import (
    AggregateNode,
    FilterNode,
    JoinNode,
    LimitNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)

__all__ = ["explain"]


def explain(plan: PlanNode) -> str:
    """An indented, human-readable rendering of a plan tree."""
    lines: List[str] = []
    _render(plan, 0, lines)
    return "\n".join(lines)


def _children(node: PlanNode) -> List[PlanNode]:
    if isinstance(node, JoinNode):
        return [node.probe, node.build]
    for attribute in ("child",):
        child = getattr(node, attribute, None)
        if child is not None:
            return [child]
    return []


def _render(node: PlanNode, depth: int, lines: List[str]) -> None:
    lines.append("  " * depth + node.describe())
    for child in _children(node):
        _render(child, depth + 1, lines)
