"""EXPLAIN / EXPLAIN ANALYZE: render plans and executed span trees.

``explain(plan)`` produces an indented tree like::

    Aggregate(by=[], aggs=[sum->revenue])
      HashJoin(l_partkey = p_partkey, semijoin=True)
        Scan(lineitem, filter=l_quantity BETWEEN 35 AND 45)
        Scan(part, filter=p_brand = 'Brand#45')

and ``QueryEngine.explain(sql)`` plans a statement and renders it —
useful for checking what was pushed down where (e.g. the Q19 implied
disjunctions).

``render_analyze(span, counters)`` is the runtime twin: it renders the
span tree a traced execution recorded — per-operator wall time and
inclusive counter deltas, per-slice cache outcome and block fetches —
followed by a query-totals footer.  ``QueryEngine.explain_analyze(sql)``
executes a statement and returns this rendering::

    query  (time=1.73ms rows_output=1)
      parse  (time=0.08ms)
      plan  (time=0.04ms)
      execute  (time=1.52ms)
        Aggregate  (time=1.50ms rows_out=1 ...)
          Scan  (time=1.41ms rows_out=5943 cache_hits=1 ...)
            cache-lookup  (outcome=hit basis=plain ...)
            scan[slice 0]  (rows_scanned=1486 rows_skipped_cache=8514
                            blocks_fetched=6 cache_basis=plain ...)
"""

from __future__ import annotations

from typing import List, Optional

from .counters import QueryCounters
from .plan import JoinNode, PlanNode

__all__ = ["explain", "render_analyze"]


def explain(plan: PlanNode) -> str:
    """An indented, human-readable rendering of a plan tree."""
    lines: List[str] = []
    _render(plan, 0, lines)
    return "\n".join(lines)


def _children(node: PlanNode) -> List[PlanNode]:
    if isinstance(node, JoinNode):
        return [node.probe, node.build]
    for attribute in ("child",):
        child = getattr(node, attribute, None)
        if child is not None:
            return [child]
    return []


def _render(node: PlanNode, depth: int, lines: List[str]) -> None:
    lines.append("  " * depth + node.describe())
    for child in _children(node):
        _render(child, depth + 1, lines)


# -- EXPLAIN ANALYZE ----------------------------------------------------------

# Attributes rendered first, in this order; the rest follow sorted.
_LEADING_ATTRS = (
    "operator",
    "outcome",
    "basis",
    "cache_basis",
    "rows_out",
    "rows_output",
    "rows_scanned",
    "rows_skipped_cache",
    "rows_qualifying",
    "blocks_fetched",
    "blocks_accessed",
)
# Noise we do not print (timings are shown as time=, sql on the header).
_HIDDEN_ATTRS = frozenset({"sql", "wall_seconds", "model_seconds"})


def render_analyze(span, counters: Optional[QueryCounters] = None) -> str:
    """Render an executed query's span tree (EXPLAIN ANALYZE output).

    ``span`` is the root :class:`~repro.obs.Span` of a traced execution
    (``QueryResult.trace``); ``counters`` appends the query-totals
    footer.  Operator spans show their plan-node description plus the
    inclusive counter deltas the executor attached; scan slices show the
    cache outcome, rows skipped, and blocks fetched.
    """
    if span is None:
        raise ValueError(
            "render_analyze needs a traced result "
            "(execute with a Tracer attached, or use explain_analyze)"
        )
    lines: List[str] = []
    _render_span(span, 0, lines)
    if counters is not None:
        totals = ", ".join(
            f"{name}={value}"
            for name, value in counters.as_dict().items()
            if value and name not in ("wall_seconds", "model_seconds")
        )
        lines.append("")
        lines.append(
            f"Totals: wall={counters.wall_seconds * 1e3:.2f}ms "
            f"model={counters.model_seconds * 1e3:.2f}ms  {totals}"
        )
    return "\n".join(lines)


def _render_span(span, depth: int, lines: List[str]) -> None:
    header = span.attrs.get("operator", span.name)
    parts = [f"time={span.duration_s * 1e3:.2f}ms"]
    seen = set()
    for key in _LEADING_ATTRS:
        if key in span.attrs and key != "operator":
            parts.append(f"{key}={_fmt(span.attrs[key])}")
            seen.add(key)
    for key in sorted(span.attrs):
        if key in seen or key in _HIDDEN_ATTRS or key == "operator":
            continue
        parts.append(f"{key}={_fmt(span.attrs[key])}")
    lines.append("  " * depth + f"{header}  ({' '.join(parts)})")
    for child in span.children:
        _render_span(child, depth + 1, lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
