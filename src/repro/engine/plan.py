"""Query plan nodes.

Plans are small logical trees executed directly by
:mod:`repro.engine.executor`.  The shapes match what the reproduction
needs: scans with pushed-down predicates, left-deep hash joins with the
probe side on the left (fact table) and semi-join filter pushdown,
grouped aggregation, sorting, limiting, and projection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..predicates.ast import Predicate, TruePredicate
from .expr import Expr

__all__ = [
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "FilterNode",
    "MapNode",
    "AggregateNode",
    "Aggregation",
    "ProjectNode",
    "SortNode",
    "LimitNode",
]

_AGG_FUNCS = ("sum", "count", "avg", "min", "max", "count_distinct")


class PlanNode:
    """Base class for plan nodes."""

    def output_columns(self) -> List[str]:
        """Column names this node produces, in order."""
        raise NotImplementedError

    def referenced_tables(self) -> Set[str]:
        """All base tables under this node (result-cache dependencies)."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line plan description (EXPLAIN-style)."""
        raise NotImplementedError


@dataclass
class ScanNode(PlanNode):
    """A base-table scan with a pushed-down filter predicate.

    ``columns=None`` means "whatever the parent needs" — the executor
    resolves the projection against the table schema.
    """

    table: str
    predicate: Predicate = field(default_factory=TruePredicate)
    columns: Optional[List[str]] = None

    def output_columns(self) -> List[str]:
        if self.columns is None:
            raise ValueError(
                f"scan of {self.table} has unresolved projection; "
                "execute through QueryEngine which resolves it"
            )
        return list(self.columns)

    def referenced_tables(self) -> Set[str]:
        return {self.table}

    def describe(self) -> str:
        return f"Scan({self.table}, filter={self.predicate.cache_key()})"


@dataclass
class JoinNode(PlanNode):
    """Hash inner equi-join.

    ``probe`` (left) streams through the join; ``build`` (right) is
    materialized into the hash table.  With ``semijoin=True`` a Bloom
    filter over the build keys is pushed into the probe-side scan that
    produces ``probe_key`` (§4.4).
    """

    probe: PlanNode
    build: PlanNode
    probe_key: str
    build_key: str
    semijoin: bool = True

    def output_columns(self) -> List[str]:
        left = self.probe.output_columns()
        right = [c for c in self.build.output_columns() if c not in left]
        return left + right

    def referenced_tables(self) -> Set[str]:
        return self.probe.referenced_tables() | self.build.referenced_tables()

    def join_predicate_text(self) -> str:
        """Canonical join condition, part of the join-index key."""
        left, right = sorted((self.probe_key, self.build_key))
        return f"{left} = {right}"

    def describe(self) -> str:
        return (
            f"HashJoin({self.probe_key} = {self.build_key}, "
            f"semijoin={self.semijoin})"
        )


@dataclass(frozen=True)
class Aggregation:
    """One aggregate: ``func(expr) AS alias``.

    ``expr=None`` is ``count(*)``.
    """

    func: str
    expr: Optional[Expr]
    alias: str

    def __post_init__(self) -> None:
        if self.func not in _AGG_FUNCS:
            raise ValueError(f"unknown aggregate function {self.func!r}")
        if self.expr is None and self.func != "count":
            raise ValueError(f"{self.func} requires an argument expression")

    def input_columns(self) -> Set[str]:
        return set(self.expr.columns()) if self.expr is not None else set()


@dataclass
class AggregateNode(PlanNode):
    """Grouped aggregation."""

    child: PlanNode
    group_by: List[str]
    aggregations: List[Aggregation]

    def output_columns(self) -> List[str]:
        return list(self.group_by) + [a.alias for a in self.aggregations]

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        aggs = ", ".join(f"{a.func}->{a.alias}" for a in self.aggregations)
        return f"Aggregate(by={self.group_by}, aggs=[{aggs}])"


@dataclass
class MapNode(PlanNode):
    """Adds computed columns to the child's batch (keeps the rest).

    Used for expression group-bys: ``group by year(l_shipdate)`` maps
    the year onto each row before aggregation.
    """

    child: PlanNode
    computations: List[Tuple[str, Expr]]

    def output_columns(self) -> List[str]:
        return self.child.output_columns() + [
            alias for alias, _ in self.computations
        ]

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        rendered = ", ".join(
            f"{alias}={expr.label()}" for alias, expr in self.computations
        )
        return f"Map({rendered})"


@dataclass
class FilterNode(PlanNode):
    """A residual filter applied above its child (post-join).

    Used for predicates that span multiple tables (e.g. TPC-H Q19's
    disjunction): the planner pushes per-table *implied* disjunctions
    into the scans and re-checks the full predicate here.
    """

    child: PlanNode
    predicate: Predicate

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        return f"Filter({self.predicate.cache_key()})"


@dataclass
class ProjectNode(PlanNode):
    """Compute expressions: ``(expr AS alias, ...)``."""

    child: PlanNode
    projections: List[Tuple[str, Expr]]

    def output_columns(self) -> List[str]:
        return [alias for alias, _ in self.projections]

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        return f"Project({[alias for alias, _ in self.projections]})"


@dataclass
class SortNode(PlanNode):
    """Sort by keys; each key is (column, ascending)."""

    child: PlanNode
    keys: List[Tuple[str, bool]]

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        rendered = ", ".join(
            f"{col} {'asc' if asc else 'desc'}" for col, asc in self.keys
        )
        return f"Sort({rendered})"


@dataclass
class LimitNode(PlanNode):
    """Keep the first ``count`` rows."""

    child: PlanNode
    count: int

    def output_columns(self) -> List[str]:
        return self.child.output_columns()

    def referenced_tables(self) -> Set[str]:
        return self.child.referenced_tables()

    def describe(self) -> str:
        return f"Limit({self.count})"
