"""Baseline techniques the paper compares predicate caching against.

* :mod:`repro.baselines.result_cache` — leader-node result caching (§3.1),
* :mod:`repro.baselines.automv` — automated materialized views with
  template extraction and predicate elevation (§3.2),
* :mod:`repro.baselines.btree` — a B+-tree secondary index (Table 3),
* :mod:`repro.baselines.sorting` — predicate sorting, the simplified
  Qd-tree variant evaluated in §5.6,
* :mod:`repro.baselines.qdtree` — the full query-driven Qd-tree layout
  (§3.3, Fig. 9).
"""

from .automv import AutoMVManager, MaterializedView
from .btree import BPlusTree
from .qdtree import QdTree
from .result_cache import ResultCache
from .sorting import PredicateSorter

__all__ = [
    "AutoMVManager",
    "BPlusTree",
    "MaterializedView",
    "PredicateSorter",
    "QdTree",
    "ResultCache",
]
