"""A query-driven Qd-tree data layout (§3.3, Fig. 9; Yang et al. [33]).

The Qd-tree recursively cuts a table by workload predicates: each inner
node splits rows into the part that satisfies one predicate and the
part that does not; leaves are contiguous partitions in the rewritten
table.  A later scan with predicate ``p`` can *skip every leaf whose
path proves ¬p`` — and partially matching predicates (e.g. ``x < 5``
against a cut on ``x < 10``) still exploit the cut, which is the
technique's hit-rate advantage over exact-match caches.

This implementation builds per-slice trees (our tables are sliced),
produces the reorganization permutation, and routes query predicates to
the leaves that may contain matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.rowrange import RangeList
from ..predicates.ast import Predicate
from ..storage.table import Table

__all__ = ["QdTree", "QdLeaf"]


@dataclass
class QdLeaf:
    """One partition: its row span in the rewritten layout and the
    predicate signature proven by its path (predicate index -> bool)."""

    start: int
    end: int
    signature: Dict[int, bool] = field(default_factory=dict)

    @property
    def num_rows(self) -> int:
        return self.end - self.start


class _Inner:
    __slots__ = ("predicate_index", "yes", "no")

    def __init__(self, predicate_index: int, yes, no) -> None:
        self.predicate_index = predicate_index
        self.yes = yes
        self.no = no


class QdTree:
    """Query-driven layout for one table.

    Args:
        predicates: the workload's candidate cut predicates.
        min_leaf_rows: stop cutting below this partition size (the
            paper's block granularity: cutting below a block gains
            nothing).
    """

    def __init__(
        self, predicates: Sequence[Predicate], min_leaf_rows: int = 1024
    ) -> None:
        if not predicates:
            raise ValueError("need at least one cut predicate")
        self.predicates = list(predicates)
        self.min_leaf_rows = min_leaf_rows
        self._slice_leaves: List[List[QdLeaf]] = []
        self.built = False

    # -- construction ----------------------------------------------------------

    def build_and_apply(self, table: Table) -> None:
        """Build per-slice trees and physically reorganize the table."""
        permutations: List[Optional[np.ndarray]] = []
        self._slice_leaves = []
        for data_slice in table.slices:
            matrix = self._signature_matrix(table, data_slice)
            permutation, leaves = self._build_slice(matrix)
            permutations.append(permutation)
            self._slice_leaves.append(leaves)
        table.reorganize(lambda _table: permutations)
        self.built = True

    def _signature_matrix(self, table: Table, data_slice) -> np.ndarray:
        num_rows = data_slice.num_rows
        full = RangeList.full(num_rows)
        columns = sorted(
            {c for p in self.predicates for c in p.columns()}
            & set(data_slice.columns)
        )
        batch = {
            name: data_slice.columns[name].read_ranges(full, table.rms)
            for name in columns
        }
        matrix = np.zeros((num_rows, len(self.predicates)), dtype=bool)
        for j, predicate in enumerate(self.predicates):
            try:
                matrix[:, j] = predicate.evaluate(batch)
            except KeyError:
                pass  # predicate on columns this table lacks: never cuts
        return matrix

    def _build_slice(
        self, matrix: np.ndarray
    ) -> Tuple[np.ndarray, List[QdLeaf]]:
        order: List[np.ndarray] = []
        leaves: List[QdLeaf] = []
        cursor = 0

        def recurse(rows: np.ndarray, available: List[int], signature: Dict[int, bool]):
            nonlocal cursor
            cut = self._choose_cut(matrix, rows, available)
            if len(rows) <= self.min_leaf_rows or cut is None:
                leaves.append(
                    QdLeaf(cursor, cursor + len(rows), dict(signature))
                )
                cursor += len(rows)
                order.append(rows)
                return
            satisfied = matrix[rows, cut]
            remaining = [p for p in available if p != cut]
            recurse(rows[satisfied], remaining, {**signature, cut: True})
            recurse(rows[~satisfied], remaining, {**signature, cut: False})

        all_rows = np.arange(matrix.shape[0], dtype=np.int64)
        recurse(all_rows, list(range(len(self.predicates))), {})
        permutation = (
            np.concatenate(order) if order else np.empty(0, dtype=np.int64)
        )
        return permutation, leaves

    def _choose_cut(
        self, matrix: np.ndarray, rows: np.ndarray, available: List[int]
    ) -> Optional[int]:
        """The predicate that cuts this node's rows, or None.

        Greedy choice: the predicate whose smaller side is largest
        (the most balanced useful cut), requiring both sides non-empty.
        """
        best: Optional[int] = None
        best_score = 0
        for p in available:
            true_count = int(matrix[rows, p].sum())
            score = min(true_count, len(rows) - true_count)
            if score > best_score:
                best = p
                best_score = score
        return best

    # -- routing ---------------------------------------------------------------

    def matching_leaves(
        self, required: Dict[int, bool], slice_id: int
    ) -> List[QdLeaf]:
        """Leaves of one slice that may contain rows satisfying all
        ``required`` predicate outcomes (index -> must-be-satisfied)."""
        self._require_built()
        out = []
        for leaf in self._slice_leaves[slice_id]:
            if all(
                leaf.signature.get(p, want) == want
                for p, want in required.items()
            ):
                out.append(leaf)
        return out

    def candidate_ranges(
        self, required: Dict[int, bool], slice_id: int
    ) -> RangeList:
        """Row ranges (in the rewritten layout) a routed scan must read."""
        return RangeList(
            (leaf.start, leaf.end)
            for leaf in self.matching_leaves(required, slice_id)
        )

    def leaves(self, slice_id: int) -> List[QdLeaf]:
        self._require_built()
        return list(self._slice_leaves[slice_id])

    @property
    def num_leaves(self) -> int:
        self._require_built()
        return sum(len(leaves) for leaves in self._slice_leaves)

    def _require_built(self) -> None:
        if not self.built:
            raise RuntimeError("call build_and_apply first")
