"""Predicate sorting: cluster the table by workload predicates (§5.6).

The paper's simplified Qd-tree variant: pick the most common/selective
predicates in the workload and physically reorder the table so rows
that satisfy the same predicate combination are adjacent.  After the
reorganization, zone maps (and block skipping generally) become
effective for those predicates — at the cost of rewriting the table and
(as §5.6 observes) often a *worse* compression ratio, i.e. more blocks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.rowrange import RangeList
from ..predicates.ast import Predicate
from ..storage.table import Table

__all__ = ["PredicateSorter"]


class PredicateSorter:
    """Physically clusters a table by a set of workload predicates.

    Rows are ordered lexicographically by their (not satisfies /
    satisfies) bit per predicate — most significant predicate first —
    so each predicate combination forms one contiguous run per slice.
    """

    def __init__(self, predicates: Sequence[Predicate], max_predicates: int = 8):
        if not predicates:
            raise ValueError("need at least one predicate to sort by")
        self.predicates = list(predicates)[:max_predicates]

    def apply(self, table: Table) -> None:
        """Reorganize the table in place (fires a ``layout`` event)."""
        table.reorganize(self._permutations)

    def _permutations(self, table: Table) -> List[Optional[np.ndarray]]:
        permutations: List[Optional[np.ndarray]] = []
        for data_slice in table.slices:
            num_rows = data_slice.num_rows
            if num_rows == 0:
                permutations.append(None)
                continue
            full = RangeList.full(num_rows)
            needed = sorted(
                {c for p in self.predicates for c in p.columns()}
                & set(data_slice.columns)
            )
            batch = {
                name: data_slice.columns[name].read_ranges(full, table.rms)
                for name in needed
            }
            # Most significant predicate first: np.lexsort sorts by the
            # *last* key primarily, so feed them reversed.  Satisfying
            # rows sort first (descending bit).
            keys = []
            for predicate in reversed(self.predicates):
                try:
                    mask = predicate.evaluate(batch)
                except KeyError:
                    mask = np.zeros(num_rows, dtype=bool)
                keys.append(~mask)
            # Stable tiebreak on original position keeps runs ordered.
            keys.insert(0, np.arange(num_rows))
            permutations.append(np.lexsort(keys))
        return permutations

    def signature_matrix(self, table: Table) -> np.ndarray:
        """Per-row predicate-satisfaction bits (diagnostics and tests)."""
        columns = sorted({c for p in self.predicates for c in p.columns()})
        rows = []
        for data_slice in table.slices:
            num_rows = data_slice.num_rows
            full = RangeList.full(num_rows)
            batch = {
                name: data_slice.columns[name].read_ranges(full, table.rms)
                for name in columns
                if name in data_slice.columns
            }
            bits = np.zeros((num_rows, len(self.predicates)), dtype=bool)
            for j, predicate in enumerate(self.predicates):
                try:
                    bits[:, j] = predicate.evaluate(batch)
                except KeyError:
                    pass
            rows.append(bits)
        return np.concatenate(rows) if rows else np.zeros((0, len(self.predicates)))
