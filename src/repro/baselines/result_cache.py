"""Leader-node result caching (§3.1).

A hit requires the identical statement text *and* unchanged scanned
tables: entries record the ``data_version`` of every referenced table
and are invalidated by any change to any of them — which is exactly why
the fleet-average hit rate is low despite highly repetitive queries
(Fig. 6–7).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

__all__ = ["ResultCache", "ResultCacheStats"]


@dataclass
class ResultCacheStats:
    """Monotonic result-cache counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class _Entry:
    __slots__ = ("versions", "payload")

    def __init__(self, versions: Dict[str, int], payload: object) -> None:
        self.versions = versions
        self.payload = payload


class ResultCache:
    """An LRU cache from statement text to query results.

    The payload is opaque to the cache (the engine stores its column
    batch + column order); :meth:`lookup` checks the recorded table
    versions against the current ones and drops stale entries.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self.stats = ResultCacheStats()
        # Concurrent SELECTs share the leader's result cache; lookup
        # mutates the LRU order and the stats, so both are locked.
        self._lock = threading.Lock()

    def lookup(self, key: str, current_versions: Mapping[str, int]):
        """The cached payload, or None on miss/stale."""
        with self._lock:
            self.stats.lookups += 1
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            for table, version in entry.versions.items():
                if current_versions.get(table) != version:
                    del self._entries[key]
                    self.stats.invalidations += 1
                    self.stats.misses += 1
                    return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.payload

    def store(
        self, key: str, versions: Mapping[str, int], payload: object
    ) -> None:
        with self._lock:
            self._entries[key] = _Entry(dict(versions), payload)
            self._entries.move_to_end(key)
            self.stats.stores += 1
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def invalidate_table(self, table_name: str) -> int:
        """Eagerly drop entries depending on a table (optional path)."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if table_name in entry.versions
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def nbytes(self) -> int:
        """Approximate payload bytes (numpy arrays measured exactly)."""
        total = 0
        for entry in list(self._entries.values()):
            payload = entry.payload
            if isinstance(payload, tuple) and payload and isinstance(payload[0], dict):
                for values in payload[0].values():
                    if isinstance(values, np.ndarray):
                        if values.dtype == object:
                            total += sum(len(str(v)) for v in values)
                        else:
                            total += int(values.nbytes)
            else:
                total += 64  # opaque payload floor
        return total
