"""A B+-tree secondary index.

The paper's Table 3 contrasts classic secondary indexes with caches: a
B+-tree over TPC-H Q6's three filter columns of an 18-billion-row
``lineitem`` would occupy ~540 GB — which is why cloud warehouses do not
build them.  This module implements a real bulk-loadable B+-tree (used
for the memory measurements and as a correctness oracle in tests) plus
the analytic size model used to extrapolate to paper scale.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["BPlusTree", "btree_size_model"]


class _Node:
    """Internal or leaf node."""

    __slots__ = ("keys", "children", "values", "next_leaf")

    def __init__(self) -> None:
        self.keys: List = []
        self.children: Optional[List["_Node"]] = None  # internal only
        self.values: Optional[List[np.ndarray]] = None  # leaf only
        self.next_leaf: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """A bulk-loaded B+-tree mapping keys to row-id arrays.

    Duplicate keys collapse into one leaf entry holding all row ids.
    The tree is read-only after :meth:`bulk_load` (secondary indexes in
    the paper's comparison are build-once structures).
    """

    def __init__(self, order: int = 128) -> None:
        if order < 4:
            raise ValueError("order must be >= 4")
        self.order = order
        self._root: Optional[_Node] = None
        self._first_leaf: Optional[_Node] = None
        self.num_keys = 0
        self.num_entries = 0
        self.height = 0

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, keys: np.ndarray, row_ids: Optional[np.ndarray] = None,
              order: int = 128) -> "BPlusTree":
        """Build from unsorted keys (row ids default to positions)."""
        tree = cls(order=order)
        tree.bulk_load(keys, row_ids)
        return tree

    def bulk_load(
        self, keys: np.ndarray, row_ids: Optional[np.ndarray] = None
    ) -> None:
        keys = np.asarray(keys)
        if row_ids is None:
            row_ids = np.arange(len(keys), dtype=np.int64)
        else:
            row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(keys) != len(row_ids):
            raise ValueError("keys and row_ids must have equal length")
        if len(keys) == 0:
            self._root = _Node()
            self._root.values = []
            self._first_leaf = self._root
            self.height = 1
            return

        order_idx = np.argsort(keys, kind="stable")
        sorted_keys = keys[order_idx]
        sorted_rows = row_ids[order_idx]
        # Group duplicates.
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_keys)]))
        unique_keys = [sorted_keys[s] for s in starts]
        grouped_rows = [sorted_rows[s:e] for s, e in zip(starts, ends)]

        self.num_keys = len(unique_keys)
        self.num_entries = int(len(sorted_keys))

        # Build leaves.
        fanout = self.order
        leaves: List[_Node] = []
        for i in range(0, len(unique_keys), fanout):
            leaf = _Node()
            leaf.keys = list(unique_keys[i : i + fanout])
            leaf.values = list(grouped_rows[i : i + fanout])
            if leaves:
                leaves[-1].next_leaf = leaf
            leaves.append(leaf)
        self._first_leaf = leaves[0]

        # Build internal levels bottom-up.  Separator keys are subtree
        # minima, tracked per node (a node's own keys list can be empty
        # when it has a single child).
        level = leaves
        level_mins = [leaf.keys[0] for leaf in leaves]
        height = 1
        while len(level) > 1:
            parents: List[_Node] = []
            parent_mins = []
            for i in range(0, len(level), fanout):
                node = _Node()
                group = level[i : i + fanout]
                node.children = group
                node.keys = list(level_mins[i + 1 : i + len(group)])
                parents.append(node)
                parent_mins.append(level_mins[i])
            level = parents
            level_mins = parent_mins
            height += 1
        self._root = level[0]
        self.height = height

    # -- queries ---------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key) -> np.ndarray:
        """Row ids of rows whose indexed value equals ``key``."""
        if self._root is None:
            raise RuntimeError("tree not built")
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return np.empty(0, dtype=np.int64)

    def range_search(self, low, high, include_high: bool = True) -> np.ndarray:
        """Row ids with indexed value in ``[low, high]`` (or half-open)."""
        if self._root is None:
            raise RuntimeError("tree not built")
        leaf = self._find_leaf(low)
        idx = bisect.bisect_left(leaf.keys, low)
        out: List[np.ndarray] = []
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if key > high or (key == high and not include_high):
                    return _concat(out)
                out.append(leaf.values[idx])
                idx += 1
            leaf = leaf.next_leaf
            idx = 0
        return _concat(out)

    def items(self) -> Iterator[Tuple[object, np.ndarray]]:
        """All (key, row ids) pairs in key order."""
        leaf = self._first_leaf
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    # -- size ---------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Measured structural size: keys, row ids, child pointers."""
        total = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            total += 8 * len(node.keys)
            if node.is_leaf:
                total += sum(8 * len(v) for v in node.values)
                total += 8  # next-leaf pointer
            else:
                total += 8 * len(node.children)
                stack.extend(node.children)
        return total


def _concat(parts: List[np.ndarray]) -> np.ndarray:
    if not parts:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(parts)


@dataclass(frozen=True)
class _BTreeSizeModel:
    """Analytic size of a B+-tree (Table 3 extrapolation)."""

    num_rows: int
    key_bytes: int = 8
    rowid_bytes: int = 8
    fanout: int = 128
    fill_factor: float = 1.0

    @property
    def total_bytes(self) -> int:
        per_entry = self.key_bytes + self.rowid_bytes
        leaf_bytes = self.num_rows * per_entry / self.fill_factor
        # Internal levels add a geometric ~1/fanout overhead per level.
        internal = leaf_bytes / (self.fanout * self.fill_factor - 1)
        return int(leaf_bytes + internal)


def btree_size_model(
    num_rows: int, num_columns: int = 1, fill_factor: float = 1.0
) -> int:
    """Bytes a B+-tree over ``num_columns`` columns of ``num_rows`` needs.

    With 18 B rows and 3 indexed columns (TPC-H Q6) this lands near the
    paper's ~540 GB figure: one composite entry of 3 keys + row id.
    """
    key_bytes = 8 * num_columns
    return _BTreeSizeModel(
        num_rows, key_bytes=key_bytes, fill_factor=fill_factor
    ).total_bytes
