"""Automated materialized views with predicate elevation (§3.2, Fig. 8).

Redshift detects repeating *query templates* (same statement shape,
different literals), creates a materialized view for the generalized
template, and rewrites matching queries to scan the view.  The key
generalization is **predicate elevation**: filter predicates that
restrict the result are removed from the view and their columns added
to the view's grouping, so one view answers every literal choice.

For TPC-H Q6 the view groups by ``(l_shipdate, l_discount, l_quantity)``
and pre-aggregates the revenue sum; a rewritten Q6 filters those three
columns *on the view* and re-aggregates.

The manager here implements the full loop: template extraction from
statement text, creation after a repetition threshold, rewrite of
matching statements, staleness tracking, and refresh on use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from ..engine.expr import Col, Expr
from ..engine.plan import (
    AggregateNode,
    Aggregation,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from ..predicates.ast import conjunction_of
from ..predicates.lexer import TokenKind, tokenize
from ..sql.ast import SelectStatement
from ..sql.parser import parse_statement
from ..storage.dtypes import DataType
from ..storage.table import ColumnSpec, TableSchema

__all__ = ["AutoMVManager", "MaterializedView", "extract_template"]

_REAGG = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}


def extract_template(sql: str) -> str:
    """Strip literals from a statement: the paper's query template.

    Numbers and strings become ``?``; everything else (including
    keyword case) is normalized.  Two queries share a template iff they
    differ only in literal values.
    """
    parts: List[str] = []
    for token in tokenize(sql):
        if token.kind in (TokenKind.NUMBER, TokenKind.STRING):
            parts.append("?")
        elif token.kind == TokenKind.EOF:
            break
        else:
            parts.append(token.lowered)
    return " ".join(parts)


@dataclass
class _PartialAggregate:
    """How one original aggregate maps onto view columns."""

    func: str  # original function
    alias: str  # original output alias
    sum_column: Optional[str] = None  # view column holding the partial sum
    count_column: Optional[str] = None  # partial count (count / avg)
    minmax_column: Optional[str] = None


@dataclass
class MaterializedView:
    """One automated MV: definition, backing table, freshness."""

    name: str
    template: str
    base_table: str
    group_columns: List[str]
    elevated_columns: List[str]
    partials: List[_PartialAggregate]
    base_version: int = -1
    refreshes: int = 0

    def view_columns(self) -> List[str]:
        columns = list(self.group_columns)
        for partial in self.partials:
            for column in (
                partial.sum_column,
                partial.count_column,
                partial.minmax_column,
            ):
                if column is not None and column not in columns:
                    columns.append(column)
        return columns


class AutoMVManager:
    """Observes statements, creates MVs, rewrites matching queries.

    Args:
        engine: the query engine used to (re)compute view contents.
        create_threshold: how many times a template must repeat before a
            view is created for it.
    """

    def __init__(self, engine, create_threshold: int = 2) -> None:
        self.engine = engine
        self.create_threshold = create_threshold
        self.views: Dict[str, MaterializedView] = {}  # template -> view
        self.template_counts: Dict[str, int] = {}
        self.rewrites = 0
        self.refreshes = 0
        self._next_id = 0

    # -- the observe/rewrite loop -----------------------------------------------

    def process(self, sql: str) -> Optional[PlanNode]:
        """Observe a statement; return a rewritten plan if an MV matches.

        Call this before executing a SELECT.  Returns None when no view
        applies (execute the original statement).  Non-SELECTs and
        ineligible queries are observed but never rewritten.
        """
        try:
            statement = parse_statement(sql)
        except ValueError:
            # SQLParseError and LexError both derive from ValueError;
            # anything else (a genuine bug) should surface, not be
            # silently treated as "statement not eligible".
            return None
        if not isinstance(statement, SelectStatement):
            return None
        template = extract_template(sql)
        self.template_counts[template] = self.template_counts.get(template, 0) + 1

        view = self.views.get(template)
        if view is None:
            if (
                self.template_counts[template] >= self.create_threshold
                and self._eligible(statement)
            ):
                view = self._create_view(template, statement)
            else:
                return None
        self._refresh_if_stale(view)
        self.rewrites += 1
        return self._rewrite(view, statement)

    # -- eligibility ---------------------------------------------------------------

    def _eligible(self, statement: SelectStatement) -> bool:
        if len(statement.tables) != 1 or statement.joins:
            return False
        if not statement.has_aggregates:
            return False
        for item in statement.items:
            if item.is_aggregate:
                if item.func not in ("sum", "count", "avg", "min", "max"):
                    return False
                # Re-aggregating partial MIN/MAX is fine; partial
                # count_distinct is not decomposable.
                if item.distinct:
                    return False
            elif not isinstance(item.expr, Col):
                return False
        table = self.engine.database.table(statement.tables[0])
        known = set(table.schema.column_names)
        for predicate in statement.filters:
            if not predicate.columns() <= known:
                return False
        return set(statement.group_by) <= known

    # -- creation ------------------------------------------------------------------

    def _create_view(
        self, template: str, statement: SelectStatement
    ) -> MaterializedView:
        base_name = statement.tables[0]
        base = self.engine.database.table(base_name)
        filter_columns = sorted(
            {c for predicate in statement.filters for c in predicate.columns()}
        )
        elevated = [c for c in filter_columns if c not in statement.group_by]
        group_columns = list(statement.group_by) + elevated

        partials: List[_PartialAggregate] = []
        for i, item in enumerate(statement.items):
            if not item.is_aggregate:
                continue
            partial = _PartialAggregate(func=item.func, alias=item.alias)
            if item.func in ("sum", "avg"):
                partial.sum_column = f"agg{i}_sum"
            if item.func in ("count", "avg"):
                partial.count_column = f"agg{i}_cnt"
            if item.func in ("min", "max"):
                partial.minmax_column = f"agg{i}_{item.func}"
            partials.append(partial)

        self._next_id += 1
        view = MaterializedView(
            name=f"mv_{base_name}_{self._next_id}",
            template=template,
            base_table=base_name,
            group_columns=group_columns,
            elevated_columns=elevated,
            partials=partials,
        )
        # Create the backing table: group columns keep their base dtype,
        # partial aggregates are stored as FLOAT64 (counts as INT64).
        specs = [
            ColumnSpec(c, base.schema.dtype_of(c)) for c in group_columns
        ]
        for partial, item in zip(partials, [i for i in statement.items if i.is_aggregate]):
            if partial.sum_column:
                specs.append(ColumnSpec(partial.sum_column, DataType.FLOAT64))
            if partial.count_column:
                specs.append(ColumnSpec(partial.count_column, DataType.INT64))
            if partial.minmax_column:
                specs.append(ColumnSpec(partial.minmax_column, DataType.FLOAT64))
        self.engine.database.create_table(TableSchema(view.name, tuple(specs)))
        self.views[template] = view
        self._representatives[view.name] = statement
        self._materialize(view, statement)
        return view

    def _materialize(
        self, view: MaterializedView, statement: SelectStatement
    ) -> None:
        """(Re)compute the view contents from the base table."""
        base = self.engine.database.table(view.base_table)
        aggregate_items = [i for i in statement.items if i.is_aggregate]
        aggregations: List[Aggregation] = []
        for partial, item in zip(view.partials, aggregate_items):
            if partial.sum_column:
                aggregations.append(Aggregation("sum", item.expr, partial.sum_column))
            if partial.count_column:
                expr = item.expr if item.expr is not None else None
                aggregations.append(Aggregation("count", expr, partial.count_column))
            if partial.minmax_column:
                aggregations.append(
                    Aggregation(partial.func, item.expr, partial.minmax_column)
                )
        plan = AggregateNode(
            ScanNode(view.base_table), list(view.group_columns), aggregations
        )
        result = self.engine.execute_plan(plan)
        mv_table = self.engine.database.table(view.name)
        if mv_table.num_rows:
            # Full refresh: drop and reload (delta refresh is modeled as
            # the same cost envelope — see DESIGN.md).
            self.engine.delete_where(view.name, conjunction_of([]))
            self.engine.vacuum([view.name])
        rows = {name: result.columns[name] for name in mv_table.schema.column_names}
        self.engine.insert(view.name, rows)
        view.base_version = base.data_version
        view.refreshes += 1

    def _refresh_if_stale(self, view: MaterializedView) -> None:
        base = self.engine.database.table(view.base_table)
        if base.data_version != view.base_version:
            statement = self._statement_for(view)
            self._materialize(view, statement)
            self.refreshes += 1

    def _statement_for(self, view: MaterializedView) -> SelectStatement:
        # The original statement shape is recoverable from the stored
        # partials; we keep one representative per view.
        return self._representatives[view.name]

    # -- rewrite ------------------------------------------------------------------

    def _rewrite(
        self, view: MaterializedView, statement: SelectStatement
    ) -> PlanNode:
        """Plan the statement against the view instead of the base table."""
        predicate = conjunction_of(statement.filters)
        scan = ScanNode(view.name, predicate)
        aggregations: List[Aggregation] = []
        projections: List[Tuple[str, Expr]] = []
        aggregate_partials = iter(view.partials)
        for item in statement.items:
            if not item.is_aggregate:
                projections.append((item.alias, Col(item.expr.name)))
                continue
            partial = next(aggregate_partials)
            if item.func in ("sum", "count"):
                source = partial.sum_column or partial.count_column
                aggregations.append(Aggregation("sum", Col(source), item.alias))
                projections.append((item.alias, Col(item.alias)))
            elif item.func == "avg":
                aggregations.append(
                    Aggregation("sum", Col(partial.sum_column), f"__{item.alias}_s")
                )
                aggregations.append(
                    Aggregation("sum", Col(partial.count_column), f"__{item.alias}_c")
                )
                projections.append(
                    (item.alias, Col(f"__{item.alias}_s") / Col(f"__{item.alias}_c"))
                )
            else:  # min / max re-aggregate with the same function
                aggregations.append(
                    Aggregation(item.func, Col(partial.minmax_column), item.alias)
                )
                projections.append((item.alias, Col(item.alias)))
        plan: PlanNode = AggregateNode(scan, list(statement.group_by), aggregations)
        for column in statement.group_by:
            projections.insert(0, (column, Col(column)))
        # Keep select-list order.
        ordered = [
            (item.alias, dict(projections)[item.alias]) for item in statement.items
        ]
        plan = ProjectNode(plan, ordered)
        from ..engine.plan import LimitNode, SortNode

        if statement.order_by:
            plan = SortNode(plan, list(statement.order_by))
        if statement.limit is not None:
            plan = LimitNode(plan, statement.limit)
        return plan

    # -- bookkeeping ----------------------------------------------------------------

    @property
    def _representatives(self) -> Dict[str, SelectStatement]:
        if not hasattr(self, "_reps"):
            self._reps: Dict[str, SelectStatement] = {}
        return self._reps

    def remember_representative(
        self, view: MaterializedView, statement: SelectStatement
    ) -> None:
        self._representatives[view.name] = statement

    def view_nbytes(self, view: MaterializedView) -> int:
        """Semantic view size: rows x columns x 8 bytes (Table 3)."""
        table = self.engine.database.table(view.name)
        return table.num_rows * len(table.schema.column_names) * 8
