"""A Parquet-shaped columnar file format.

A :class:`LakeFile` is immutable once written (like a Parquet file on
object storage): a list of :class:`RowGroup` footers, each holding one
compressed :class:`ColumnChunk` per column with min/max statistics.
Readers prune row groups on the statistics, then decompress only the
chunks they touch — the access pattern the predicate cache exploits
when it remembers *which row groups qualified*.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..predicates.ast import Bounds
from ..storage.compression import EncodedBlock, choose_codec, decode_block

__all__ = ["ColumnChunk", "RowGroup", "LakeFile", "write_file"]

_file_counter = itertools.count(1)


@dataclass(frozen=True)
class ColumnChunk:
    """One column's data within a row group."""

    column: str
    encoded: EncodedBlock
    minimum: Optional[object]
    maximum: Optional[object]

    @property
    def num_values(self) -> int:
        return self.encoded.num_values

    @property
    def nbytes(self) -> int:
        return self.encoded.nbytes

    def read(self) -> np.ndarray:
        return decode_block(self.encoded)

    def may_contain(self, bounds: Bounds) -> bool:
        """Statistics check, mirroring Parquet row-group pruning."""
        if self.minimum is None or self.maximum is None:
            return True
        try:
            if bounds.hi is not None:
                if self.minimum > bounds.hi:
                    return False
                if bounds.hi_strict and self.minimum >= bounds.hi:
                    return False
            if bounds.lo is not None:
                if self.maximum < bounds.lo:
                    return False
                if bounds.lo_strict and self.maximum <= bounds.lo:
                    return False
        except TypeError:
            return True
        return True


@dataclass(frozen=True)
class RowGroup:
    """A horizontal slice of a file: one chunk per column."""

    index: int
    num_rows: int
    chunks: Dict[str, ColumnChunk]

    def read_columns(self, columns: Sequence[str]) -> Dict[str, np.ndarray]:
        out = {}
        for name in columns:
            try:
                out[name] = self.chunks[name].read()
            except KeyError:
                raise KeyError(
                    f"row group has no column {name!r} "
                    f"(have {sorted(self.chunks)})"
                ) from None
        return out

    @property
    def nbytes(self) -> int:
        return sum(chunk.nbytes for chunk in self.chunks.values())


@dataclass(frozen=True)
class LakeFile:
    """An immutable data file: metadata plus row groups."""

    file_id: str
    row_groups: Tuple[RowGroup, ...]

    @property
    def num_rows(self) -> int:
        return sum(g.num_rows for g in self.row_groups)

    @property
    def num_row_groups(self) -> int:
        return len(self.row_groups)

    @property
    def columns(self) -> List[str]:
        if not self.row_groups:
            return []
        return sorted(self.row_groups[0].chunks)

    @property
    def nbytes(self) -> int:
        return sum(g.nbytes for g in self.row_groups)


def write_file(
    data: Mapping[str, Sequence[object]],
    rows_per_group: int = 1000,
    file_id: Optional[str] = None,
) -> LakeFile:
    """Write column data into an immutable lake file.

    Mirrors a Parquet writer: rows are split into fixed-size row
    groups, every column chunk is compressed with the best codec and
    annotated with min/max statistics.
    """
    if rows_per_group < 1:
        raise ValueError("rows_per_group must be >= 1")
    arrays: Dict[str, np.ndarray] = {}
    lengths = set()
    for name, values in data.items():
        array = np.asarray(values)
        if array.dtype.kind in ("U", "S"):
            array = array.astype(object)
        arrays[name] = array
        lengths.add(len(array))
    if len(lengths) > 1:
        raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
    num_rows = lengths.pop() if lengths else 0

    groups: List[RowGroup] = []
    for index, start in enumerate(range(0, num_rows, rows_per_group)):
        end = min(start + rows_per_group, num_rows)
        chunks: Dict[str, ColumnChunk] = {}
        for name, array in arrays.items():
            piece = array[start:end]
            minimum = maximum = None
            if len(piece):
                try:
                    minimum, maximum = piece.min(), piece.max()
                except TypeError:
                    pass
                if isinstance(minimum, np.generic):
                    minimum = minimum.item()
                if isinstance(maximum, np.generic):
                    maximum = maximum.item()
            chunks[name] = ColumnChunk(
                column=name,
                encoded=choose_codec(piece),
                minimum=minimum,
                maximum=maximum,
            )
        groups.append(RowGroup(index=index, num_rows=end - start, chunks=chunks))

    identifier = file_id if file_id is not None else f"file-{next(_file_counter):06d}"
    return LakeFile(file_id=identifier, row_groups=tuple(groups))
