"""Scanning lake tables with a row-group predicate cache (§4.5).

The cache maps a canonical predicate key to, *per file*, a bitmap of
the row groups that contained qualifying rows.  The paper's three
requirements hold by construction:

(a) rows are uniquely addressed by (file id, row group, offset),
(b) addresses never change while a file lives (files are immutable),
(c) commits are detectable — the scanner subscribes to them and drops
    exactly the state of removed files; entries otherwise stay live.

Appended files are simply absent from an entry's per-file map: the next
scan reads them in full (with statistics pruning), then folds their
bitmap in — the lake equivalent of the insert-buffer extension (§4.3.1).

Resilience (the fault-injection layer): with a
:class:`~repro.faults.FaultInjector` attached, every chunk fetch is
checksum-verified and retried under the scanner's
:class:`~repro.faults.RetryPolicy`.  If a cached-bits-guided scan of a
file still fails, the file's cached state is dropped (the invalidation
counter fires) and the file is transparently rescanned in full; a
per-file :class:`~repro.faults.CircuitBreaker` trips after consecutive
degradations and routes around the cache until a cool-down expires.
Without an injector, the scan path is byte-for-byte the fault-free one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import (
    CircuitBreaker,
    FaultInjector,
    RetryPolicy,
    StorageFault,
    TransientStorageError,
)
from ..predicates.ast import Predicate
from ..storage.compression import array_checksum
from .format import ColumnChunk, LakeFile, RowGroup
from .table import LakeSnapshot, LakeTable

__all__ = ["LakeScanner", "LakeScanStats"]


@dataclass
class LakeScanStats:
    """Counters of one lake scan."""

    files_visited: int = 0
    row_groups_total: int = 0
    row_groups_read: int = 0
    row_groups_skipped_cache: int = 0
    row_groups_skipped_stats: int = 0
    rows_scanned: int = 0
    rows_qualifying: int = 0
    chunk_bytes_read: int = 0
    cache_hit: bool = False
    # Resilience counters (zero unless fault injection is armed).
    transient_errors: int = 0
    corrupt_chunks: int = 0
    retries: int = 0
    degraded_files: int = 0
    files_short_circuited: int = 0
    backoff_model_seconds: float = 0.0


class _LakeEntry:
    """Per-predicate cached state: file id -> qualifying-group bitmap."""

    __slots__ = ("group_bits",)

    def __init__(self) -> None:
        self.group_bits: Dict[str, np.ndarray] = {}

    @property
    def nbytes(self) -> int:
        return sum((len(bits) + 7) // 8 for bits in self.group_bits.values())


class LakeScanner:
    """Scans one lake table, caching qualifying row groups per predicate."""

    def __init__(
        self,
        table: LakeTable,
        fault_injector: Optional[FaultInjector] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.table = table
        self._entries: Dict[str, _LakeEntry] = {}
        self.lookups = 0
        self.hits = 0
        self.invalidated_files = 0
        # Resilience wiring: all optional, all zero-cost when unarmed.
        self._injector = fault_injector
        self._armed = fault_injector is not None and fault_injector.can_fault
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.transient_errors = 0
        self.corrupt_chunks = 0
        self.retries = 0
        self.retry_giveups = 0
        self.degraded_scans = 0
        self.short_circuited_files = 0
        self.backoff_model_seconds = 0.0
        table.on_commit(self._on_commit)

    def attach_faults(
        self,
        injector: Optional[FaultInjector],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Arm (or, with None, disarm) fault injection on chunk reads."""
        self._injector = injector
        self._armed = injector is not None and injector.can_fault
        if retry_policy is not None:
            self.retry_policy = retry_policy

    # -- invalidation ---------------------------------------------------------

    def _on_commit(self, table: LakeTable, kind: str, removed: Tuple[str, ...]):
        """Appends keep every entry; removals drop only the dead files."""
        if not removed:
            return
        for entry in self._entries.values():
            for file_id in removed:
                if entry.group_bits.pop(file_id, None) is not None:
                    self.invalidated_files += 1
        for file_id in removed:
            self.breaker.forget(file_id)

    # -- scanning ----------------------------------------------------------------

    def scan(
        self,
        predicate: Predicate,
        columns: Sequence[str],
        snapshot: Optional[LakeSnapshot] = None,
    ) -> Tuple[Dict[str, np.ndarray], LakeScanStats]:
        """All rows of the (current) snapshot satisfying ``predicate``.

        Returns the requested columns of qualifying rows plus the scan
        counters.  The cache is only consulted and updated for scans of
        the *current* snapshot (time-travel reads bypass it: historic
        snapshots may predate cached state).
        """
        stats = LakeScanStats()
        current = snapshot is None or snapshot == self.table.current_snapshot
        key = predicate.cache_key()

        entry: Optional[_LakeEntry] = None
        if current:
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                stats.cache_hit = True
                self.hits += 1
            else:
                entry = _LakeEntry()
                self._entries[key] = entry

        predicate_columns = sorted(predicate.columns())
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in columns}
        for file in self.table.files(snapshot):
            self._scan_file(
                file, predicate, predicate_columns, columns, entry, pieces, stats
            )

        out: Dict[str, np.ndarray] = {}
        for name in columns:
            parts = pieces[name]
            if not parts:
                out[name] = np.empty(0)
            elif parts[0].dtype == object:
                out[name] = np.concatenate([np.asarray(p, dtype=object) for p in parts])
            else:
                out[name] = np.concatenate(parts)
        return out, stats

    def _scan_file(
        self,
        file: LakeFile,
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        entry: Optional[_LakeEntry],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> None:
        stats.files_visited += 1
        stats.row_groups_total += file.num_row_groups
        if not self._armed:
            cached_bits = entry.group_bits.get(file.file_id) if entry else None
            self._scan_file_groups(
                file, cached_bits, predicate, predicate_columns, columns,
                entry, pieces, stats,
            )
            return
        self._scan_file_resilient(
            file, predicate, predicate_columns, columns, entry, pieces, stats
        )

    def _scan_file_resilient(
        self,
        file: LakeFile,
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        entry: Optional[_LakeEntry],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> None:
        """One file's scan under fault injection (degradation ladder).

        Rung 1 is the normal cached-bits-guided scan; if it fails even
        after per-chunk retries, rung 2 drops the file's cached state
        and rescans the file in full.  A full scan that fails is rung
        3: the fault propagates (retry budget exhausted).  The per-file
        circuit breaker counts consecutive degradations and, once open,
        routes around the cache entirely for a cool-down.
        """
        cached_bits = entry.group_bits.get(file.file_id) if entry else None
        use_cache = cached_bits is not None
        if use_cache and not self.breaker.allow(file.file_id):
            stats.files_short_circuited += 1
            self.short_circuited_files += 1
            cached_bits = None
            use_cache = False
            entry = None  # route around the cache: no reads, no writes

        marks = {name: len(parts) for name, parts in pieces.items()}
        shape = _scan_shape_snapshot(stats)
        try:
            self._scan_file_groups(
                file, cached_bits, predicate, predicate_columns, columns,
                entry, pieces, stats,
            )
        except StorageFault:
            if not use_cache:
                raise
            # Rung 2: drop the suspect cached state (invalidation
            # counters fire), roll back this file's partial output, and
            # rescan the file in full.
            self.breaker.record_failure(file.file_id)
            if entry is not None and entry.group_bits.pop(file.file_id, None) is not None:
                self.invalidated_files += 1
            stats.degraded_files += 1
            self.degraded_scans += 1
            for name, mark in marks.items():
                del pieces[name][mark:]
            _scan_shape_restore(stats, shape)
            self._scan_file_groups(
                file, None, predicate, predicate_columns, columns,
                entry, pieces, stats,
            )
        else:
            if use_cache:
                self.breaker.record_success(file.file_id)

    def _scan_file_groups(
        self,
        file: LakeFile,
        cached_bits: Optional[np.ndarray],
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        entry: Optional[_LakeEntry],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> None:
        new_bits = np.zeros(file.num_row_groups, dtype=bool)

        if cached_bits is None:
            candidates = file.row_groups
        else:
            # Cache hit: jump straight to the qualifying groups instead
            # of testing every group's bit in Python.
            live = np.flatnonzero(cached_bits)
            stats.row_groups_skipped_cache += file.num_row_groups - len(live)
            candidates = [file.row_groups[i] for i in live]

        for group in candidates:
            if self._stats_prune(group, predicate, predicate_columns):
                stats.row_groups_skipped_stats += 1
                continue
            qualifying = self._scan_group(
                group, predicate, predicate_columns, columns, pieces, stats
            )
            new_bits[group.index] = qualifying

        if entry is not None:
            entry.group_bits[file.file_id] = new_bits

    def _stats_prune(
        self, group: RowGroup, predicate: Predicate, predicate_columns: List[str]
    ) -> bool:
        for name in predicate_columns:
            bounds = predicate.bounds(name)
            if bounds is None or bounds.unbounded:
                continue
            chunk = group.chunks.get(name)
            if chunk is not None and not chunk.may_contain(bounds):
                return True
        return False

    def _scan_group(
        self,
        group: RowGroup,
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> bool:
        stats.row_groups_read += 1
        stats.rows_scanned += group.num_rows
        batch = self._read_columns(group, predicate_columns, stats)
        stats.chunk_bytes_read += sum(
            group.chunks[name].nbytes for name in predicate_columns
        )
        mask = predicate.evaluate(batch) if predicate_columns else np.ones(
            group.num_rows, dtype=bool
        )
        count = int(np.count_nonzero(mask))
        stats.rows_qualifying += count
        if count == 0:
            return False
        payload = self._read_columns(group, list(columns), stats)
        stats.chunk_bytes_read += sum(
            group.chunks[name].nbytes for name in columns if name not in predicate_columns
        )
        for name in columns:
            pieces[name].append(payload[name][mask])
        return True

    # -- resilient chunk reads -------------------------------------------------

    def _read_columns(
        self, group: RowGroup, names: Sequence[str], stats: LakeScanStats
    ) -> Dict[str, np.ndarray]:
        if not self._armed:
            return group.read_columns(names)
        return {name: self._read_chunk(group.chunks[name], stats) for name in names}

    def _read_chunk(self, chunk: ColumnChunk, stats: LakeScanStats) -> np.ndarray:
        """One chunk fetch under injection: verify, retry, give up.

        Corrupted payloads are caught by the chunk's block checksum and
        retried like transient errors; a query never sees them.
        """
        injector = self._injector
        policy = self.retry_policy
        attempt = 0
        while True:
            decision = injector.draw()
            if decision.latency_seconds:
                stats.backoff_model_seconds += decision.latency_seconds
                self.backoff_model_seconds += decision.latency_seconds
            if decision.fail:
                stats.transient_errors += 1
                self.transient_errors += 1
            else:
                values = chunk.read()
                if decision.corrupt:
                    values = injector.corrupt_array(values)
                checksum = chunk.encoded.checksum
                if checksum is None or array_checksum(values) == checksum:
                    return values
                stats.corrupt_chunks += 1
                self.corrupt_chunks += 1
            attempt += 1
            if attempt >= policy.max_attempts:
                self.retry_giveups += 1
                raise TransientStorageError(
                    f"chunk {chunk.column!r} unreadable after {attempt} attempts"
                )
            stats.retries += 1
            self.retries += 1
            backoff = policy.backoff_seconds(attempt - 1, injector.uniform())
            stats.backoff_model_seconds += backoff
            self.backoff_model_seconds += backoff

    # -- observability --------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_lake_cache") -> None:
        """Expose this scanner's cache on a metrics registry.

        Series are labelled with the lake table's name so several
        scanners share one metric family; all reads are scrape-time
        callbacks over counters the scanner keeps anyway.
        """
        labels = {"table": self.table.name}
        registry.counter(
            f"{prefix}_lookups_total", "Lake predicate-cache lookups",
            labels=labels, fn=lambda: self.lookups,
        )
        registry.counter(
            f"{prefix}_hits_total", "Lake predicate-cache hits",
            labels=labels, fn=lambda: self.hits,
        )
        registry.counter(
            f"{prefix}_invalidated_files_total",
            "Per-file cache states dropped by commits removing files",
            labels=labels, fn=lambda: self.invalidated_files,
        )
        registry.gauge(
            f"{prefix}_entries", "Live per-predicate lake cache entries",
            labels=labels, fn=lambda: self.num_entries,
        )
        registry.gauge(
            f"{prefix}_nbytes", "Lake cache payload bytes (group bitmaps)",
            labels=labels, fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_hit_rate", "Hits over lookups",
            labels=labels, fn=lambda: self.hit_rate,
        )
        registry.counter(
            f"{prefix}_transient_errors_total",
            "Injected transient chunk-fetch errors encountered",
            labels=labels, fn=lambda: self.transient_errors,
        )
        registry.counter(
            f"{prefix}_corrupt_chunks_total",
            "Fetched chunks that failed checksum verification",
            labels=labels, fn=lambda: self.corrupt_chunks,
        )
        registry.counter(
            f"{prefix}_retries_total",
            "Chunk fetches re-attempted after a fault",
            labels=labels, fn=lambda: self.retries,
        )
        registry.counter(
            f"{prefix}_degraded_scans_total",
            "File scans that fell back from cached bits to a full scan",
            labels=labels, fn=lambda: self.degraded_scans,
        )
        registry.counter(
            f"{prefix}_short_circuited_files_total",
            "File scans routed around the cache by an open circuit",
            labels=labels, fn=lambda: self.short_circuited_files,
        )

    # -- introspection --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def total_nbytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


_SHAPE_FIELDS = (
    "row_groups_read",
    "row_groups_skipped_cache",
    "row_groups_skipped_stats",
    "rows_scanned",
    "rows_qualifying",
    "chunk_bytes_read",
)


def _scan_shape_snapshot(stats: LakeScanStats) -> Tuple[int, ...]:
    return tuple(getattr(stats, name) for name in _SHAPE_FIELDS)


def _scan_shape_restore(stats: LakeScanStats, shape: Tuple[int, ...]) -> None:
    """Roll back the scan-shape counters of an abandoned file attempt.

    Resilience counters (retries, faults, backoff) are deliberately
    *not* rolled back — the work happened and must stay visible.
    """
    for name, value in zip(_SHAPE_FIELDS, shape):
        setattr(stats, name, value)
