"""Scanning lake tables with a row-group predicate cache (§4.5).

The cache maps a canonical predicate key to, *per file*, a bitmap of
the row groups that contained qualifying rows.  The paper's three
requirements hold by construction:

(a) rows are uniquely addressed by (file id, row group, offset),
(b) addresses never change while a file lives (files are immutable),
(c) commits are detectable — the scanner subscribes to them and drops
    exactly the state of removed files; entries otherwise stay live.

Appended files are simply absent from an entry's per-file map: the next
scan reads them in full (with statistics pruning), then folds their
bitmap in — the lake equivalent of the insert-buffer extension (§4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..predicates.ast import Predicate
from .format import LakeFile, RowGroup
from .table import LakeSnapshot, LakeTable

__all__ = ["LakeScanner", "LakeScanStats"]


@dataclass
class LakeScanStats:
    """Counters of one lake scan."""

    files_visited: int = 0
    row_groups_total: int = 0
    row_groups_read: int = 0
    row_groups_skipped_cache: int = 0
    row_groups_skipped_stats: int = 0
    rows_scanned: int = 0
    rows_qualifying: int = 0
    chunk_bytes_read: int = 0
    cache_hit: bool = False


class _LakeEntry:
    """Per-predicate cached state: file id -> qualifying-group bitmap."""

    __slots__ = ("group_bits",)

    def __init__(self) -> None:
        self.group_bits: Dict[str, np.ndarray] = {}

    @property
    def nbytes(self) -> int:
        return sum((len(bits) + 7) // 8 for bits in self.group_bits.values())


class LakeScanner:
    """Scans one lake table, caching qualifying row groups per predicate."""

    def __init__(self, table: LakeTable) -> None:
        self.table = table
        self._entries: Dict[str, _LakeEntry] = {}
        self.lookups = 0
        self.hits = 0
        self.invalidated_files = 0
        table.on_commit(self._on_commit)

    # -- invalidation ---------------------------------------------------------

    def _on_commit(self, table: LakeTable, kind: str, removed: Tuple[str, ...]):
        """Appends keep every entry; removals drop only the dead files."""
        if not removed:
            return
        for entry in self._entries.values():
            for file_id in removed:
                if entry.group_bits.pop(file_id, None) is not None:
                    self.invalidated_files += 1

    # -- scanning ----------------------------------------------------------------

    def scan(
        self,
        predicate: Predicate,
        columns: Sequence[str],
        snapshot: Optional[LakeSnapshot] = None,
    ) -> Tuple[Dict[str, np.ndarray], LakeScanStats]:
        """All rows of the (current) snapshot satisfying ``predicate``.

        Returns the requested columns of qualifying rows plus the scan
        counters.  The cache is only consulted and updated for scans of
        the *current* snapshot (time-travel reads bypass it: historic
        snapshots may predate cached state).
        """
        stats = LakeScanStats()
        current = snapshot is None or snapshot == self.table.current_snapshot
        key = predicate.cache_key()

        entry: Optional[_LakeEntry] = None
        if current:
            self.lookups += 1
            entry = self._entries.get(key)
            if entry is not None:
                stats.cache_hit = True
                self.hits += 1
            else:
                entry = _LakeEntry()
                self._entries[key] = entry

        predicate_columns = sorted(predicate.columns())
        pieces: Dict[str, List[np.ndarray]] = {name: [] for name in columns}
        for file in self.table.files(snapshot):
            self._scan_file(
                file, predicate, predicate_columns, columns, entry, pieces, stats
            )

        out: Dict[str, np.ndarray] = {}
        for name in columns:
            parts = pieces[name]
            if not parts:
                out[name] = np.empty(0)
            elif parts[0].dtype == object:
                out[name] = np.concatenate([np.asarray(p, dtype=object) for p in parts])
            else:
                out[name] = np.concatenate(parts)
        return out, stats

    def _scan_file(
        self,
        file: LakeFile,
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        entry: Optional[_LakeEntry],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> None:
        stats.files_visited += 1
        stats.row_groups_total += file.num_row_groups
        cached_bits = entry.group_bits.get(file.file_id) if entry else None
        new_bits = np.zeros(file.num_row_groups, dtype=bool)

        if cached_bits is None:
            candidates = file.row_groups
        else:
            # Cache hit: jump straight to the qualifying groups instead
            # of testing every group's bit in Python.
            live = np.flatnonzero(cached_bits)
            stats.row_groups_skipped_cache += file.num_row_groups - len(live)
            candidates = [file.row_groups[i] for i in live]

        for group in candidates:
            if self._stats_prune(group, predicate, predicate_columns):
                stats.row_groups_skipped_stats += 1
                continue
            qualifying = self._scan_group(
                group, predicate, predicate_columns, columns, pieces, stats
            )
            new_bits[group.index] = qualifying

        if entry is not None:
            entry.group_bits[file.file_id] = new_bits

    def _stats_prune(
        self, group: RowGroup, predicate: Predicate, predicate_columns: List[str]
    ) -> bool:
        for name in predicate_columns:
            bounds = predicate.bounds(name)
            if bounds is None or bounds.unbounded:
                continue
            chunk = group.chunks.get(name)
            if chunk is not None and not chunk.may_contain(bounds):
                return True
        return False

    def _scan_group(
        self,
        group: RowGroup,
        predicate: Predicate,
        predicate_columns: List[str],
        columns: Sequence[str],
        pieces: Dict[str, List[np.ndarray]],
        stats: LakeScanStats,
    ) -> bool:
        stats.row_groups_read += 1
        stats.rows_scanned += group.num_rows
        batch = group.read_columns(predicate_columns)
        stats.chunk_bytes_read += sum(
            group.chunks[name].nbytes for name in predicate_columns
        )
        mask = predicate.evaluate(batch) if predicate_columns else np.ones(
            group.num_rows, dtype=bool
        )
        count = int(np.count_nonzero(mask))
        stats.rows_qualifying += count
        if count == 0:
            return False
        payload = group.read_columns([c for c in columns])
        stats.chunk_bytes_read += sum(
            group.chunks[name].nbytes for name in columns if name not in predicate_columns
        )
        for name in columns:
            pieces[name].append(payload[name][mask])
        return True

    # -- observability --------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_lake_cache") -> None:
        """Expose this scanner's cache on a metrics registry.

        Series are labelled with the lake table's name so several
        scanners share one metric family; all reads are scrape-time
        callbacks over counters the scanner keeps anyway.
        """
        labels = {"table": self.table.name}
        registry.counter(
            f"{prefix}_lookups_total", "Lake predicate-cache lookups",
            labels=labels, fn=lambda: self.lookups,
        )
        registry.counter(
            f"{prefix}_hits_total", "Lake predicate-cache hits",
            labels=labels, fn=lambda: self.hits,
        )
        registry.counter(
            f"{prefix}_invalidated_files_total",
            "Per-file cache states dropped by commits removing files",
            labels=labels, fn=lambda: self.invalidated_files,
        )
        registry.gauge(
            f"{prefix}_entries", "Live per-predicate lake cache entries",
            labels=labels, fn=lambda: self.num_entries,
        )
        registry.gauge(
            f"{prefix}_nbytes", "Lake cache payload bytes (group bitmaps)",
            labels=labels, fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_hit_rate", "Hits over lookups",
            labels=labels, fn=lambda: self.hit_rate,
        )

    # -- introspection --------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    @property
    def total_nbytes(self) -> int:
        return sum(entry.nbytes for entry in self._entries.values())

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups
