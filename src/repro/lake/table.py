"""An Iceberg-shaped lake table: snapshots of immutable files.

Both Iceberg and Delta Lake evolve tables by *adding or deleting whole
data files*; each commit produces a new snapshot.  That property is
exactly what the paper needs for predicate caching over lakes (§4.5):
rows are addressed by (file id, row group, offset), addresses never
change while the file lives, and changes are detectable as file-set
diffs between snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .format import LakeFile, write_file

__all__ = ["LakeSnapshot", "LakeTable"]


@dataclass(frozen=True)
class LakeSnapshot:
    """One committed version of the table: an immutable file set."""

    snapshot_id: int
    file_ids: Tuple[str, ...]

    def __contains__(self, file_id: str) -> bool:
        return file_id in self.file_ids


class LakeTable:
    """A lake table evolving through append/delete-file commits."""

    def __init__(self, name: str, rows_per_group: int = 1000) -> None:
        self.name = name
        self.rows_per_group = rows_per_group
        self._files: Dict[str, LakeFile] = {}
        self._snapshots: List[LakeSnapshot] = [LakeSnapshot(0, ())]
        self._listeners: List = []

    # -- commits -----------------------------------------------------------------

    def append_file(self, data: Mapping[str, Sequence[object]]) -> LakeFile:
        """Commit a new data file (another engine's ingestion)."""
        file = write_file(data, rows_per_group=self.rows_per_group)
        self._files[file.file_id] = file
        self._commit(self.current_snapshot.file_ids + (file.file_id,), "append")
        return file

    def delete_file(self, file_id: str) -> None:
        """Commit a file removal (compaction, GDPR delete, ...)."""
        if file_id not in self.current_snapshot:
            raise KeyError(f"file {file_id!r} not in the current snapshot")
        remaining = tuple(
            f for f in self.current_snapshot.file_ids if f != file_id
        )
        self._commit(remaining, "delete", removed=(file_id,))

    def replace_files(
        self,
        removed: Sequence[str],
        data: Mapping[str, Sequence[object]],
    ) -> LakeFile:
        """Compaction: one new file replaces several old ones."""
        for file_id in removed:
            if file_id not in self.current_snapshot:
                raise KeyError(f"file {file_id!r} not in the current snapshot")
        file = write_file(data, rows_per_group=self.rows_per_group)
        self._files[file.file_id] = file
        kept = tuple(
            f for f in self.current_snapshot.file_ids if f not in set(removed)
        )
        self._commit(kept + (file.file_id,), "replace", removed=tuple(removed))
        return file

    def _commit(
        self, file_ids: Tuple[str, ...], kind: str, removed: Tuple[str, ...] = ()
    ) -> None:
        snapshot = LakeSnapshot(len(self._snapshots), file_ids)
        self._snapshots.append(snapshot)
        for listener in self._listeners:
            listener(self, kind, removed)

    def on_commit(self, listener) -> None:
        """Subscribe to commits: listener(table, kind, removed_ids)."""
        self._listeners.append(listener)

    # -- reads --------------------------------------------------------------------

    @property
    def current_snapshot(self) -> LakeSnapshot:
        return self._snapshots[-1]

    def snapshot(self, snapshot_id: int) -> LakeSnapshot:
        """Time travel to a historic snapshot."""
        try:
            return self._snapshots[snapshot_id]
        except IndexError:
            raise KeyError(f"no snapshot {snapshot_id}") from None

    @property
    def num_snapshots(self) -> int:
        return len(self._snapshots)

    def file(self, file_id: str) -> LakeFile:
        try:
            return self._files[file_id]
        except KeyError:
            raise KeyError(f"no file {file_id!r} in table {self.name}") from None

    def files(self, snapshot: Optional[LakeSnapshot] = None) -> List[LakeFile]:
        chosen = snapshot if snapshot is not None else self.current_snapshot
        return [self._files[fid] for fid in chosen.file_ids]

    def num_rows(self, snapshot: Optional[LakeSnapshot] = None) -> int:
        return sum(f.num_rows for f in self.files(snapshot))

    def diff(
        self, older: LakeSnapshot, newer: LakeSnapshot
    ) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        """(added file ids, removed file ids) between two snapshots."""
        old, new = set(older.file_ids), set(newer.file_ids)
        return frozenset(new - old), frozenset(old - new)
