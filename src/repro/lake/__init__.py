"""Open-data-format support: predicate caching over a data lake (§4.5).

Cloud warehouses increasingly scan open formats — Parquet files grouped
into Iceberg/Delta tables — that the warehouse does not own: other
engines add and remove files, and the warehouse cannot reorganize the
layout.  The paper argues predicate caching is the *only* one of the
studied techniques that still works there, because it needs no
ownership: it only requires (a) stable row addressing, (b) infrequent
row-number changes, and (c) detectable changes for invalidation.

This package provides that substrate:

* :mod:`repro.lake.format` — a Parquet-shaped file format: immutable
  files of row groups, each group carrying per-column min/max
  statistics and compressed column chunks,
* :mod:`repro.lake.table` — an Iceberg-shaped table: snapshots that add
  or remove whole files, with time travel between snapshots,
* :mod:`repro.lake.scan` — a scanning engine whose predicate cache
  indexes *qualifying row groups per file*; appended files are scanned
  incrementally, removed files invalidate only the affected entries.
"""

from .format import ColumnChunk, LakeFile, RowGroup, write_file
from .scan import LakeScanner, LakeScanStats
from .table import LakeSnapshot, LakeTable

__all__ = [
    "ColumnChunk",
    "LakeFile",
    "LakeScanner",
    "LakeScanStats",
    "LakeSnapshot",
    "LakeTable",
    "RowGroup",
    "write_file",
]
