"""Cross-query reuse lattice: decomposition, composition, subsumption.

The paper's predicate cache only pays off on exact-repeat predicates.
This package (DESIGN.md §14) turns it into a reuse *lattice* so
never-seen conjunctions are served from previously cached parts, the
PartitionCache idea (Poppinga, BTW 2025) rebuilt on our range algebra:

* :mod:`~repro.reuse.decompose` — normalize a scan predicate with the
  CNF machinery and split it into canonical per-conjunct
  :class:`~repro.core.keys.ScanKey` variants.
* :mod:`~repro.reuse.compose` — on a full-key miss, look up each
  conjunct's cached entry and serve the scan from the vectorized
  intersection of their range lists (any non-empty subset of conjunct
  hits is a sound superset of the conjunction's truth).
* :mod:`~repro.reuse.subsume` — find a cached range predicate on the
  same column whose interval contains the requested one and serve it as
  a superset with a residual re-check.

Everything here is **read-only over the cache** (linter rule RP009):
this package plans a serving; the scan coordinator in
:mod:`repro.engine.scan` evaluates the real predicate over the served
candidates and installs results through the same
``record_slice_scan`` barrier as every other scan, so the differential
oracle covers the reuse path end to end.
"""

from .compose import ComposedSliceState, ReusePlan, ReuseServing, plan_reuse
from .decompose import Conjunct, Decomposition, decompose
from .subsume import bounds_contain, find_subsuming

__all__ = [
    "ComposedSliceState",
    "Conjunct",
    "Decomposition",
    "ReusePlan",
    "ReuseServing",
    "bounds_contain",
    "decompose",
    "find_subsuming",
    "plan_reuse",
]
