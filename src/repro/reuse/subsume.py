"""Subsumption matching: serve a range from a cached wider range.

Dashboard drill-downs narrow a range predicate step by step
(``x < 150`` → ``x < 100`` → ``x < 80``); exact-match caching restarts
cold at every step.  The matcher here finds a cached entry on the same
table and column whose interval *contains* the requested one.  Its
cached candidate set is a superset of the wider predicate's truth, hence
a superset of the narrower one's — the scan serves from it and the
normal residual re-check (the predicate is always re-evaluated over
candidates) filters the extra rows out.

Read-only over the cache (RP009): candidate entries are discovered by
parsing their canonical predicate keys back into ASTs — the cache key
*is* the predicate, so no side index is needed.  Parses are memoized;
the cache key space is bounded by the entry budget.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional, Tuple

from ..predicates.ast import Bounds, Predicate
from ..predicates.parser import PredicateParseError, parse_predicate

if TYPE_CHECKING:
    from ..core.cache import PredicateCache
    from ..core.entry import CacheEntry
    from .decompose import Conjunct

__all__ = ["bounds_contain", "find_subsuming"]


@lru_cache(maxsize=4096)
def _single_column_range(predicate_key: str) -> Optional[Tuple[str, Bounds]]:
    """Parse a cache key back into ``(column, bounds)`` if it is a
    one-column range predicate; ``None`` for anything else.
    """
    try:
        predicate: Predicate = parse_predicate(predicate_key)
    except PredicateParseError:
        return None
    columns = predicate.columns()
    if len(columns) != 1:
        return None
    (column,) = columns
    bounds = predicate.bounds(column)
    if bounds is None or bounds.unbounded:
        return None
    return column, bounds


def bounds_contain(outer: Bounds, inner: Bounds) -> bool:
    """True when the ``outer`` interval contains the ``inner`` one.

    ``None`` endpoints are infinite; a strict outer endpoint only
    contains an equal inner endpoint if the inner one is strict too.
    Incomparable endpoint types (a string bound against a numeric
    request) never contain each other.
    """
    try:
        if outer.lo is not None:
            if inner.lo is None or inner.lo < outer.lo:
                return False
            if inner.lo == outer.lo and outer.lo_strict and not inner.lo_strict:
                return False
        if outer.hi is not None:
            if inner.hi is None or inner.hi > outer.hi:
                return False
            if inner.hi == outer.hi and outer.hi_strict and not inner.hi_strict:
                return False
    except TypeError:
        return False
    return True


def _interval_width(bounds: Bounds) -> float:
    """Finite interval width, ``inf`` for half-open or non-numeric."""
    if bounds.lo is None or bounds.hi is None:
        return float("inf")
    try:
        return float(bounds.hi) - float(bounds.lo)
    except (TypeError, ValueError):
        return float("inf")


def find_subsuming(
    cache: "PredicateCache", conjunct: "Conjunct"
) -> Optional["CacheEntry"]:
    """Find the tightest live cached entry whose range contains
    ``conjunct``'s, or ``None``.

    Only plain (non-join) single-column range entries on the same table
    qualify, and only ones that have recorded at least one slice state —
    an empty shell cannot serve anything.  Ties are broken toward the
    most selective entry (fewest false positives to re-check), then the
    narrowest interval.
    """
    requested = _single_column_range(conjunct.key.predicate_key)
    if requested is None:
        return None
    column, wanted = requested
    prefix = f"{column} "
    best: Optional["CacheEntry"] = None
    best_rank: Tuple[float, float] = (float("inf"), float("inf"))
    for entry in cache.entries():
        key = entry.key
        if (
            key.is_join_key
            or key.table != conjunct.key.table
            or key.predicate_key == conjunct.key.predicate_key
            or not key.predicate_key.startswith(prefix)
        ):
            continue
        cached = _single_column_range(key.predicate_key)
        if cached is None or cached[0] != column:
            continue
        if not bounds_contain(cached[1], wanted):
            continue
        if not any(state is not None for state in entry.slice_states):
            continue
        rank = (entry.selectivity, _interval_width(cached[1]))
        if rank < best_rank:
            best, best_rank = entry, rank
    return best
