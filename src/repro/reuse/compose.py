"""Intersection composition: serve a conjunction from cached parts.

On a full-key miss the composer probes the cache for each conjunct of
the decomposed predicate (falling back to the subsumption matcher per
part) and assembles an **ephemeral** serving whose per-slice candidate
set is the vectorized :meth:`RangeList.intersect` of the parts'
candidate sets.

Soundness: each part's ``candidates`` is a superset of that conjunct's
truth (cached false positives plus the part's own uncached tail, which
is included wholesale).  The intersection of supersets of each
conjunct's truth is a superset of the conjunction's truth — and so is
the intersection over any *subset* of conjuncts, which is why partial
resolution (only ``A`` cached when ``A AND B`` is asked) still serves.
The scan re-evaluates the real predicate plus visibility over the
candidates, so the result is bit-identical to a cache-off scan.

Nothing built here is ever installed: :class:`ReuseServing` and
:class:`ComposedSliceState` duck-type the read APIs the scan path uses
and carry ``ephemeral = True`` so ``invariants.check_cache`` rejects any
attempt to put one in the entry table (which would double-count the
source entries' bytes against the budget).  This module is read-only
over the cache — linter rule RP009.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Mapping, Optional, Tuple

from ..core.rowrange import RangeList
from ..persist.records import key_digest
from .decompose import Conjunct, Decomposition
from .subsume import find_subsuming

if TYPE_CHECKING:
    from ..core.cache import PredicateCache
    from ..core.entry import CacheEntry, SliceState
    from ..core.keys import ScanKey

__all__ = ["ComposedSliceState", "ReusePlan", "ReuseServing", "plan_reuse"]


class ComposedSliceState:
    """Ephemeral intersection view over per-conjunct slice states.

    Duck-types the :class:`~repro.core.entry.SliceState` read API the
    scan path consumes (``candidates`` / ``last_cached_row`` /
    ``nbytes``).  The watermark is the *maximum* over the parts: a part
    with a lower watermark contributes its own uncached tail to its
    candidate set, so rows past any part's watermark are never skipped.
    Never installed, never extended.
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Tuple["SliceState", ...]) -> None:
        self.parts = parts

    @property
    def last_cached_row(self) -> int:
        return max(part.last_cached_row for part in self.parts)

    def candidates(self, num_rows: int) -> RangeList:
        result = self.parts[0].candidates(num_rows)
        for part in self.parts[1:]:
            if not result:
                break
            result = result.intersect(part.candidates(num_rows))
        return result

    @property
    def nbytes(self) -> int:
        # The parts' bytes are accounted once, on their owning entries.
        return 0


class ReuseServing:
    """An ephemeral "entry" assembled from cached parts for one scan.

    Duck-types the :class:`~repro.core.entry.CacheEntry` read API the
    scan path uses (``key``, ``slice_states``, ``selectivity``,
    ``nbytes``).  ``source_keys`` drive stale-watermark drops (a vacuum
    mid-flight must drop the *source* entries, not the full key) and
    ``source_digests`` become the provenance recorded on the full-key
    entry the served scan installs.
    """

    ephemeral = True

    __slots__ = ("key", "slice_states", "basis", "source_keys", "source_digests")

    def __init__(
        self,
        key: "ScanKey",
        slice_states: List[Optional[object]],
        basis: str,
        source_keys: Tuple["ScanKey", ...],
    ) -> None:
        self.key = key
        self.slice_states = slice_states
        self.basis = basis
        self.source_keys = source_keys
        self.source_digests: Tuple[int, ...] = tuple(
            key_digest(source) for source in source_keys
        )

    @property
    def provenance(self) -> str:
        return self.basis

    @property
    def selectivity(self) -> float:
        # Unknown until served; the scan path only reads this for spans.
        return 1.0

    @property
    def nbytes(self) -> int:
        return 0


@dataclass(frozen=True)
class ReusePlan:
    """A serving plus the diagnostics the tracer span reports."""

    serving: ReuseServing
    conjuncts: int
    resolved: int
    subsumed_parts: int


def plan_reuse(
    cache: "PredicateCache",
    decomposition: Decomposition,
    plain_key: "ScanKey",
    current_versions: Optional[Mapping[str, int]],
    num_slices: int,
) -> Optional[ReusePlan]:
    """Assemble a derived serving for a full-key miss, or ``None``.

    Probes each conjunct with :meth:`PredicateCache.lookup_part`; parts
    without an exact conjunct entry fall back to the subsumption
    matcher.  Any non-empty subset of resolved parts yields a sound
    serving (see module docstring); slices where no part has recorded
    state stay ``None`` and scan cold, exactly like a partial entry.
    """
    config = cache.config
    if not config.reuse_composition and len(decomposition.conjuncts) > 1:
        return None
    resolved: List[Tuple[Conjunct, "CacheEntry"]] = []
    subsumed_parts = 0
    for conjunct in decomposition.conjuncts:
        entry: Optional["CacheEntry"] = None
        if config.reuse_composition or len(decomposition.conjuncts) == 1:
            entry = cache.lookup_part(conjunct.key, current_versions)
            if entry is not None and not any(
                state is not None for state in entry.slice_states
            ):
                entry = None
        if entry is None and config.reuse_subsumption:
            entry = find_subsuming(cache, conjunct)
            if entry is not None:
                subsumed_parts += 1
        if entry is not None:
            resolved.append((conjunct, entry))
    if not resolved:
        return None
    slice_states: List[Optional[object]] = []
    for slice_id in range(num_slices):
        parts = tuple(
            entry.slice_states[slice_id]
            for _, entry in resolved
            if entry.slice_states[slice_id] is not None
        )
        if not parts:
            slice_states.append(None)
        elif len(parts) == 1:
            slice_states.append(parts[0])
        else:
            slice_states.append(ComposedSliceState(parts))
    if not any(state is not None for state in slice_states):
        return None
    basis = "subsumed" if subsumed_parts else "composed"
    serving = ReuseServing(
        plain_key,
        slice_states,
        basis,
        tuple(entry.key for _, entry in resolved),
    )
    return ReusePlan(
        serving,
        conjuncts=len(decomposition.conjuncts),
        resolved=len(resolved),
        subsumed_parts=subsumed_parts,
    )
