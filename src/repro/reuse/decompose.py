"""Conjunct decomposition: a scan predicate as canonical cache-key parts.

The decomposer runs the predicate through
:func:`repro.predicates.normalize.normalize` (NOT push-down, interval
merging, CNF) and splits the result at top-level ``AND``s.  Each
conjunct gets the canonical plain :class:`~repro.core.keys.ScanKey` of
its normalized rendering via :func:`~repro.core.keys.conjunct_key`, so a
direct scan of the same single-conjunct predicate shares the entry.

Soundness note: normalization preserves semantics, and every conjunct's
truth set is a superset of the conjunction's truth set — which is what
makes any subset of cached conjuncts usable as a serving basis (see
:mod:`repro.reuse.compose`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.keys import ScanKey, conjunct_key
from ..predicates.ast import FalsePredicate, Predicate, TruePredicate
from ..predicates.normalize import normalize

__all__ = ["Conjunct", "Decomposition", "decompose"]


@dataclass(frozen=True)
class Conjunct:
    """One normalized conjunct and its canonical cache key."""

    predicate: Predicate
    key: ScanKey


@dataclass(frozen=True)
class Decomposition:
    """A predicate split into canonical conjuncts over one table."""

    table: str
    conjuncts: Tuple[Conjunct, ...]


def decompose(
    table: str, predicate: Predicate, max_conjuncts: int
) -> Optional[Decomposition]:
    """Split ``predicate`` into normalized conjuncts, or ``None``.

    Returns ``None`` when decomposition cannot help: trivial predicates
    (``TRUE`` needs no cache, ``FALSE`` means a contradiction was
    detected), or CNF blow-up past ``max_conjuncts``.  A single-conjunct
    decomposition is still useful — its canonical key may differ from
    the raw key, and it is the unit the subsumption matcher works on.
    """
    normalized = normalize(predicate)
    if isinstance(normalized, (TruePredicate, FalsePredicate)):
        return None
    parts = normalized.conjuncts()
    if not parts or len(parts) > max_conjuncts:
        return None
    seen = set()
    conjuncts: List[Conjunct] = []
    for part in parts:
        key = conjunct_key(table, part.cache_key())
        if key.predicate_key in seen:
            continue
        seen.add(key.predicate_key)
        conjuncts.append(Conjunct(part, key))
    return Decomposition(table, tuple(conjuncts))
