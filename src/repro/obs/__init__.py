"""Observability: metrics registry, span tracer, exposition.

The paper's headline claims are operational (build overhead, hit rate
over time, bounded memory); this package is how a running engine is
observed.  Components *register* their existing counters with a
:class:`MetricsRegistry` (scrape-time callbacks — no hot-path cost),
and a :class:`Tracer` attached to a :class:`~repro.engine.QueryEngine`
records per-query span trees that power ``EXPLAIN ANALYZE`` and the
Chrome ``trace_event`` export.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
]
