"""Lightweight per-query span tracing.

A :class:`Tracer` records a tree of :class:`Span`\\ s per query —
``query → parse → plan → execute → operators → scan[slice]`` — each
carrying wall-clock timing plus whatever attributes the instrumented
code attaches (rows scanned, blocks fetched, cache outcome).

Design constraints, in order:

1. **Zero cost when off.**  Every instrumented call site is guarded by
   ``if tracer is not None``; an engine constructed without a tracer
   executes the exact pre-instrumentation code path.
2. **Cheap when on.**  Spans are ``__slots__`` objects; entering one is
   two ``perf_counter`` calls and a list append.  No thread-locals, no
   globals — a tracer belongs to one engine, and the span tree is
   mutated only by the coordinating thread: parallel scan workers just
   read the clock via :meth:`Tracer.now` and the coordinator attaches
   their spans in slice order via :meth:`Tracer.emit`.
3. **Exportable.**  ``to_dict``/``to_json`` give the structured view;
   ``to_chrome_trace`` emits the ``trace_event`` JSON that
   ``chrome://tracing`` / Perfetto load directly.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]


class Span:
    """One timed node of a query's execution tree."""

    __slots__ = ("name", "attrs", "children", "start_s", "end_s")

    def __init__(self, name: str, start_s: float) -> None:
        self.name = name
        self.attrs: Dict[str, object] = {}
        self.children: List["Span"] = []
        self.start_s = start_s
        self.end_s: Optional[float] = None

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else self.start_s
        return end - self.start_s

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def update(self, attrs: Dict[str, object]) -> None:
        self.attrs.update(attrs)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (pre-order)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """Context manager that closes its span (and pops the stack)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.set("error", f"{exc_type.__name__}: {exc}")
        self._tracer.end(self.span)


class Tracer:
    """Collects span trees; one root per traced query."""

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._origin = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def begin(self, name: str, **attrs: object) -> Span:
        """Open a span as a child of the innermost open span."""
        span = Span(name, time.perf_counter() - self._origin)
        if attrs:
            span.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` (and any children left open by an exception)."""
        now = time.perf_counter() - self._origin
        while self._stack:
            top = self._stack.pop()
            top.end_s = now
            if top is span:
                return
        raise ValueError(f"span {span.name!r} is not open")

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """``with tracer.span("scan") as s: ...`` convenience."""
        return _SpanContext(self, self.begin(name, **attrs))

    def now(self) -> float:
        """Seconds since the tracer's origin.

        Safe to call from scan worker threads: it reads the shared
        monotonic clock and touches no tracer state.  Workers record
        ``now()`` pairs and hand them to the coordinator, which attaches
        the spans via :meth:`emit` — the span tree itself is only ever
        mutated by the coordinating thread.
        """
        return time.perf_counter() - self._origin

    def emit(self, name: str, start_s: float, end_s: float, attrs: Dict[str, object]) -> Span:
        """Attach an already-closed span under the innermost open span.

        This is how the parallel scan coordinator reports per-slice
        spans: workers measure their own ``now()`` windows, and the
        coordinator emits them *in slice order* at the barrier, so the
        trace tree is deterministic even though completion order is not.
        Unlike :meth:`begin`, the span never enters the open-span stack.
        """
        span = Span(name, start_s)
        span.end_s = end_s
        span.attrs.update(attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        return span

    @property
    def last_root(self) -> Optional[Span]:
        return self.roots[-1] if self.roots else None

    def clear(self) -> None:
        self.roots = []
        self._stack = []

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_chrome_trace(self) -> Dict[str, object]:
        """The ``trace_event`` format chrome://tracing / Perfetto read.

        Every span becomes a complete ("ph": "X") event with microsecond
        timestamps relative to the tracer's origin; attributes ride in
        ``args``.
        """
        events: List[Dict[str, object]] = []
        for root in self.roots:
            for span in root.walk():
                events.append(
                    {
                        "name": span.name,
                        "ph": "X",
                        "ts": span.start_s * 1e6,
                        "dur": span.duration_s * 1e6,
                        "pid": 0,
                        "tid": 0,
                        "args": {k: str(v) for k, v in span.attrs.items()},
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}
