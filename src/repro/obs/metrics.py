"""Process-wide metrics: counters, gauges, histograms, and exposition.

The registry follows the Prometheus data model scaled down to what the
reproduction needs:

* **Counter** — a monotonically increasing value (queries executed,
  rows scanned).  Counters may be *callback-backed*: components that
  already keep monotonic counters (``CacheStats``, ``StorageStats``,
  the lake scanner) register a zero-cost closure instead of paying for
  a second increment on their hot path.  That is the design that keeps
  the observability overhead within budget: scrape-time reads, not
  scan-time writes.
* **Gauge** — a value that can go up and down (``total_nbytes``, live
  entry count), set directly or callback-backed.
* **Histogram** — fixed cumulative buckets plus sum/count (query
  latency, rows skipped per scan).

Instruments are keyed by ``(name, labels)``: registering the same pair
twice returns the existing instrument (idempotent wiring), while the
same name with different labels yields separate series — how per-node
cluster caches share one metric family.

``render_prometheus`` produces the text exposition format (the string a
``/metrics`` endpoint would serve); ``as_dict`` is the JSON-friendly
flat view tests and dashboards use.
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Latency-flavoured default buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

LabelSet = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonic value; ``fn``-backed counters read at scrape time.

    Directly-incremented instruments take a per-instrument lock:
    ``+=`` on a float is not atomic under threads, and serving-layer
    counters are incremented from many request threads at once.
    Callback-backed instruments stay lock-free (scrape-time reads).
    """

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if self._fn is not None:
            raise ValueError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Gauge:
    """A value that can move both ways; optionally callback-backed."""

    __slots__ = ("name", "labels", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = (
        "name", "labels", "buckets", "bucket_counts", "sum", "count", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            # First bucket whose upper bound admits the value; every later
            # (cumulative) bucket is derived at render time.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    break

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (exposition form, excl. +Inf)."""
        out: List[int] = []
        running = 0
        for c in self.bucket_counts:
            running += c
            out.append(running)
        return out


class MetricsRegistry:
    """A named collection of instruments with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelSet], object] = {}
        self._help: Dict[str, str] = {}
        self._type: Dict[str, str] = {}
        # Registration can happen at request time (e.g. per-tenant
        # serving series created on first sight of a tenant).
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def _get_or_create(
        self,
        kind: str,
        factory: Callable[[], object],
        name: str,
        help: str,
        labels: Optional[Mapping[str, str]],
    ):
        with self._lock:
            if self._type.get(name, kind) != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {self._type[name]}"
                )
            key = (name, _label_key(labels))
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
                self._type[name] = kind
                if help and name not in self._help:
                    self._help[name] = help
            return instrument

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        return self._get_or_create(
            "counter", lambda: Counter(name, _label_key(labels), fn),
            name, help, labels,
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self._get_or_create(
            "gauge", lambda: Gauge(name, _label_key(labels), fn),
            name, help, labels,
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            "histogram", lambda: Histogram(name, _label_key(labels), buckets),
            name, help, labels,
        )

    # -- reading -------------------------------------------------------------

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[object]:
        return self._instruments.get((name, _label_key(labels)))

    def names(self) -> List[str]:
        return sorted(self._type)

    def as_dict(self) -> Dict[str, float]:
        """Flat ``name{labels}`` -> value view (histograms: sum/count)."""
        out: Dict[str, float] = {}
        for (name, labels), instrument in sorted(self._instruments.items()):
            series = name + _render_labels(labels)
            if isinstance(instrument, Histogram):
                out[series + "_sum"] = instrument.sum
                out[series + "_count"] = float(instrument.count)
            else:
                out[series] = float(instrument.value)
        return out

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition a ``/metrics`` endpoint would serve."""
        by_name: Dict[str, List[Tuple[LabelSet, object]]] = {}
        for (name, labels), instrument in self._instruments.items():
            by_name.setdefault(name, []).append((labels, instrument))

        lines: List[str] = []
        for name in sorted(by_name):
            help_text = self._help.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            lines.append(f"# TYPE {name} {self._type[name]}")
            for labels, instrument in sorted(by_name[name]):
                if isinstance(instrument, Histogram):
                    lines.extend(_render_histogram(name, labels, instrument))
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + "\n"


def _render_histogram(
    name: str, labels: LabelSet, histogram: Histogram
) -> List[str]:
    lines: List[str] = []
    cumulative = histogram.cumulative_counts()
    for bound, count in zip(histogram.buckets, cumulative):
        bucket_labels = labels + (("le", _format_value(bound)),)
        lines.append(f"{name}_bucket{_render_labels(bucket_labels)} {count}")
    inf_labels = labels + (("le", "+Inf"),)
    lines.append(f"{name}_bucket{_render_labels(inf_labels)} {histogram.count}")
    lines.append(f"{name}_sum{_render_labels(labels)} "
                 f"{_format_value(histogram.sum)}")
    lines.append(f"{name}_count{_render_labels(labels)} {histogram.count}")
    return lines


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)
