"""Runtime lock-order witness: the dynamic half of ``tools.analyze``.

When ``REPRO_LOCK_WITNESS=1``, the ``named_lock`` / ``named_rlock`` /
``named_condition`` factories return instrumented locks that record,
per thread, every *acquisition-order edge*: "lock ``A`` was held when
lock ``B`` was acquired".  At teardown a suite can then

* :func:`assert_acyclic` — the observed edge graph must have no
  cycle (a cycle means two threads can deadlock on these locks), and
* :func:`missing_from` — every observed edge must be present in the
  statically computed lock-order graph from ``tools.analyze``, proving
  the static model sound against real executions.

When the variable is unset the factories return plain stdlib locks —
the wrapper class is never constructed, so production overhead is one
``os.environ`` check per lock *construction*, not per acquisition
(gated ≤0.5% by ``bench_lockwitness_overhead``).

Lock names are the analyzer's canonical names (``ClassName._attr``),
passed as string literals at the construction site; the static side
reads the same literals out of the ``named_*`` calls, so the two
graphs agree on vocabulary by construction.

Re-entrancy: acquiring a lock *instance* already held by the current
thread records no edge (it is a re-entry, matching the static side's
elision of re-entrant self-edges).  Acquiring a *different* instance
with the same name does record the ``name → name`` self-edge — that
is exactly the cross-shard nesting ``ClusterCaches`` forbids, and it
fails both checks.

Condition integration: :class:`WitnessLock` exposes ``_is_owned`` /
``_release_save`` / ``_acquire_restore`` delegating to its inner
``RLock``, which ``threading.Condition`` requires to release a held
re-entrant lock around ``wait()`` correctly.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "ENV_VAR",
    "WitnessLock",
    "enabled",
    "named_lock",
    "named_rlock",
    "named_condition",
    "observed_edges",
    "reset",
    "assert_acyclic",
    "missing_from",
    "find_cycle",
]

ENV_VAR = "REPRO_LOCK_WITNESS"


def enabled() -> bool:
    return os.environ.get(ENV_VAR, "") == "1"


class _Registry:
    """Global edge store + per-thread held stacks."""

    def __init__(self) -> None:
        # Deliberately a *plain* uninstrumented lock: the registry
        # guard is internal bookkeeping, not part of the witnessed
        # program order.
        self._guard = threading.Lock()
        self._edges: Dict[Tuple[str, str], int] = {}
        self._tls = threading.local()

    def _stack(self) -> List[Tuple[str, int]]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def on_acquired(self, name: str, instance: int) -> None:
        stack = self._stack()
        reentry = any(held_id == instance for _, held_id in stack)
        if not reentry and stack:
            with self._guard:
                for held_name, _ in stack:
                    key = (held_name, name)
                    self._edges[key] = self._edges.get(key, 0) + 1
        stack.append((name, instance))

    def on_released(self, instance: int) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i][1] == instance:
                del stack[i]
                return

    def edges(self) -> Set[Tuple[str, str]]:
        with self._guard:
            return set(self._edges)

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()


_REGISTRY = _Registry()


class WitnessLock:
    """Instrumented lock wrapper recording acquisition-order edges."""

    def __init__(self, name: str, inner=None) -> None:
        self._name = name
        self._inner = inner if inner is not None else threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            _REGISTRY.on_acquired(self._name, id(self))
        return acquired

    def release(self) -> None:
        _REGISTRY.on_released(id(self))
        self._inner.release()

    def __enter__(self) -> "WitnessLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    # threading.Condition integration: it releases/restores its lock
    # around wait() through these, and they must hit the real RLock.
    def _is_owned(self) -> bool:
        return self._inner._is_owned()

    def _release_save(self):
        return self._inner._release_save()

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)


def named_lock(name: str):
    """A ``threading.Lock`` (instrumented when the witness is on)."""
    if not enabled():
        return threading.Lock()
    return WitnessLock(name, threading.Lock())


def named_rlock(name: str):
    """A ``threading.RLock`` (instrumented when the witness is on)."""
    if not enabled():
        return threading.RLock()
    return WitnessLock(name, threading.RLock())


def named_condition(name: str):
    """A ``threading.Condition`` over an (instrumented) RLock."""
    if not enabled():
        return threading.Condition()
    return threading.Condition(WitnessLock(name, threading.RLock()))


def observed_edges() -> Set[Tuple[str, str]]:
    """Every ``(held, acquired)`` name pair recorded so far."""
    return _REGISTRY.edges()


def reset() -> None:
    """Clear recorded edges (suite setup)."""
    _REGISTRY.reset()


def find_cycle(
    edges: Optional[Set[Tuple[str, str]]] = None,
) -> Optional[List[str]]:
    """One cycle of the observed graph, or ``None`` if acyclic."""
    if edges is None:
        edges = observed_edges()
    adjacency: Dict[str, List[str]] = {}
    for src, dst in sorted(edges):
        adjacency.setdefault(src, []).append(dst)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {}
    path: List[str] = []

    def dfs(node: str) -> Optional[List[str]]:
        color[node] = GRAY
        path.append(node)
        for child in adjacency.get(node, []):
            state = color.get(child, WHITE)
            if state == GRAY:
                return path[path.index(child):] + [child]
            if state == WHITE:
                cycle = dfs(child)
                if cycle is not None:
                    return cycle
        path.pop()
        color[node] = BLACK
        return None

    for node in sorted(adjacency):
        if color.get(node, WHITE) == WHITE:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def assert_acyclic() -> None:
    """Raise ``AssertionError`` if the observed graph has a cycle."""
    cycle = find_cycle()
    if cycle is not None:
        raise AssertionError(
            "lock-order witness observed a cycle: " + " -> ".join(cycle)
        )


def missing_from(static_edges: Set[Tuple[str, str]]) -> Set[Tuple[str, str]]:
    """Observed edges absent from the static graph (must be empty).

    Only edges whose *both* endpoints are witness-named locks are
    compared — the static graph also contains locks (metrics, fault
    injector) that are not instrumented at runtime.
    """
    return observed_edges() - set(static_edges)
