"""Columnar storage engine substrate.

A laptop-scale analogue of Redshift's storage architecture (§4.2.1):

* relations are split into **data slices** by a distribution key,
* each slice stores columns as fixed-size **compressed blocks**
  (frame-of-reference, run-length, dictionary codecs),
* every block carries a **zone map** (min/max) for block pruning,
* visibility is **MVCC** with per-row creation/deletion transaction ids;
  deletes mark, **vacuum** physically reclaims and re-numbers rows,
* blocks live on **managed storage** (:mod:`repro.storage.rms`) and are
  fetched through a local block cache with per-fetch cost accounting.
"""

from .blockstore import MemmapBlockStore
from .dtypes import DataType, date_to_days, days_to_date
from .table import ColumnSpec, Table, TableSchema
from .database import Database
from .rms import ManagedStorage, StorageStats

__all__ = [
    "ColumnSpec",
    "MemmapBlockStore",
    "DataType",
    "Database",
    "ManagedStorage",
    "StorageStats",
    "Table",
    "TableSchema",
    "date_to_days",
    "days_to_date",
]
