"""The database catalog: tables, transaction ids, shared managed storage.

One :class:`Database` is the substrate a query engine session runs on.
It owns the monotonic transaction counter (MVCC timestamps), the shared
:class:`~repro.storage.rms.ManagedStorage` block layer, and the table
catalog.  The engine (leader node) and the caching layers all hang off
this object.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from .rms import ManagedStorage
from .table import Table, TableSchema

__all__ = ["Database"]


class Database:
    """A named collection of tables sharing storage and a tx counter."""

    def __init__(
        self,
        num_slices: int = 4,
        rows_per_block: int = 1000,
        cache_capacity: Optional[int] = None,
        block_store=None,
    ) -> None:
        self.num_slices = num_slices
        self.rows_per_block = rows_per_block
        self.block_store = block_store
        self.rms = ManagedStorage(cache_capacity=cache_capacity)
        self.tables: Dict[str, Table] = {}
        self.statistics: Dict[str, "TableStatistics"] = {}
        self._next_txid = 1
        self._txid_lock = threading.Lock()

    # -- transactions ---------------------------------------------------------

    def begin(self) -> int:
        """Allocate the next transaction id.

        Locked: concurrent serving threads each begin their own reads;
        an unguarded read-increment would hand two queries the same
        MVCC timestamp.  Writers are additionally serialized above this
        layer (the serving layer's write lock) — the lock here only
        makes id allocation itself safe.
        """
        with self._txid_lock:
            txid = self._next_txid
            self._next_txid += 1
            return txid

    @property
    def current_txid(self) -> int:
        """The most recently allocated transaction id."""
        return self._next_txid - 1

    @property
    def horizon_txid(self) -> int:
        """Oldest tx that could still be active.

        The reproduction serializes writers (DML), so the horizon is
        simply the next tx id: everything deleted before it is globally
        invisible and vacuum may reclaim it.
        """
        return self._next_txid

    # -- catalog ------------------------------------------------------------------

    def create_table(
        self,
        schema: TableSchema,
        num_slices: Optional[int] = None,
        rows_per_block: Optional[int] = None,
    ) -> Table:
        if schema.name in self.tables:
            raise ValueError(f"table {schema.name!r} already exists")
        table = Table(
            schema,
            num_slices=num_slices if num_slices is not None else self.num_slices,
            rows_per_block=(
                rows_per_block if rows_per_block is not None else self.rows_per_block
            ),
            rms=self.rms,
            block_store=self.block_store,
        )
        self.tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        table = self.tables.pop(name, None)
        if table is None:
            raise KeyError(f"no table {name!r}")
        self.statistics.pop(name, None)
        self.rms.invalidate_table(name)

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(
                f"no table {name!r} (have: {sorted(self.tables)})"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.tables

    def table_names(self) -> List[str]:
        return sorted(self.tables)

    # -- resilience -----------------------------------------------------------

    def attach_faults(self, injector, retry_policy=None) -> None:
        """Arm fault injection on this database's managed storage.

        ``injector`` is a :class:`~repro.faults.FaultInjector` (or None
        to disarm); ``retry_policy`` optionally replaces the storage
        layer's :class:`~repro.faults.RetryPolicy`.
        """
        self.rms.attach_faults(injector, retry_policy)

    def analyze(
        self,
        tables: Optional[Iterable[str]] = None,
        sample_rows: int = 10_000,
    ) -> List[str]:
        """Collect optimizer statistics (the ANALYZE statement)."""
        from ..stats import analyze_table

        names = list(tables) if tables is not None else self.table_names()
        txid = self.begin()
        for name in names:
            self.statistics[name] = analyze_table(
                self.table(name), txid, sample_rows=sample_rows
            )
        return names

    def table_statistics(self, name: str):
        """Statistics from the last ANALYZE, or None."""
        return self.statistics.get(name)

    # -- observability --------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "repro_storage") -> None:
        """Expose managed-storage traffic and table storage shape.

        Block-fetch counters come straight from :class:`StorageStats`
        (the ground truth behind the paper's "blocks accessed" columns);
        per-table gauges are summed from each column's
        :meth:`~repro.storage.column.ColumnStore.metrics_snapshot` at
        scrape time, so they track the live catalog with no write-path
        hooks.
        """
        stats = self.rms.stats
        registry.counter(
            f"{prefix}_remote_fetches_total",
            "Blocks fetched from managed storage (cold reads)",
            fn=lambda: stats.remote_fetches,
        )
        registry.counter(
            f"{prefix}_local_hits_total",
            "Block reads served by the local decoded-block cache",
            fn=lambda: stats.local_hits,
        )
        registry.counter(
            f"{prefix}_blocks_accessed_total",
            "Total block reads, remote + local (the paper's metric)",
            fn=lambda: stats.blocks_accessed,
        )
        registry.counter(
            f"{prefix}_bytes_fetched_total",
            "Compressed bytes fetched from managed storage",
            fn=lambda: stats.bytes_fetched,
        )
        registry.counter(
            f"{prefix}_blocks_invalidated_total",
            "Cached blocks dropped by vacuum/reseal",
            fn=lambda: stats.blocks_invalidated,
        )
        registry.counter(
            f"{prefix}_transient_errors_total",
            "Injected transient fetch errors encountered",
            fn=lambda: stats.transient_errors,
        )
        registry.counter(
            f"{prefix}_corrupt_blocks_total",
            "Fetched blocks that failed checksum verification",
            fn=lambda: stats.corrupt_blocks,
        )
        registry.counter(
            f"{prefix}_retries_total",
            "Block fetches re-attempted after a fault",
            fn=lambda: stats.retries,
        )
        registry.counter(
            f"{prefix}_retry_giveups_total",
            "Block fetches abandoned after exhausting attempts/budget",
            fn=lambda: stats.retry_giveups,
        )
        registry.counter(
            f"{prefix}_backoff_model_seconds_total",
            "Model-time spent in retry backoff and injected latency",
            fn=lambda: stats.backoff_model_seconds,
        )
        registry.gauge(
            f"{prefix}_cached_blocks",
            "Decoded blocks currently held locally",
            fn=lambda: self.rms.cached_blocks,
        )
        registry.gauge(
            f"{prefix}_tables", "Tables in the catalog",
            fn=lambda: len(self.tables),
        )
        for metric, help_text in (
            ("blocks_sealed", "Sealed compressed blocks"),
            ("rows_tail", "Rows in unsealed insert buffers"),
            ("compressed_nbytes", "Compressed bytes across sealed blocks"),
        ):
            registry.gauge(
                f"{prefix}_{metric}",
                f"{help_text} across all tables",
                fn=lambda m=metric: self._sum_column_metric(m),
            )

    def _sum_column_metric(self, metric: str) -> int:
        return sum(
            column.metrics_snapshot()[metric]
            for table in self.tables.values()
            for data_slice in table.slices
            for column in data_slice.columns.values()
        )

    def vacuum(self, tables: Optional[Iterable[str]] = None) -> List[str]:
        """Vacuum the given tables (default: all); returns changed names."""
        names = list(tables) if tables is not None else self.table_names()
        changed = []
        for name in names:
            if self.table(name).vacuum(self.horizon_txid):
                changed.append(name)
        return changed
