"""Tables: schema, distribution across slices, MVCC DML, vacuum.

A :class:`Table` is a set of :class:`~repro.storage.slice.DataSlice`
shards.  Rows are distributed by a hash of the distribution key (or
round-robin without one), mirroring Redshift's DISTKEY.  The table
exposes the change events the caching layers key off:

* ``data_version``   — bumped by *any* DML; result-cache entries and
  join-index (semi-join) predicate-cache entries depend on it.
* ``layout_version`` — bumped only when physical row numbering changes
  (vacuum, sort/reorganization); plain predicate-cache entries depend
  only on this, which is the paper's central "online under DML" point.

Listeners registered via :meth:`on_change` receive ``(table, event)``
with event in ``{"data", "layout"}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.rowrange import RangeList
from .dtypes import DataType
from .rms import ManagedStorage
from .slice import DataSlice

__all__ = ["ColumnSpec", "TableSchema", "Table"]

ChangeListener = Callable[["Table", str], None]


@dataclass(frozen=True, slots=True)
class ColumnSpec:
    """Schema entry: column name and logical type."""

    name: str
    dtype: DataType


@dataclass(frozen=True)
class TableSchema:
    """A table's schema plus physical-design knobs."""

    name: str
    columns: Tuple[ColumnSpec, ...]
    dist_key: Optional[str] = None
    sort_key: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in {self.name}: {names}")
        if self.dist_key is not None and self.dist_key not in names:
            raise ValueError(f"dist key {self.dist_key!r} not a column of {self.name}")
        for key in self.sort_key:
            if key not in names:
                raise ValueError(f"sort key {key!r} not a column of {self.name}")

    @property
    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def dtype_of(self, column: str) -> DataType:
        for spec in self.columns:
            if spec.name == column:
                return spec.dtype
        raise KeyError(f"no column {column!r} in table {self.name}")


class Table:
    """A distributed, MVCC, columnar table."""

    def __init__(
        self,
        schema: TableSchema,
        num_slices: int = 4,
        rows_per_block: int = 1000,
        rms: Optional[ManagedStorage] = None,
        block_store=None,
    ) -> None:
        if num_slices < 1:
            raise ValueError("num_slices must be >= 1")
        self.schema = schema
        self.rms = rms if rms is not None else ManagedStorage()
        self.block_store = block_store
        self.slices: List[DataSlice] = [
            DataSlice(
                schema.name,
                slice_id,
                {c.name: c.dtype for c in schema.columns},
                rows_per_block,
                block_store=block_store,
            )
            for slice_id in range(num_slices)
        ]
        self.data_version = 0
        self.layout_version = 0
        self._listeners: List[ChangeListener] = []
        self._round_robin = 0

    # -- metadata ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    @property
    def num_rows(self) -> int:
        """Physical rows (including MVCC-deleted, pre-vacuum)."""
        return sum(s.num_rows for s in self.slices)

    def visible_row_count(self, txid: int) -> int:
        return sum(s.visible_row_count(txid) for s in self.slices)

    @property
    def num_blocks(self) -> int:
        return sum(
            column.num_blocks
            for s in self.slices
            for column in s.columns.values()
        )

    def compressed_nbytes(self) -> int:
        return sum(s.compressed_nbytes() for s in self.slices)

    # -- change events -----------------------------------------------------------

    def on_change(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def _notify(self, event: str) -> None:
        for listener in self._listeners:
            listener(self, event)

    # -- DML -----------------------------------------------------------------------

    def insert(self, rows: Mapping[str, Sequence[object]], txid: int) -> int:
        """Append rows, distributing them across slices; returns count."""
        arrays = self._to_arrays(rows)
        count = len(next(iter(arrays.values()))) if arrays else 0
        if count == 0:
            return 0
        assignment = self._assign_slices(arrays, count)
        for slice_id, s in enumerate(self.slices):
            pick = assignment == slice_id
            if not pick.any():
                continue
            subset = {name: values[pick] for name, values in arrays.items()}
            s.append_rows(subset, txid, self.rms)
        self.data_version += 1
        self._notify("data")
        return count

    def delete_local_rows(
        self, slice_id: int, local_rows: np.ndarray, txid: int
    ) -> int:
        """MVCC-delete rows of one slice (the executor resolves which)."""
        deleted = self.slices[slice_id].mark_deleted(local_rows, txid)
        if deleted:
            self.data_version += 1
            self._notify("data")
        return deleted

    def vacuum(self, horizon_txid: int) -> bool:
        """Physically reclaim dead rows in all slices.

        Returns True if any slice changed; in that case row numbering
        changed and a ``layout`` event is broadcast (predicate-cache
        invalidation, §4.3.2).
        """
        changed = False
        for s in self.slices:
            changed |= s.vacuum(horizon_txid, self.rms)
        if changed:
            self.layout_version += 1
            self.data_version += 1
            self.rms.invalidate_table(self.name)
            self._notify("layout")
            self._notify("data")
        return changed

    def reorganize(self, order_of: Callable[["Table"], List[np.ndarray]]) -> None:
        """Physically reorder every slice (sorting baselines).

        ``order_of`` maps the table to one permutation array per slice.
        Reorganization changes row numbering: ``layout`` event fires.
        """
        permutations = order_of(self)
        for s, perm in zip(self.slices, permutations):
            if perm is None:
                continue
            full = RangeList.full(s.num_rows)
            for column in s.columns.values():
                values = column.read_ranges(full, self.rms)
                column.rebuild(values[perm], self.rms)
            s._xmin.replace(s._xmin.values[perm])
            s._xmax.replace(s._xmax.values[perm])
        self.layout_version += 1
        self.data_version += 1
        self.rms.invalidate_table(self.name)
        self._notify("layout")
        self._notify("data")

    # -- helpers -------------------------------------------------------------------

    def _to_arrays(self, rows: Mapping[str, Sequence[object]]) -> Dict[str, np.ndarray]:
        missing = set(self.schema.column_names) - set(rows)
        if missing:
            raise ValueError(f"insert into {self.name} missing columns {sorted(missing)}")
        arrays: Dict[str, np.ndarray] = {}
        for spec in self.schema.columns:
            values = rows[spec.name]
            if spec.dtype is DataType.STRING:
                arrays[spec.name] = np.array(values, dtype=object)
            else:
                arrays[spec.name] = np.asarray(values, dtype=spec.dtype.numpy_dtype)
        return arrays

    def _assign_slices(self, arrays: Dict[str, np.ndarray], count: int) -> np.ndarray:
        """Slice id per row: hash of dist key, else round-robin batches."""
        if self.schema.dist_key is not None:
            key = arrays[self.schema.dist_key]
            if key.dtype == object:
                # Stable FNV-1a: builtin hash() is PYTHONHASHSEED-salted
                # for str, so string dist keys would land on different
                # slices from run to run.  Lazy import — repro.engine
                # imports this module's package at startup.
                from ..engine.hashing import fnv1a_hash

                hashes = fnv1a_hash(key)
            else:
                # Cheap integer mix; stable across runs (unlike str hash).
                hashes = key.astype(np.int64) * np.int64(2654435761)
            return (hashes % self.num_slices + self.num_slices) % self.num_slices
        assignment = (np.arange(count) + self._round_robin) % self.num_slices
        self._round_robin = (self._round_robin + count) % self.num_slices
        return assignment.astype(np.int64)

    def read_column_all(self, column: str) -> np.ndarray:
        """Concatenated full column across slices (loads, tests)."""
        parts = [s.columns[column].read_all(self.rms) for s in self.slices]
        if self.schema.dtype_of(column) is DataType.STRING:
            return np.concatenate([np.asarray(p, dtype=object) for p in parts])
        return np.concatenate(parts)
