"""Per-slice column storage: sealed compressed blocks plus a tail buffer.

A :class:`ColumnStore` holds one column of one data slice.  Rows arrive
appended to an in-memory *tail* (Redshift's insert buffer, §4.3.1); once
the tail reaches the block size it is *sealed* into a compressed block
with a zone-map entry.  Sealed blocks are immutable; reads go through
:class:`~repro.storage.rms.ManagedStorage` so every block access is
counted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.rowrange import RangeList
from .compression import EncodedBlock, choose_codec
from .dtypes import DataType
from .rms import BlockKey, ManagedStorage
from .zonemap import ZoneMap

__all__ = ["ColumnStore", "GrowableArray"]


class GrowableArray:
    """An amortized-append numpy array (doubling growth)."""

    __slots__ = ("_data", "_size")

    def __init__(self, dtype: np.dtype, capacity: int = 64) -> None:
        self._data = np.empty(max(capacity, 1), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def values(self) -> np.ndarray:
        """A view of the live portion (do not keep across appends)."""
        return self._data[: self._size]

    def append_many(self, values: np.ndarray) -> None:
        needed = self._size + len(values)
        if needed > len(self._data):
            capacity = max(needed, 2 * len(self._data))
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = values
        self._size = needed

    def replace(self, values: np.ndarray) -> None:
        """Swap in entirely new contents (vacuum rebuild)."""
        self._data = np.array(values, dtype=self._data.dtype)
        self._size = len(values)


class ColumnStore:
    """One column of one slice: sealed blocks + unsealed tail."""

    def __init__(
        self,
        table_name: str,
        slice_id: int,
        column_name: str,
        dtype: DataType,
        rows_per_block: int,
        block_store=None,
    ) -> None:
        self.table_name = table_name
        self.slice_id = slice_id
        self.column_name = column_name
        self.dtype = dtype
        self.rows_per_block = rows_per_block
        # Optional MemmapBlockStore: sealed payloads spill to disk and
        # page in on demand (out-of-core tables); None keeps payloads
        # resident, byte-for-byte the historical layout.
        self.block_store = block_store
        self.blocks: List[EncodedBlock] = []
        self.zonemap = ZoneMap()
        self._tail: List[object] = []

    # -- size -----------------------------------------------------------------

    @property
    def num_sealed_rows(self) -> int:
        return len(self.blocks) * self.rows_per_block

    @property
    def num_rows(self) -> int:
        return self.num_sealed_rows + len(self._tail)

    @property
    def num_blocks(self) -> int:
        """Sealed blocks plus the tail counted as one open block."""
        return len(self.blocks) + (1 if self._tail else 0)

    @property
    def compressed_nbytes(self) -> int:
        """Compressed size of all sealed blocks."""
        return sum(b.nbytes for b in self.blocks)

    def metrics_snapshot(self) -> dict:
        """Current storage shape of this column (observability rollup).

        :meth:`Database.register_metrics` sums these per table at scrape
        time; keeping the raw numbers here means the storage layer owns
        its own accounting and the registry never reaches into internals.
        """
        return {
            "blocks_sealed": len(self.blocks),
            "rows_sealed": self.num_sealed_rows,
            "rows_tail": len(self._tail),
            "compressed_nbytes": self.compressed_nbytes,
        }

    # -- writes ---------------------------------------------------------------

    def append(self, values: Sequence[object], rms: Optional[ManagedStorage]) -> None:
        """Append values to the tail, sealing full blocks as they fill."""
        self._tail.extend(values)
        while len(self._tail) >= self.rows_per_block:
            self._seal(self._tail[: self.rows_per_block], rms)
            del self._tail[: self.rows_per_block]

    def _seal(self, values: Sequence[object], rms: Optional[ManagedStorage]) -> None:
        array = self._to_array(values)
        block = choose_codec(array)
        if self.block_store is not None:
            # nbytes and checksum are already stamped; only payload
            # residency changes (see blockstore module doc).
            block = self.block_store.externalize(block)
        self.blocks.append(block)
        self.zonemap.append_block(array)
        if rms is not None:
            # The rows were previously served from the tail; make sure no
            # stale decoded tail data lingers for the new block id.
            rms.invalidate_block(self._block_key(len(self.blocks) - 1))

    def _to_array(self, values: Sequence[object]) -> np.ndarray:
        if self.dtype is DataType.STRING:
            return np.array(values, dtype=object)
        return np.asarray(values, dtype=self.dtype.numpy_dtype)

    def rebuild(self, values: np.ndarray, rms: Optional[ManagedStorage]) -> None:
        """Replace the whole column (vacuum): reseal everything."""
        if self.block_store is not None:
            for block in self.blocks:
                self.block_store.release(block)
        self.blocks = []
        self.zonemap = ZoneMap()
        self._tail = []
        if rms is not None:
            rms.invalidate_table(self.table_name)
        self.append(list(values), rms)

    # -- reads ----------------------------------------------------------------

    def _block_key(self, block_index: int) -> BlockKey:
        return (self.table_name, self.slice_id, self.column_name, block_index)

    def tail_values(self) -> np.ndarray:
        return self._to_array(self._tail)

    def read_ranges(self, ranges: RangeList, rms: ManagedStorage) -> np.ndarray:
        """Gather the column's values for the given local row ranges.

        Sealed blocks are fetched through managed storage exactly once
        per call (the per-access counting the cost model needs); tail
        rows are served from the insert buffer without block accounting.

        Block coverage is computed vectorially: one ``searchsorted``-style
        division maps range bounds onto block indices, each touched block
        is decoded once, and the qualifying rows of all ranges are
        gathered per block — no per-range Python loop.
        """
        if not ranges:
            return self._to_array([])
        sealed_rows = self.num_sealed_rows
        sealed_part = ranges.clip(0, sealed_rows)
        tail_part = ranges.clip(sealed_rows, self.num_rows)

        pieces: List[np.ndarray] = []
        if sealed_part:
            pieces.append(self._gather_sealed(sealed_part, rms))
        if tail_part:
            tail = self.tail_values()
            rows = tail_part.shift(-sealed_rows).to_row_ids()
            pieces.append(tail[rows])
        if not pieces:
            return self._to_array([])
        if self.dtype is DataType.STRING:
            return np.concatenate([np.asarray(p, dtype=object) for p in pieces])
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)

    def _gather_sealed(self, ranges: RangeList, rms: ManagedStorage) -> np.ndarray:
        """Decode each touched sealed block once, gather all covered rows."""
        size = self.rows_per_block
        bounds = ranges.bounds
        # Touched blocks as merged block-index intervals (vectorized).
        block_bounds = np.empty_like(bounds)
        block_bounds[:, 0] = bounds[:, 0] // size
        block_bounds[:, 1] = (bounds[:, 1] - 1) // size + 1
        touched = RangeList.from_bounds(block_bounds).to_row_ids()
        decoded = [
            rms.read_block(self._block_key(int(b)), self.blocks[int(b)])
            for b in touched
        ]
        rows = ranges.to_row_ids()
        block_of = rows // size
        offsets = rows - block_of * size
        out_dtype = object if self.dtype is DataType.STRING else decoded[0].dtype
        out = np.empty(len(rows), dtype=out_dtype)
        # rows is sorted, so each block's rows form one contiguous chunk.
        cuts = np.searchsorted(block_of, touched, side="right")
        lo = 0
        for values, hi in zip(decoded, cuts):
            out[lo:hi] = values[offsets[lo:hi]]
            lo = int(hi)
        return out

    def read_all(self, rms: ManagedStorage) -> np.ndarray:
        """Read the entire column (loads, joins on full tables)."""
        return self.read_ranges(RangeList.full(self.num_rows), rms)

    # -- block pruning ----------------------------------------------------------

    def prunable_block_ranges(self, bounds) -> RangeList:
        """Row ranges of sealed blocks that cannot contain matches.

        ``bounds`` is a :class:`repro.predicates.ast.Bounds`.  The tail
        block carries no zone map (it is still mutable), so it is never
        pruned — matching Redshift, where the insert buffer is always
        scanned.
        """
        pruned = self.zonemap.pruned_blocks(bounds)
        if not pruned.any():
            return RangeList.empty()
        # Scale merged block-index runs into row ranges in one shot;
        # adjacent pruned blocks collapse into a single range, exactly
        # like the per-block constructor used to produce.
        return RangeList.from_bounds(
            RangeList.from_mask(pruned).bounds * self.rows_per_block
        )
