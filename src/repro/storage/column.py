"""Per-slice column storage: sealed compressed blocks plus a tail buffer.

A :class:`ColumnStore` holds one column of one data slice.  Rows arrive
appended to an in-memory *tail* (Redshift's insert buffer, §4.3.1); once
the tail reaches the block size it is *sealed* into a compressed block
with a zone-map entry.  Sealed blocks are immutable; reads go through
:class:`~repro.storage.rms.ManagedStorage` so every block access is
counted.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.rowrange import RangeList
from .compression import EncodedBlock, choose_codec
from .dtypes import DataType
from .rms import BlockKey, ManagedStorage
from .zonemap import ZoneMap

__all__ = ["ColumnStore", "GrowableArray"]


class GrowableArray:
    """An amortized-append numpy array (doubling growth)."""

    __slots__ = ("_data", "_size")

    def __init__(self, dtype: np.dtype, capacity: int = 64) -> None:
        self._data = np.empty(max(capacity, 1), dtype=dtype)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def values(self) -> np.ndarray:
        """A view of the live portion (do not keep across appends)."""
        return self._data[: self._size]

    def append_many(self, values: np.ndarray) -> None:
        needed = self._size + len(values)
        if needed > len(self._data):
            capacity = max(needed, 2 * len(self._data))
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size : needed] = values
        self._size = needed

    def replace(self, values: np.ndarray) -> None:
        """Swap in entirely new contents (vacuum rebuild)."""
        self._data = np.array(values, dtype=self._data.dtype)
        self._size = len(values)


class ColumnStore:
    """One column of one slice: sealed blocks + unsealed tail."""

    def __init__(
        self,
        table_name: str,
        slice_id: int,
        column_name: str,
        dtype: DataType,
        rows_per_block: int,
    ) -> None:
        self.table_name = table_name
        self.slice_id = slice_id
        self.column_name = column_name
        self.dtype = dtype
        self.rows_per_block = rows_per_block
        self.blocks: List[EncodedBlock] = []
        self.zonemap = ZoneMap()
        self._tail: List[object] = []

    # -- size -----------------------------------------------------------------

    @property
    def num_sealed_rows(self) -> int:
        return len(self.blocks) * self.rows_per_block

    @property
    def num_rows(self) -> int:
        return self.num_sealed_rows + len(self._tail)

    @property
    def num_blocks(self) -> int:
        """Sealed blocks plus the tail counted as one open block."""
        return len(self.blocks) + (1 if self._tail else 0)

    @property
    def compressed_nbytes(self) -> int:
        """Compressed size of all sealed blocks."""
        return sum(b.nbytes for b in self.blocks)

    # -- writes ---------------------------------------------------------------

    def append(self, values: Sequence[object], rms: Optional[ManagedStorage]) -> None:
        """Append values to the tail, sealing full blocks as they fill."""
        self._tail.extend(values)
        while len(self._tail) >= self.rows_per_block:
            self._seal(self._tail[: self.rows_per_block], rms)
            del self._tail[: self.rows_per_block]

    def _seal(self, values: Sequence[object], rms: Optional[ManagedStorage]) -> None:
        array = self._to_array(values)
        self.blocks.append(choose_codec(array))
        self.zonemap.append_block(array)
        if rms is not None:
            # The rows were previously served from the tail; make sure no
            # stale decoded tail data lingers for the new block id.
            rms.invalidate_block(self._block_key(len(self.blocks) - 1))

    def _to_array(self, values: Sequence[object]) -> np.ndarray:
        if self.dtype is DataType.STRING:
            return np.array(values, dtype=object)
        return np.asarray(values, dtype=self.dtype.numpy_dtype)

    def rebuild(self, values: np.ndarray, rms: Optional[ManagedStorage]) -> None:
        """Replace the whole column (vacuum): reseal everything."""
        self.blocks = []
        self.zonemap = ZoneMap()
        self._tail = []
        if rms is not None:
            rms.invalidate_table(self.table_name)
        self.append(list(values), rms)

    # -- reads ----------------------------------------------------------------

    def _block_key(self, block_index: int) -> BlockKey:
        return (self.table_name, self.slice_id, self.column_name, block_index)

    def tail_values(self) -> np.ndarray:
        return self._to_array(self._tail)

    def read_ranges(self, ranges: RangeList, rms: ManagedStorage) -> np.ndarray:
        """Gather the column's values for the given local row ranges.

        Sealed blocks are fetched through managed storage exactly once
        per call (the per-access counting the cost model needs); tail
        rows are served from the insert buffer without block accounting.
        """
        if not ranges:
            return self._to_array([])
        pieces: List[np.ndarray] = []
        decoded: dict[int, np.ndarray] = {}
        sealed_rows = self.num_sealed_rows
        tail: Optional[np.ndarray] = None
        for r in ranges:
            cursor = r.start
            while cursor < r.end:
                if cursor >= sealed_rows:
                    if tail is None:
                        tail = self.tail_values()
                    lo = cursor - sealed_rows
                    hi = min(r.end - sealed_rows, len(tail))
                    pieces.append(tail[lo:hi])
                    cursor = r.end
                    continue
                block_index = cursor // self.rows_per_block
                block_start = block_index * self.rows_per_block
                block_end = block_start + self.rows_per_block
                values = decoded.get(block_index)
                if values is None:
                    values = rms.read_block(
                        self._block_key(block_index), self.blocks[block_index]
                    )
                    decoded[block_index] = values
                hi = min(r.end, block_end)
                pieces.append(values[cursor - block_start : hi - block_start])
                cursor = hi
        if not pieces:
            return self._to_array([])
        if self.dtype is DataType.STRING:
            return np.concatenate([np.asarray(p, dtype=object) for p in pieces])
        return np.concatenate(pieces)

    def read_all(self, rms: ManagedStorage) -> np.ndarray:
        """Read the entire column (loads, joins on full tables)."""
        return self.read_ranges(RangeList.full(self.num_rows), rms)

    # -- block pruning ----------------------------------------------------------

    def prunable_block_ranges(self, bounds) -> RangeList:
        """Row ranges of sealed blocks that cannot contain matches.

        ``bounds`` is a :class:`repro.predicates.ast.Bounds`.  The tail
        block carries no zone map (it is still mutable), so it is never
        pruned — matching Redshift, where the insert buffer is always
        scanned.
        """
        pruned = self.zonemap.pruned_blocks(bounds)
        if not pruned.any():
            return RangeList.empty()
        size = self.rows_per_block
        return RangeList(
            (int(i) * size, (int(i) + 1) * size) for i in np.flatnonzero(pruned)
        )
