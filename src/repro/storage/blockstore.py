"""Memory-mapped block store: out-of-core sealed-block payloads.

The scale-factor sweep needs tables 10–100x larger than the resident
benchmarks (240k–400k rows), which stops fitting comfortably in RAM
once every sealed block's payload is a live numpy array.  A
:class:`MemmapBlockStore` spills sealed payloads into memory-mapped
arena files: the OS pages column data in on demand and drops it under
pressure, so a scan's working set — not the table size — bounds memory.

Payloads are packed into fixed-size *segment* files, each mapped once,
with individual payloads carved out as array views.  Packing matters: a
file (and file descriptor) per payload would exhaust ``RLIMIT_NOFILE``
at exactly the scale the store exists for — a 2.4M-row table seals
~15k payload arrays but only ~a dozen segments.

Crucially, nothing above the payload changes: :func:`~.compression
.choose_codec` stamps the block's simulated compressed size
(``nbytes``, what the RMS cost model charges per remote fetch) and its
decoded-value ``checksum`` (what the resilient fetch path verifies)
*before* externalization, and both ride along untouched.  Only the
residency of the payload arrays moves from heap to mapped file.

Object-dtype payloads (string dictionaries) stay resident — memmap
needs fixed-size dtypes — as do empty arrays (zero-length mappings are
invalid).  Vacuum reseals columns through the store again; a segment
file is deleted once every payload it holds has been released.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from .compression import EncodedBlock

__all__ = ["MemmapBlockStore"]

#: Payload start offsets are rounded up to this within a segment, so a
#: view of any numeric dtype is aligned.
_ALIGN = 64


class MemmapBlockStore:
    """Spills sealed block payloads into memory-mapped arena segments.

    Args:
        directory: where segment files live (created if missing).  One
            store per database; files are named by a monotonic sequence
            so concurrent tables never collide.
        min_spill_bytes: payloads smaller than this stay resident (the
            mapping overhead isn't worth it for tiny arrays).
        segment_bytes: arena segment size.  Larger segments mean fewer
            open files; smaller segments reclaim space sooner after
            vacuum.  Payloads bigger than a segment get a dedicated
            right-sized file.
    """

    def __init__(
        self,
        directory,
        min_spill_bytes: int = 0,
        segment_bytes: int = 16 << 20,
    ) -> None:
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.min_spill_bytes = min_spill_bytes
        self.segment_bytes = segment_bytes
        self._sequence = 0
        self._segment: Optional[np.memmap] = None
        self._segment_used = 0
        # filename -> number of live spilled payloads it still holds;
        # release() unlinks a retired segment when this reaches zero.
        self._live: Dict[str, int] = {}
        # Monotonic counters (benchmarks assert spilling really happened).
        self.spilled_blocks = 0
        self.spilled_bytes = 0
        self.resident_payloads = 0

    # -- spill path ------------------------------------------------------------

    def _new_segment(self, size: int) -> np.memmap:
        path = os.path.join(self.directory, f"{self._sequence:010d}.seg")
        self._sequence += 1
        return np.memmap(path, dtype=np.uint8, mode="w+", shape=(size,))

    def _spill(self, values: np.ndarray) -> np.ndarray:
        """Copy ``values`` into an arena segment; return a read-only view."""
        nbytes = values.nbytes
        if nbytes >= self.segment_bytes:
            segment, offset = self._new_segment(nbytes), 0
        else:
            offset = -(-self._segment_used // _ALIGN) * _ALIGN
            if self._segment is None or offset + nbytes > self.segment_bytes:
                self._segment = self._new_segment(self.segment_bytes)
                self._segment_used = 0
                offset = 0
            segment = self._segment
            self._segment_used = offset + nbytes
        view = segment[offset:offset + nbytes].view(values.dtype)
        view = view.reshape(values.shape)
        view[...] = values
        view.flags.writeable = False
        self._live[segment.filename] = self._live.get(segment.filename, 0) + 1
        self.spilled_bytes += nbytes
        return view

    def externalize(self, block: EncodedBlock) -> EncodedBlock:
        """Rewrite ``block`` with its payload arrays spilled to disk.

        Called at seal time, before the block is ever read; ``nbytes``
        and ``checksum`` are preserved verbatim, so cost accounting and
        CRC verification are unaffected.
        """
        payload: List[np.ndarray] = []
        spilled = False
        for values in block.payload:
            if (
                values.dtype == object
                or values.size == 0
                or values.nbytes < self.min_spill_bytes
            ):
                self.resident_payloads += 1
                payload.append(values)
                continue
            payload.append(self._spill(values))
            spilled = True
        if not spilled:
            return block
        self.spilled_blocks += 1
        return replace(block, payload=tuple(payload))

    # -- reclamation -----------------------------------------------------------

    def release(self, block: EncodedBlock) -> None:
        """Drop a superseded block's spilled payloads (vacuum reseal).

        Decrements the owning segments' live counts; a fully-released
        segment that is no longer accepting new payloads is unlinked.
        """
        current = self._segment.filename if self._segment is not None else None
        for values in block.payload:
            filename = getattr(values, "filename", None)
            if filename is None or filename not in self._live:
                continue
            self._live[filename] -= 1
            if self._live[filename] > 0 or filename == current:
                continue
            del self._live[filename]
            try:
                os.unlink(filename)
            except OSError:
                # The file may already be gone (double release, or the
                # whole directory was torn down); spill files are a
                # cache of resident data, so this is never fatal.
                continue

    def spilled_fraction(self, total_bytes: Optional[int] = None) -> float:
        """Spilled bytes as a fraction of ``total_bytes`` (if given)."""
        if not total_bytes:
            return 0.0
        return self.spilled_bytes / total_bytes
