"""Block compression codecs.

Redshift compresses column blocks with codecs like frame-of-reference,
run-length, and dictionary encoding (§4.2.2).  We implement the same
family over numpy arrays:

* :class:`PlainCodec`            — no compression (floats, fallback),
* :class:`RunLengthCodec`        — (value, run length) pairs,
* :class:`FrameOfReferenceCodec` — subtract min, bit-pack the deltas,
* :class:`DictionaryCodec`       — small distinct domains to packed codes.

``choose_codec`` picks the smallest encoding for a block, mirroring
Redshift's per-column ``ANALYZE COMPRESSION``.  Encoded blocks know their
compressed byte size, which drives the storage cost model: a *worse*
compression ratio means *more blocks* for the same rows — the effect the
paper observes for predicate sorting (§5.6).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "EncodedBlock",
    "Codec",
    "PlainCodec",
    "RunLengthCodec",
    "FrameOfReferenceCodec",
    "DictionaryCodec",
    "choose_codec",
    "CODECS",
    "array_checksum",
]


@dataclass(frozen=True, slots=True)
class EncodedBlock:
    """An immutable compressed block of one column.

    ``payload`` holds codec-specific arrays; ``nbytes`` is the simulated
    compressed size (what the block occupies on managed storage).
    ``checksum`` covers the *decoded* values (length included, so a
    truncated read is caught); blocks built outside :func:`choose_codec`
    carry None and skip verification.
    """

    codec_name: str
    num_values: int
    payload: Tuple[np.ndarray, ...]
    nbytes: int
    checksum: Optional[int] = None


def array_checksum(values: np.ndarray) -> int:
    """CRC32 over a value array, prefixed with its length.

    The length prefix makes truncation detectable even when the kept
    prefix's bytes are unchanged.
    """
    state = zlib.crc32(len(values).to_bytes(8, "little"))
    if values.dtype == object:
        for value in values:
            state = zlib.crc32(str(value).encode("utf-8", "surrogatepass"), state)
        return state
    return zlib.crc32(np.ascontiguousarray(values).tobytes(), state)


class Codec:
    """Interface for block codecs."""

    name: str = "abstract"

    def encode(self, values: np.ndarray) -> Optional[EncodedBlock]:
        """Encode, or return None if this codec cannot encode the input."""
        raise NotImplementedError

    def decode(self, block: EncodedBlock) -> np.ndarray:
        raise NotImplementedError


class PlainCodec(Codec):
    """Uncompressed storage; encodes anything."""

    name = "plain"

    def encode(self, values: np.ndarray) -> EncodedBlock:
        values = np.ascontiguousarray(values)
        return EncodedBlock(
            codec_name=self.name,
            num_values=len(values),
            payload=(values.copy(),),
            nbytes=int(values.nbytes),
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        return block.payload[0]


class RunLengthCodec(Codec):
    """Run-length encoding: arrays of run values and run lengths."""

    name = "rle"

    def encode(self, values: np.ndarray) -> Optional[EncodedBlock]:
        if len(values) == 0:
            return EncodedBlock(self.name, 0, (values.copy(), values[:0]), 0)
        change = np.flatnonzero(values[1:] != values[:-1]) + 1
        starts = np.concatenate(([0], change))
        run_values = values[starts]
        lengths = np.diff(np.concatenate((starts, [len(values)])))
        nbytes = int(run_values.nbytes + 4 * len(lengths))
        return EncodedBlock(
            codec_name=self.name,
            num_values=len(values),
            payload=(run_values, lengths.astype(np.int64)),
            nbytes=nbytes,
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        run_values, lengths = block.payload
        return np.repeat(run_values, lengths)


def _bits_needed(max_value: int) -> int:
    """Bits required to represent values in ``[0, max_value]``."""
    if max_value <= 0:
        return 1
    return int(max_value).bit_length()


class FrameOfReferenceCodec(Codec):
    """Frame of reference: store min and bit-packed deltas.

    We keep the deltas in the narrowest numpy integer width that fits
    and account ``nbytes`` at exact bit granularity, approximating real
    bit-packing without per-value Python loops.
    """

    name = "for"

    def encode(self, values: np.ndarray) -> Optional[EncodedBlock]:
        if not np.issubdtype(values.dtype, np.integer) or len(values) == 0:
            return None
        lo = int(values.min())
        hi = int(values.max())
        span = hi - lo
        if span >= 2**32:
            return None  # no gain over plain
        deltas = (values.astype(np.int64) - lo).astype(np.uint32)
        bits = _bits_needed(span)
        nbytes = 8 + (bits * len(values) + 7) // 8
        reference = np.array([lo], dtype=np.int64)
        return EncodedBlock(
            codec_name=self.name,
            num_values=len(values),
            payload=(reference, deltas),
            nbytes=int(nbytes),
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        reference, deltas = block.payload
        return deltas.astype(np.int64) + int(reference[0])


class DictionaryCodec(Codec):
    """Dictionary encoding for blocks with few distinct values.

    Works for any dtype (it is the only codec for string blocks).  Gives
    up when the dictionary would exceed ``max_card`` entries.
    """

    name = "dict"

    def __init__(self, max_card: int = 4096) -> None:
        self.max_card = max_card

    def encode(self, values: np.ndarray) -> Optional[EncodedBlock]:
        if len(values) == 0:
            return EncodedBlock(self.name, 0, (values.copy(), values[:0]), 0)
        dictionary, codes = np.unique(values, return_inverse=True)
        if len(dictionary) > self.max_card:
            return None
        bits = _bits_needed(len(dictionary) - 1)
        if dictionary.dtype == object:
            dict_bytes = sum(len(str(v)) for v in dictionary)
        else:
            dict_bytes = int(dictionary.nbytes)
        nbytes = dict_bytes + (bits * len(values) + 7) // 8
        return EncodedBlock(
            codec_name=self.name,
            num_values=len(values),
            payload=(dictionary, codes.astype(np.int32)),
            nbytes=int(nbytes),
        )

    def decode(self, block: EncodedBlock) -> np.ndarray:
        dictionary, codes = block.payload
        return dictionary[codes]


CODECS = {
    "plain": PlainCodec(),
    "rle": RunLengthCodec(),
    "for": FrameOfReferenceCodec(),
    "dict": DictionaryCodec(),
}


def choose_codec(values: np.ndarray) -> EncodedBlock:
    """Encode a block with the smallest applicable codec.

    Strings only admit dictionary or plain; numerics try all codecs and
    keep the smallest output (ties go to plain for cheap decode).
    """
    if values.dtype == object:
        encoded = CODECS["dict"].encode(values)
        if encoded is None:
            # High-cardinality string block: account average string bytes.
            nbytes = sum(len(str(v)) for v in values)
            encoded = EncodedBlock(
                "plain", len(values), (values.copy(),), int(nbytes)
            )
        return replace(encoded, checksum=array_checksum(values))
    best = CODECS["plain"].encode(values)
    for name in ("rle", "for", "dict"):
        candidate = CODECS[name].encode(values)
        if candidate is not None and candidate.nbytes < best.nbytes:
            best = candidate
    # Checksum the *decoded* form so verification after a fetch compares
    # byte-identical data even for codecs that widen dtypes (FOR decodes
    # to int64 whatever width came in).
    return replace(best, checksum=array_checksum(decode_block(best)))


def decode_block(block: EncodedBlock) -> np.ndarray:
    """Decode any encoded block back to its value array."""
    return CODECS[block.codec_name].decode(block)
