"""Data slices: the unit of distribution and scanning.

Redshift splits every relation into data slices assigned to compute
nodes (§4.2.1).  Each :class:`DataSlice` owns its rows end-to-end:
column stores, MVCC timestamps, and local row numbering starting at 0.
Appends always go to the slice's end, which is the property that keeps
predicate-cache entries valid under inserts (§4.3.1).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..core.rowrange import RangeList
from .column import ColumnStore, GrowableArray
from .dtypes import DataType
from .rms import ManagedStorage

__all__ = ["DataSlice", "INFINITY_TX"]

# Sentinel "never deleted" transaction id.
INFINITY_TX = np.iinfo(np.int64).max


class DataSlice:
    """One data slice of one table."""

    def __init__(
        self,
        table_name: str,
        slice_id: int,
        columns: Mapping[str, DataType],
        rows_per_block: int,
        block_store=None,
    ) -> None:
        self.table_name = table_name
        self.slice_id = slice_id
        self.rows_per_block = rows_per_block
        self.columns: Dict[str, ColumnStore] = {
            name: ColumnStore(
                table_name, slice_id, name, dtype, rows_per_block,
                block_store=block_store,
            )
            for name, dtype in columns.items()
        }
        self._xmin = GrowableArray(np.dtype(np.int64))
        self._xmax = GrowableArray(np.dtype(np.int64))
        self.num_rows = 0

    # -- writes -----------------------------------------------------------------

    def append_rows(
        self,
        rows: Mapping[str, Sequence[object]],
        txid: int,
        rms: Optional[ManagedStorage],
    ) -> RangeList:
        """Append rows (column name -> values), returning their local range."""
        lengths = {name: len(values) for name, values in rows.items()}
        if set(rows) != set(self.columns):
            missing = set(self.columns) - set(rows)
            extra = set(rows) - set(self.columns)
            raise ValueError(
                f"column mismatch appending to {self.table_name}: "
                f"missing {sorted(missing)}, unexpected {sorted(extra)}"
            )
        distinct = set(lengths.values())
        if len(distinct) > 1:
            raise ValueError(f"ragged append: column lengths {lengths}")
        count = distinct.pop() if distinct else 0
        if count == 0:
            return RangeList.empty()
        for name, values in rows.items():
            self.columns[name].append(values, rms)
        self._xmin.append_many(np.full(count, txid, dtype=np.int64))
        self._xmax.append_many(np.full(count, INFINITY_TX, dtype=np.int64))
        start = self.num_rows
        self.num_rows += count
        return RangeList([(start, start + count)])

    def mark_deleted(self, local_rows: np.ndarray, txid: int) -> int:
        """MVCC delete: set xmax for still-visible rows; returns count."""
        local_rows = np.asarray(local_rows, dtype=np.int64)
        xmax = self._xmax.values
        alive = local_rows[xmax[local_rows] == INFINITY_TX]
        xmax[alive] = txid
        return int(len(alive))

    # -- visibility ----------------------------------------------------------------

    def visibility_mask(self, ranges: RangeList, txid: int) -> np.ndarray:
        """Visibility of each row in ``ranges`` (concatenated order).

        A row is visible to ``txid`` when it was created by a
        transaction ``<= txid`` and not deleted by one ``<= txid``.
        """
        rows = ranges.to_row_ids()
        xmin = self._xmin.values[rows]
        xmax = self._xmax.values[rows]
        return (xmin <= txid) & (xmax > txid)

    def visible_row_count(self, txid: int) -> int:
        xmin = self._xmin.values
        xmax = self._xmax.values
        return int(np.count_nonzero((xmin <= txid) & (xmax > txid)))

    def deleted_row_ids(self, horizon_txid: int) -> np.ndarray:
        """Rows deleted and invisible to every transaction >= horizon."""
        return np.flatnonzero(self._xmax.values < horizon_txid)

    # -- vacuum ------------------------------------------------------------------

    def vacuum(self, horizon_txid: int, rms: Optional[ManagedStorage]) -> bool:
        """Physically remove globally invisible rows; True if changed.

        Vacuum rewrites the slice with new (dense) row numbering, which
        is exactly the event that invalidates predicate-cache entries
        (§4.3.2) — the table layer broadcasts it to listeners.
        """
        dead = self._xmax.values < horizon_txid
        if not dead.any():
            return False
        keep = ~dead
        keep_rows = np.flatnonzero(keep)
        full = RangeList.full(self.num_rows)
        for column in self.columns.values():
            values = column.read_ranges(full, rms) if rms else _raw_read(column)
            column.rebuild(values[keep_rows], rms)
        self._xmin.replace(self._xmin.values[keep_rows])
        self._xmax.replace(self._xmax.values[keep_rows])
        self.num_rows = int(len(keep_rows))
        return True

    # -- introspection ------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Blocks of the widest materialized representation (per column max)."""
        if not self.columns:
            return 0
        return max(column.num_blocks for column in self.columns.values())

    def compressed_nbytes(self) -> int:
        return sum(column.compressed_nbytes for column in self.columns.values())


def _raw_read(column: ColumnStore) -> np.ndarray:
    """Read a whole column without storage accounting (vacuum internals)."""
    from .compression import decode_block

    pieces = [decode_block(b) for b in column.blocks]
    pieces.append(column.tail_values())
    if column.dtype is DataType.STRING:
        return np.concatenate([np.asarray(p, dtype=object) for p in pieces])
    return np.concatenate(pieces) if pieces else column.tail_values()
