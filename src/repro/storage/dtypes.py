"""Column data types.

The engine supports four logical types, all backed by numpy arrays:

* ``INT64``   — 64-bit integers,
* ``FLOAT64`` — 64-bit floats (used for decimals; TPC-H prices etc.),
* ``STRING``  — strings, stored dictionary-encoded (codes + dictionary),
* ``DATE``    — days since 1970-01-01, stored as int64.

Dates are integers internally so that range predicates over dates are
ordinary integer comparisons, exactly like Redshift's date encoding.
"""

from __future__ import annotations

import datetime as _dt
from enum import Enum
from typing import Union

import numpy as np

__all__ = ["DataType", "date_to_days", "days_to_date", "EPOCH"]

EPOCH = _dt.date(1970, 1, 1)


class DataType(Enum):
    """Logical column type."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"

    @property
    def numpy_dtype(self) -> np.dtype:
        """Physical numpy dtype of the decoded column values."""
        if self in (DataType.INT64, DataType.DATE):
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        # Strings decode to object arrays; most operations run on the
        # dictionary codes instead.
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64, DataType.DATE)

    @property
    def value_size(self) -> int:
        """Uncompressed bytes per value (strings: average estimate)."""
        if self is DataType.STRING:
            return 16
        return 8


def date_to_days(value: Union[str, _dt.date, int]) -> int:
    """Convert a date (``'1995-01-31'``, date object, or days) to days.

    Example:
        >>> date_to_days("1970-01-11")
        10
    """
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    return (value - EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Inverse of :func:`date_to_days`."""
    return EPOCH + _dt.timedelta(days=int(days))
