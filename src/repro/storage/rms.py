"""Managed storage: the block-fetch layer and its cost accounting.

Redshift compute nodes download column blocks from Redshift Managed
Storage (RMS, backed by S3) and cache them on local SSD (§4.2.1).  The
reproduction models this as a decoded-block cache in front of the sealed
blocks: the first access to a block is a *remote fetch* (slow, counted),
later accesses are *local hits* (fast, counted) until the block is
evicted (LRU by capacity) or invalidated (vacuum/reseal).

`StorageStats` is the ground truth behind the paper's "blocks accessed"
columns: every experiment reads these counters rather than timing alone,
so the reproduction's comparisons are exact even where wall-clock is not.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..faults import (
    FaultInjector,
    RetryBudgetExceeded,
    RetryPolicy,
    TransientStorageError,
)
from .compression import EncodedBlock, array_checksum, decode_block

__all__ = ["BlockKey", "ManagedStorage", "StorageStats"]

# (table, slice, column, block index) uniquely names a block.
BlockKey = Tuple[str, int, str, int]


@dataclass
class StorageStats:
    """Monotonic counters of storage traffic and read resilience.

    Snapshot-and-subtract via :meth:`delta` to measure one query.
    """

    remote_fetches: int = 0
    local_hits: int = 0
    bytes_fetched: int = 0
    blocks_invalidated: int = 0
    # Resilience counters: all zero unless a FaultInjector is attached.
    transient_errors: int = 0
    corrupt_blocks: int = 0
    retries: int = 0
    retry_giveups: int = 0
    backoff_model_seconds: float = 0.0

    @property
    def blocks_accessed(self) -> int:
        """Total block reads (remote + local), the paper's metric."""
        return self.remote_fetches + self.local_hits

    def snapshot(self) -> "StorageStats":
        return StorageStats(**vars(self))

    def delta(self, before: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return StorageStats(
            **{k: v - getattr(before, k) for k, v in vars(self).items()}
        )


class ManagedStorage:
    """Decoded-block cache with remote-fetch accounting.

    Args:
        cache_capacity: number of decoded blocks kept locally (LRU).
            ``None`` means unbounded (everything fits on local SSD, the
            common case for the scaled-down benchmarks).
    """

    def __init__(self, cache_capacity: Optional[int] = None) -> None:
        self._cache: "OrderedDict[BlockKey, np.ndarray]" = OrderedDict()
        self.cache_capacity = cache_capacity
        self.stats = StorageStats()
        self.fault_injector: Optional[FaultInjector] = None
        self.retry_policy = RetryPolicy()
        self._retry_budget_left: Optional[int] = None
        # Resolved once at attach time so the per-fetch check is a
        # single attribute load ("no faults configured" costs nothing).
        self._faults_armed = False

    # -- fault wiring ----------------------------------------------------------

    def attach_faults(
        self,
        injector: Optional[FaultInjector],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Arm (or, with None, disarm) fault injection on remote fetches."""
        self.fault_injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy
        self._faults_armed = injector is not None and injector.can_fault
        self.reset_retry_budget()

    def reset_retry_budget(self) -> None:
        """Start a fresh per-query retry budget (no-op when unlimited)."""
        self._retry_budget_left = self.retry_policy.retry_budget

    def read_block(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Read a block's decoded values, counting the access."""
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.local_hits += 1
            return cached
        if not self._faults_armed:
            values = decode_block(block)
        else:
            values = self._fetch_resilient(key, block)
        self.stats.remote_fetches += 1
        self.stats.bytes_fetched += block.nbytes
        self._cache[key] = values
        if self.cache_capacity is not None and len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return values

    def _fetch_resilient(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Fetch under fault injection: verify, retry with backoff, give up.

        Every attempt consults the injector; returned payloads are
        checksum-verified, so a corrupted fetch is *never* handed to a
        scan — it is retried like a transient error.  Exhausting
        ``max_attempts`` or the per-query retry budget raises (the last
        rung of the degradation ladder).
        """
        injector = self.fault_injector
        policy = self.retry_policy
        stats = self.stats
        attempt = 0
        while True:
            decision = injector.draw()
            if decision.latency_seconds:
                stats.backoff_model_seconds += decision.latency_seconds
            if decision.fail:
                stats.transient_errors += 1
            else:
                values = decode_block(block)
                if decision.corrupt:
                    values = injector.corrupt_array(values)
                if block.checksum is None or array_checksum(values) == block.checksum:
                    return values
                stats.corrupt_blocks += 1
            attempt += 1
            if attempt >= policy.max_attempts:
                stats.retry_giveups += 1
                raise TransientStorageError(
                    f"block {key} unreadable after {attempt} attempts"
                )
            if self._retry_budget_left is not None:
                if self._retry_budget_left <= 0:
                    stats.retry_giveups += 1
                    raise RetryBudgetExceeded(
                        f"query retry budget exhausted fetching block {key}"
                    )
                self._retry_budget_left -= 1
            stats.retries += 1
            stats.backoff_model_seconds += policy.backoff_seconds(
                attempt - 1, injector.uniform()
            )

    def invalidate_table(self, table_name: str) -> None:
        """Drop all cached blocks of one table (vacuum / reseal)."""
        stale = [k for k in self._cache if k[0] == table_name]
        for key in stale:
            del self._cache[key]
        self.stats.blocks_invalidated += len(stale)

    def invalidate_block(self, key: BlockKey) -> None:
        """Drop one cached block (a tail block being resealed)."""
        if self._cache.pop(key, None) is not None:
            self.stats.blocks_invalidated += 1

    def clear(self) -> None:
        """Drop the whole local cache (simulates a cold node)."""
        self._cache.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)
