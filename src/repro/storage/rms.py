"""Managed storage: the block-fetch layer and its cost accounting.

Redshift compute nodes download column blocks from Redshift Managed
Storage (RMS, backed by S3) and cache them on local SSD (§4.2.1).  The
reproduction models this as a decoded-block cache in front of the sealed
blocks: the first access to a block is a *remote fetch* (slow, counted),
later accesses are *local hits* (fast, counted) until the block is
evicted (LRU by capacity) or invalidated (vacuum/reseal).

`StorageStats` is the ground truth behind the paper's "blocks accessed"
columns: every experiment reads these counters rather than timing alone,
so the reproduction's comparisons are exact even where wall-clock is not.

Concurrency model (DESIGN.md §12):

* **Scan phases are thread-bound.**  The parallel scan executor
  brackets the slice fan-out with :meth:`ManagedStorage.begin_scan_phase`
  / :meth:`end_scan_phase`; the phase is bound to the *coordinating
  thread*, and its worker threads adopt it for the duration of one
  slice task (:meth:`adopt_scan_context` / :meth:`release_scan_context`).
  Concurrent queries from a serving layer each run their own phase on
  their own thread — phases no longer exclude each other globally, only
  per thread (a phase still must not nest on one thread).
* **Phased LRU settlement.**  During a phase, block accesses are
  recorded per slice instead of immediately reordering the LRU, and
  capacity eviction is deferred to the barrier, where the log is
  replayed in slice-major order — so the cache end-state (and therefore
  the remote/local fetch split of every later query) depends only on
  *what* the scan read, never on how worker threads interleaved.
  Serial scans run the same phased path, which keeps the two modes
  bit-identical by construction.  Within a scan a block key belongs to
  exactly one slice, so one phase's reads never race on the same key.
* **One storage lock.**  A single always-on ``threading.Lock`` guards
  the decoded-block cache, the stats counters, and the per-query stat
  sinks.  Decode work and fetch-latency sleeps run *outside* the lock,
  so remote fetches still overlap across workers and across queries.
  Two threads missing the same block concurrently may both fetch it
  (both count a remote fetch) — the same duplicated round trip a real
  node cache exhibits; workloads that need exact per-query counters
  keep their tables disjoint.
* **Per-query accounting.**  :meth:`begin_query` binds a
  :class:`QueryStorageContext` to the calling thread: a private
  ``StorageStats`` sink mirroring every counter the thread (and any
  worker that adopted its context) touches, plus the per-query retry
  budget.  The engine reads a query's storage counters from its
  context instead of diffing the global stats — which concurrent
  queries would pollute.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..faults import (
    FaultInjector,
    RetryBudgetExceeded,
    RetryPolicy,
    TransientStorageError,
    quantize_model_seconds,
)
from .compression import EncodedBlock, array_checksum, decode_block

__all__ = ["BlockKey", "ManagedStorage", "QueryStorageContext", "StorageStats"]

# (table, slice, column, block index) uniquely names a block.
BlockKey = Tuple[str, int, str, int]


@dataclass
class StorageStats:
    """Monotonic counters of storage traffic and read resilience.

    Snapshot-and-subtract via :meth:`delta` to measure one serial
    query; concurrent queries read their own
    :class:`QueryStorageContext` sink instead.
    """

    remote_fetches: int = 0
    local_hits: int = 0
    bytes_fetched: int = 0
    blocks_invalidated: int = 0
    # Resilience counters: all zero unless a FaultInjector is attached.
    transient_errors: int = 0
    corrupt_blocks: int = 0
    retries: int = 0
    retry_giveups: int = 0
    backoff_model_seconds: float = 0.0

    @property
    def blocks_accessed(self) -> int:
        """Total block reads (remote + local), the paper's metric."""
        return self.remote_fetches + self.local_hits

    def snapshot(self) -> "StorageStats":
        return StorageStats(**vars(self))

    def delta(self, before: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return StorageStats(
            **{k: v - getattr(before, k) for k, v in vars(self).items()}
        )


class QueryStorageContext:
    """Per-query storage accounting, bound to the executing thread.

    Created by :meth:`ManagedStorage.begin_query`.  ``stats`` mirrors
    every storage counter the query's threads touch (its private sink —
    unpolluted by concurrent queries sharing the storage), and
    ``retry_budget_left`` is the query's fault-retry allowance.
    """

    __slots__ = ("stats", "retry_budget_left", "_prev")

    def __init__(self, retry_budget: Optional[int]) -> None:
        self.stats = StorageStats()
        self.retry_budget_left = retry_budget
        self._prev: Optional["QueryStorageContext"] = None


class _ScanPhase:
    """Deferred-eviction bookkeeping for one table scan (see module doc).

    The access log is guarded by the owning storage's lock, not a
    per-phase lock: concurrent phases from different queries interleave
    on the same decoded-block cache, so one lock must order them all.
    """

    __slots__ = ("accesses",)

    def __init__(self) -> None:
        self.accesses: Dict[int, List[BlockKey]] = {}


class ManagedStorage:
    """Decoded-block cache with remote-fetch accounting.

    Args:
        cache_capacity: number of decoded blocks kept locally (LRU).
            ``None`` means unbounded (everything fits on local SSD, the
            common case for the scaled-down benchmarks).

    ``fetch_delay_seconds`` (default 0.0 — no sleeps anywhere) is an
    opt-in *wall-clock* cost per remote fetch, modeling the network
    round trip to managed storage.  The parallel-scan and serving
    benchmarks use it to measure latency hiding: sleeps run outside the
    storage lock, so they overlap across workers and across concurrent
    queries the way real S3 round trips would.  It never affects
    counters or model time.
    """

    def __init__(self, cache_capacity: Optional[int] = None) -> None:
        self._cache: "OrderedDict[BlockKey, np.ndarray]" = OrderedDict()
        self.cache_capacity = cache_capacity
        self.stats = StorageStats()
        self.fault_injector: Optional[FaultInjector] = None
        self.retry_policy = RetryPolicy()
        # Fallback retry budget for callers that never bind a query
        # context (direct ManagedStorage use in tests/tools).
        self._retry_budget_left: Optional[int] = None
        # Resolved once at attach time so the per-fetch check is a
        # single attribute load ("no faults configured" costs nothing).
        self._faults_armed = False
        self.fetch_delay_seconds = 0.0
        # One always-on lock guards the decoded-block cache, the global
        # stats, per-query sinks, fetch ordinals, and retry budgets.
        # Decode + injected sleeps run outside it (see module doc).
        self._lock = threading.Lock()
        # Thread-bound execution state: .phase (the active _ScanPhase)
        # and .query (the active QueryStorageContext) of each thread.
        self._local = threading.local()
        self._fetch_ordinals: Dict[BlockKey, int] = {}

    # -- fault wiring ----------------------------------------------------------

    def attach_faults(
        self,
        injector: Optional[FaultInjector],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Arm (or, with None, disarm) fault injection on remote fetches."""
        self.fault_injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy
        self._faults_armed = injector is not None and injector.can_fault
        self.reset_retry_budget()

    def reset_retry_budget(self) -> None:
        """Reset the fallback retry budget (no-op when unlimited).

        Queries executed through the engine get a fresh budget on their
        :class:`QueryStorageContext` instead; this fallback covers
        direct storage use with no bound query.
        """
        self._retry_budget_left = self.retry_policy.retry_budget

    # -- per-query accounting --------------------------------------------------

    def begin_query(self) -> QueryStorageContext:
        """Bind a fresh per-query storage context to this thread.

        Every storage counter the thread (and any worker adopting the
        context via :meth:`adopt_scan_context`) touches until
        :meth:`end_query` is mirrored into the context's private
        ``stats``.  Contexts save and restore the previous binding, so
        a nested bind (re-entrant engine use) is safe.
        """
        context = QueryStorageContext(self.retry_policy.retry_budget)
        context._prev = getattr(self._local, "query", None)
        self._local.query = context
        return context

    def end_query(self, context: QueryStorageContext) -> None:
        """Unbind ``context``, restoring the thread's previous binding."""
        self._local.query = context._prev

    def current_query_context(self) -> Optional[QueryStorageContext]:
        """The query context bound to the calling thread, if any."""
        return getattr(self._local, "query", None)

    # -- scan phases (deferred LRU settlement) ---------------------------------

    def begin_scan_phase(self, concurrent: bool = False) -> _ScanPhase:
        """Start access logging for one table scan (see module doc).

        The phase is bound to the calling (coordinator) thread; worker
        threads adopt it per task via :meth:`adopt_scan_context`.
        Phases do not nest on one thread — a scan owns its thread's
        storage view until its barrier calls :meth:`end_scan_phase`.
        ``concurrent`` is accepted for compatibility; the storage lock
        now serializes phase bookkeeping in both modes.
        """
        del concurrent
        if getattr(self._local, "phase", None) is not None:
            raise RuntimeError("a scan phase is already active")
        phase = _ScanPhase()
        self._local.phase = phase
        return phase

    def end_scan_phase(self) -> Dict[int, int]:
        """Settle the phase's LRU effects; return per-slice access counts.

        Replays the access log in slice-major order — recency updates
        first, then capacity eviction — which is exactly the order the
        serial loop would have produced, whatever order worker threads
        actually ran in.  The returned ``{slice_id: blocks_accessed}``
        feeds the per-slice tracer spans.
        """
        phase = getattr(self._local, "phase", None)
        if phase is None:
            raise RuntimeError("no scan phase is active")
        self._local.phase = None
        counts: Dict[int, int] = {}
        with self._lock:
            for slice_id in sorted(phase.accesses):
                keys = phase.accesses[slice_id]
                counts[slice_id] = len(keys)
                for key in keys:
                    if key in self._cache:
                        self._cache.move_to_end(key)
            if self.cache_capacity is not None:
                while len(self._cache) > self.cache_capacity:
                    self._cache.popitem(last=False)
        return counts

    def adopt_scan_context(
        self,
        phase: Optional[_ScanPhase],
        query: Optional[QueryStorageContext],
    ) -> Tuple[Optional[_ScanPhase], Optional[QueryStorageContext]]:
        """Bind a coordinator's (phase, query context) onto this thread.

        Called at the top of each worker task so the worker's block
        reads land in the dispatching scan's access log and query sink.
        Returns the thread's previous bindings; pass them back to
        :meth:`release_scan_context` when the task ends — pool threads
        are shared across scans (and the inline-execution path runs the
        task on the coordinator thread itself), so save/restore is
        mandatory, not optional.
        """
        local = self._local
        previous = (
            getattr(local, "phase", None),
            getattr(local, "query", None),
        )
        local.phase = phase
        local.query = query
        return previous

    def release_scan_context(
        self,
        previous: Tuple[Optional[_ScanPhase], Optional[QueryStorageContext]],
    ) -> None:
        """Restore the bindings :meth:`adopt_scan_context` displaced."""
        self._local.phase, self._local.query = previous

    # -- the read path ---------------------------------------------------------

    def _bump(self, name: str, amount) -> None:
        """Count into the global stats and the bound query's sink.

        Caller holds ``_lock``.
        """
        stats = self.stats
        setattr(stats, name, getattr(stats, name) + amount)
        query = getattr(self._local, "query", None)
        if query is not None:
            sink = query.stats
            setattr(sink, name, getattr(sink, name) + amount)

    def read_block(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Read a block's decoded values, counting the access."""
        phase = getattr(self._local, "phase", None)
        if phase is not None:
            return self._read_block_phased(phase, key, block)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._bump("local_hits", 1)
                return cached
        values = self._fetch(key, block)
        with self._lock:
            self._bump("remote_fetches", 1)
            self._bump("bytes_fetched", block.nbytes)
            self._cache[key] = values
            if (
                self.cache_capacity is not None
                and len(self._cache) > self.cache_capacity
            ):
                self._cache.popitem(last=False)
        return values

    def _read_block_phased(
        self, phase: _ScanPhase, key: BlockKey, block: EncodedBlock
    ) -> np.ndarray:
        """Phase-mode read: log the access, defer LRU movement/eviction."""
        with self._lock:
            phase.accesses.setdefault(key[1], []).append(key)
            cached = self._cache.get(key)
            if cached is not None:
                self._bump("local_hits", 1)
                return cached
        # Decode (and any fault machinery) runs outside the storage lock
        # so fetches genuinely overlap across workers and queries.
        values = self._fetch(key, block)
        with self._lock:
            self._bump("remote_fetches", 1)
            self._bump("bytes_fetched", block.nbytes)
            self._cache[key] = values
        return values

    def _fetch(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        if self.fetch_delay_seconds > 0.0:
            time.sleep(self.fetch_delay_seconds)
        if not self._faults_armed:
            return decode_block(block)
        return self._fetch_resilient(key, block)

    def _spend_retry_locked(self) -> bool:
        """Consume one retry from the bound budget; True when exhausted.

        Caller holds ``_lock``.  The budget lives on the thread's query
        context when one is bound, else on the storage-wide fallback.
        """
        query = getattr(self._local, "query", None)
        if query is not None:
            if query.retry_budget_left is None:
                return False
            if query.retry_budget_left <= 0:
                return True
            query.retry_budget_left -= 1
            return False
        if self._retry_budget_left is None:
            return False
        if self._retry_budget_left <= 0:
            return True
        self._retry_budget_left -= 1
        return False

    def _fetch_resilient(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Fetch under fault injection: verify, retry with backoff, give up.

        Every attempt consults the injector; returned payloads are
        checksum-verified, so a corrupted fetch is *never* handed to a
        scan — it is retried like a transient error.  Exhausting
        ``max_attempts`` or the per-query retry budget raises (the last
        rung of the degradation ladder).

        Probability-mode verdicts come from per-attempt keyed streams
        (:meth:`FaultInjector.fetch_stream`): the fault pattern is a
        function of which fetch of which block this is, not of thread
        interleaving.  Model-time addends are quantized so the float
        accumulation is order-independent too.  Schedule-mode injectors
        keep the sequential draw their schedules index.
        """
        injector = self.fault_injector
        policy = self.retry_policy
        keyed = injector.schedule is None
        with self._lock:
            ordinal = self._fetch_ordinals.get(key, 0)
            self._fetch_ordinals[key] = ordinal + 1
        attempt = 0
        while True:
            if keyed:
                stream = injector.fetch_stream(key, ordinal, attempt)
                decision = injector.draw_keyed(stream)
            else:
                stream = None
                decision = injector.draw()
            if decision.latency_seconds:
                with self._lock:
                    self._bump(
                        "backoff_model_seconds",
                        quantize_model_seconds(decision.latency_seconds),
                    )
            if decision.fail:
                with self._lock:
                    self._bump("transient_errors", 1)
            else:
                values = decode_block(block)
                if decision.corrupt:
                    values = injector.corrupt_array(values, stream)
                if block.checksum is None or array_checksum(values) == block.checksum:
                    return values
                with self._lock:
                    self._bump("corrupt_blocks", 1)
            attempt += 1
            if attempt >= policy.max_attempts:
                with self._lock:
                    self._bump("retry_giveups", 1)
                raise TransientStorageError(
                    f"block {key} unreadable after {attempt} attempts"
                )
            jitter = stream.random() if stream is not None else injector.uniform()
            with self._lock:
                if self._spend_retry_locked():
                    self._bump("retry_giveups", 1)
                    raise RetryBudgetExceeded(
                        f"query retry budget exhausted fetching block {key}"
                    )
                self._bump("retries", 1)
                self._bump(
                    "backoff_model_seconds",
                    quantize_model_seconds(
                        policy.backoff_seconds(attempt - 1, jitter)
                    ),
                )

    def invalidate_table(self, table_name: str) -> None:
        """Drop all cached blocks of one table (vacuum / reseal)."""
        with self._lock:
            stale = [k for k in self._cache if k[0] == table_name]
            for key in stale:
                del self._cache[key]
            self._bump("blocks_invalidated", len(stale))

    def invalidate_block(self, key: BlockKey) -> None:
        """Drop one cached block (a tail block being resealed)."""
        with self._lock:
            if self._cache.pop(key, None) is not None:
                self._bump("blocks_invalidated", 1)

    def clear(self) -> None:
        """Drop the whole local cache (simulates a cold node)."""
        with self._lock:
            self._cache.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)
