"""Managed storage: the block-fetch layer and its cost accounting.

Redshift compute nodes download column blocks from Redshift Managed
Storage (RMS, backed by S3) and cache them on local SSD (§4.2.1).  The
reproduction models this as a decoded-block cache in front of the sealed
blocks: the first access to a block is a *remote fetch* (slow, counted),
later accesses are *local hits* (fast, counted) until the block is
evicted (LRU by capacity) or invalidated (vacuum/reseal).

`StorageStats` is the ground truth behind the paper's "blocks accessed"
columns: every experiment reads these counters rather than timing alone,
so the reproduction's comparisons are exact even where wall-clock is not.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from .compression import EncodedBlock, decode_block

__all__ = ["BlockKey", "ManagedStorage", "StorageStats"]

# (table, slice, column, block index) uniquely names a block.
BlockKey = Tuple[str, int, str, int]


@dataclass
class StorageStats:
    """Monotonic counters of storage traffic.

    Snapshot-and-subtract via :meth:`delta` to measure one query.
    """

    remote_fetches: int = 0
    local_hits: int = 0
    bytes_fetched: int = 0
    blocks_invalidated: int = 0

    @property
    def blocks_accessed(self) -> int:
        """Total block reads (remote + local), the paper's metric."""
        return self.remote_fetches + self.local_hits

    def snapshot(self) -> "StorageStats":
        return StorageStats(
            remote_fetches=self.remote_fetches,
            local_hits=self.local_hits,
            bytes_fetched=self.bytes_fetched,
            blocks_invalidated=self.blocks_invalidated,
        )

    def delta(self, before: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return StorageStats(
            remote_fetches=self.remote_fetches - before.remote_fetches,
            local_hits=self.local_hits - before.local_hits,
            bytes_fetched=self.bytes_fetched - before.bytes_fetched,
            blocks_invalidated=self.blocks_invalidated - before.blocks_invalidated,
        )


class ManagedStorage:
    """Decoded-block cache with remote-fetch accounting.

    Args:
        cache_capacity: number of decoded blocks kept locally (LRU).
            ``None`` means unbounded (everything fits on local SSD, the
            common case for the scaled-down benchmarks).
    """

    def __init__(self, cache_capacity: Optional[int] = None) -> None:
        self._cache: "OrderedDict[BlockKey, np.ndarray]" = OrderedDict()
        self.cache_capacity = cache_capacity
        self.stats = StorageStats()

    def read_block(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Read a block's decoded values, counting the access."""
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.local_hits += 1
            return cached
        values = decode_block(block)
        self.stats.remote_fetches += 1
        self.stats.bytes_fetched += block.nbytes
        self._cache[key] = values
        if self.cache_capacity is not None and len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return values

    def invalidate_table(self, table_name: str) -> None:
        """Drop all cached blocks of one table (vacuum / reseal)."""
        stale = [k for k in self._cache if k[0] == table_name]
        for key in stale:
            del self._cache[key]
        self.stats.blocks_invalidated += len(stale)

    def invalidate_block(self, key: BlockKey) -> None:
        """Drop one cached block (a tail block being resealed)."""
        if self._cache.pop(key, None) is not None:
            self.stats.blocks_invalidated += 1

    def clear(self) -> None:
        """Drop the whole local cache (simulates a cold node)."""
        self._cache.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)
