"""Managed storage: the block-fetch layer and its cost accounting.

Redshift compute nodes download column blocks from Redshift Managed
Storage (RMS, backed by S3) and cache them on local SSD (§4.2.1).  The
reproduction models this as a decoded-block cache in front of the sealed
blocks: the first access to a block is a *remote fetch* (slow, counted),
later accesses are *local hits* (fast, counted) until the block is
evicted (LRU by capacity) or invalidated (vacuum/reseal).

`StorageStats` is the ground truth behind the paper's "blocks accessed"
columns: every experiment reads these counters rather than timing alone,
so the reproduction's comparisons are exact even where wall-clock is not.

Concurrency: the parallel scan executor brackets the slice fan-out with
:meth:`ManagedStorage.begin_scan_phase` / :meth:`end_scan_phase`.
During a phase, block accesses are recorded per slice instead of
immediately reordering the LRU, and capacity eviction is deferred to the
barrier, where the log is replayed in slice-major order — so the cache
end-state (and therefore the remote/local fetch split of every later
query) depends only on *what* the scan read, never on how worker
threads interleaved.  Serial scans run the same phased path, which
keeps the two modes bit-identical by construction.  Within a scan a
block key belongs to exactly one slice, so concurrent phase reads never
race on the same key.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import ContextManager, Dict, List, Optional, Tuple

import numpy as np

from ..faults import (
    FaultInjector,
    RetryBudgetExceeded,
    RetryPolicy,
    TransientStorageError,
    quantize_model_seconds,
)
from .compression import EncodedBlock, array_checksum, decode_block

__all__ = ["BlockKey", "ManagedStorage", "StorageStats"]

# (table, slice, column, block index) uniquely names a block.
BlockKey = Tuple[str, int, str, int]


@dataclass
class StorageStats:
    """Monotonic counters of storage traffic and read resilience.

    Snapshot-and-subtract via :meth:`delta` to measure one query.
    """

    remote_fetches: int = 0
    local_hits: int = 0
    bytes_fetched: int = 0
    blocks_invalidated: int = 0
    # Resilience counters: all zero unless a FaultInjector is attached.
    transient_errors: int = 0
    corrupt_blocks: int = 0
    retries: int = 0
    retry_giveups: int = 0
    backoff_model_seconds: float = 0.0

    @property
    def blocks_accessed(self) -> int:
        """Total block reads (remote + local), the paper's metric."""
        return self.remote_fetches + self.local_hits

    def snapshot(self) -> "StorageStats":
        return StorageStats(**vars(self))

    def delta(self, before: "StorageStats") -> "StorageStats":
        """Counters accumulated since ``before`` was snapshotted."""
        return StorageStats(
            **{k: v - getattr(before, k) for k, v in vars(self).items()}
        )


class _ScanPhase:
    """Deferred-eviction bookkeeping for one table scan (see module doc)."""

    __slots__ = ("guard", "accesses")

    def __init__(self, concurrent: bool) -> None:
        # The serial executor reuses a shared no-op guard; only a
        # genuinely concurrent phase pays for a real lock.
        self.guard: ContextManager[object] = (
            threading.Lock() if concurrent else _NO_GUARD
        )
        self.accesses: Dict[int, List[BlockKey]] = {}


_NO_GUARD = nullcontext()


class ManagedStorage:
    """Decoded-block cache with remote-fetch accounting.

    Args:
        cache_capacity: number of decoded blocks kept locally (LRU).
            ``None`` means unbounded (everything fits on local SSD, the
            common case for the scaled-down benchmarks).

    ``fetch_delay_seconds`` (default 0.0 — no sleeps anywhere) is an
    opt-in *wall-clock* cost per remote fetch, modeling the network
    round trip to managed storage.  The parallel-scan benchmark uses it
    to measure latency hiding: sleeps in concurrent workers overlap the
    way real S3 round trips would, independent of core count.  It never
    affects counters or model time.
    """

    def __init__(self, cache_capacity: Optional[int] = None) -> None:
        self._cache: "OrderedDict[BlockKey, np.ndarray]" = OrderedDict()
        self.cache_capacity = cache_capacity
        self.stats = StorageStats()
        self.fault_injector: Optional[FaultInjector] = None
        self.retry_policy = RetryPolicy()
        self._retry_budget_left: Optional[int] = None
        # Resolved once at attach time so the per-fetch check is a
        # single attribute load ("no faults configured" costs nothing).
        self._faults_armed = False
        self.fetch_delay_seconds = 0.0
        self._phase: Optional[_ScanPhase] = None
        # Guards stats/budget/fetch-ordinal updates on the resilient
        # (fault-armed) path; the clean path is covered by the phase
        # guard or runs on the single coordinating thread.
        self._stats_lock = threading.Lock()
        self._fetch_ordinals: Dict[BlockKey, int] = {}

    # -- fault wiring ----------------------------------------------------------

    def attach_faults(
        self,
        injector: Optional[FaultInjector],
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        """Arm (or, with None, disarm) fault injection on remote fetches."""
        self.fault_injector = injector
        if retry_policy is not None:
            self.retry_policy = retry_policy
        self._faults_armed = injector is not None and injector.can_fault
        self.reset_retry_budget()

    def reset_retry_budget(self) -> None:
        """Start a fresh per-query retry budget (no-op when unlimited)."""
        self._retry_budget_left = self.retry_policy.retry_budget

    # -- scan phases (deferred LRU settlement) ---------------------------------

    def begin_scan_phase(self, concurrent: bool = False) -> None:
        """Start access logging for one table scan (see module doc).

        ``concurrent`` arms the phase's internal lock for parallel
        workers; serial scans skip it.  Phases do not nest — a scan owns
        the storage until its barrier calls :meth:`end_scan_phase`.
        """
        if self._phase is not None:
            raise RuntimeError("a scan phase is already active")
        self._phase = _ScanPhase(concurrent)

    def end_scan_phase(self) -> Dict[int, int]:
        """Settle the phase's LRU effects; return per-slice access counts.

        Replays the access log in slice-major order — recency updates
        first, then capacity eviction — which is exactly the order the
        serial loop would have produced, whatever order worker threads
        actually ran in.  The returned ``{slice_id: blocks_accessed}``
        feeds the per-slice tracer spans.
        """
        phase = self._phase
        if phase is None:
            raise RuntimeError("no scan phase is active")
        self._phase = None
        counts: Dict[int, int] = {}
        for slice_id in sorted(phase.accesses):
            keys = phase.accesses[slice_id]
            counts[slice_id] = len(keys)
            for key in keys:
                if key in self._cache:
                    self._cache.move_to_end(key)
        if self.cache_capacity is not None:
            while len(self._cache) > self.cache_capacity:
                self._cache.popitem(last=False)
        return counts

    # -- the read path ---------------------------------------------------------

    def read_block(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Read a block's decoded values, counting the access."""
        phase = self._phase
        if phase is not None:
            return self._read_block_phased(phase, key, block)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.local_hits += 1
            return cached
        values = self._fetch(key, block)
        self.stats.remote_fetches += 1
        self.stats.bytes_fetched += block.nbytes
        self._cache[key] = values
        if self.cache_capacity is not None and len(self._cache) > self.cache_capacity:
            self._cache.popitem(last=False)
        return values

    def _read_block_phased(
        self, phase: _ScanPhase, key: BlockKey, block: EncodedBlock
    ) -> np.ndarray:
        """Phase-mode read: log the access, defer LRU movement/eviction."""
        with phase.guard:
            phase.accesses.setdefault(key[1], []).append(key)
            cached = self._cache.get(key)
            if cached is not None:
                self.stats.local_hits += 1
                return cached
        # Decode (and any fault machinery) runs outside the phase guard
        # so fetches genuinely overlap across workers.
        values = self._fetch(key, block)
        with phase.guard:
            self.stats.remote_fetches += 1
            self.stats.bytes_fetched += block.nbytes
            self._cache[key] = values
        return values

    def _fetch(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        if self.fetch_delay_seconds > 0.0:
            time.sleep(self.fetch_delay_seconds)
        if not self._faults_armed:
            return decode_block(block)
        return self._fetch_resilient(key, block)

    def _fetch_resilient(self, key: BlockKey, block: EncodedBlock) -> np.ndarray:
        """Fetch under fault injection: verify, retry with backoff, give up.

        Every attempt consults the injector; returned payloads are
        checksum-verified, so a corrupted fetch is *never* handed to a
        scan — it is retried like a transient error.  Exhausting
        ``max_attempts`` or the per-query retry budget raises (the last
        rung of the degradation ladder).

        Probability-mode verdicts come from per-attempt keyed streams
        (:meth:`FaultInjector.fetch_stream`): the fault pattern is a
        function of which fetch of which block this is, not of thread
        interleaving.  Model-time addends are quantized so the float
        accumulation is order-independent too.  Schedule-mode injectors
        keep the sequential draw their schedules index.
        """
        injector = self.fault_injector
        policy = self.retry_policy
        stats = self.stats
        keyed = injector.schedule is None
        with self._stats_lock:
            ordinal = self._fetch_ordinals.get(key, 0)
            self._fetch_ordinals[key] = ordinal + 1
        attempt = 0
        while True:
            if keyed:
                stream = injector.fetch_stream(key, ordinal, attempt)
                decision = injector.draw_keyed(stream)
            else:
                stream = None
                decision = injector.draw()
            if decision.latency_seconds:
                with self._stats_lock:
                    stats.backoff_model_seconds += quantize_model_seconds(
                        decision.latency_seconds
                    )
            if decision.fail:
                with self._stats_lock:
                    stats.transient_errors += 1
            else:
                values = decode_block(block)
                if decision.corrupt:
                    values = injector.corrupt_array(values, stream)
                if block.checksum is None or array_checksum(values) == block.checksum:
                    return values
                with self._stats_lock:
                    stats.corrupt_blocks += 1
            attempt += 1
            if attempt >= policy.max_attempts:
                with self._stats_lock:
                    stats.retry_giveups += 1
                raise TransientStorageError(
                    f"block {key} unreadable after {attempt} attempts"
                )
            jitter = stream.random() if stream is not None else injector.uniform()
            with self._stats_lock:
                if self._retry_budget_left is not None:
                    if self._retry_budget_left <= 0:
                        stats.retry_giveups += 1
                        raise RetryBudgetExceeded(
                            f"query retry budget exhausted fetching block {key}"
                        )
                    self._retry_budget_left -= 1
                stats.retries += 1
                stats.backoff_model_seconds += quantize_model_seconds(
                    policy.backoff_seconds(attempt - 1, jitter)
                )

    def invalidate_table(self, table_name: str) -> None:
        """Drop all cached blocks of one table (vacuum / reseal)."""
        stale = [k for k in self._cache if k[0] == table_name]
        for key in stale:
            del self._cache[key]
        self.stats.blocks_invalidated += len(stale)

    def invalidate_block(self, key: BlockKey) -> None:
        """Drop one cached block (a tail block being resealed)."""
        if self._cache.pop(key, None) is not None:
            self.stats.blocks_invalidated += 1

    def clear(self) -> None:
        """Drop the whole local cache (simulates a cold node)."""
        self._cache.clear()

    @property
    def cached_blocks(self) -> int:
        return len(self._cache)
