"""Zone maps: per-block min/max bounds for block pruning.

Redshift's first scan step eliminates blocks whose min/max bounds cannot
satisfy the pushed-down predicate (§4.2.2).  A :class:`ZoneMap` holds the
bounds for every sealed block of one column; pruning intersects the
predicate's implied value interval with each block's interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["ZoneEntry", "ZoneMap"]


@dataclass(frozen=True, slots=True)
class ZoneEntry:
    """Min/max bounds of one block (None for non-comparable blocks)."""

    minimum: Optional[object]
    maximum: Optional[object]

    def may_contain(self, bounds) -> bool:
        """True unless the bound interval and block interval are disjoint.

        ``bounds`` is a :class:`repro.predicates.ast.Bounds`; unbounded
        sides are None.  Unknown block bounds always *may* contain
        matches (no false negatives).  Strict endpoints additionally
        prune blocks whose extreme equals the excluded bound.
        """
        if self.minimum is None or self.maximum is None:
            return True
        try:
            if bounds.hi is not None:
                if self.minimum > bounds.hi:
                    return False
                if bounds.hi_strict and self.minimum >= bounds.hi:
                    return False
            if bounds.lo is not None:
                if self.maximum < bounds.lo:
                    return False
                if bounds.lo_strict and self.maximum <= bounds.lo:
                    return False
        except TypeError:
            # Incomparable types (e.g. numeric bound vs string block):
            # never prune on unsound comparisons.
            return True
        return True


class ZoneMap:
    """Bounds for all sealed blocks of one column of one slice."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[ZoneEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, block_index: int) -> ZoneEntry:
        return self._entries[block_index]

    def append_block(self, values: np.ndarray) -> None:
        """Record bounds for a newly sealed block."""
        if len(values) == 0:
            self._entries.append(ZoneEntry(None, None))
            return
        if values.dtype == object:
            try:
                minimum, maximum = min(values), max(values)
            except TypeError:
                minimum = maximum = None
        else:
            minimum, maximum = values.min(), values.max()
        self._entries.append(ZoneEntry(_to_python(minimum), _to_python(maximum)))

    def truncate(self, num_blocks: int) -> None:
        """Drop entries beyond ``num_blocks`` (used by vacuum rebuilds)."""
        del self._entries[num_blocks:]

    def pruned_blocks(self, bounds) -> np.ndarray:
        """Boolean array: True where the block can be skipped entirely."""
        return np.array(
            [not entry.may_contain(bounds) for entry in self._entries],
            dtype=bool,
        )

    @property
    def nbytes(self) -> int:
        """16 bytes (min + max) per block, as in the paper's Table 3."""
        return 16 * len(self._entries)


def _to_python(value: object) -> object:
    """Convert numpy scalars to plain Python for stable comparisons."""
    if isinstance(value, np.generic):
        return value.item()
    return value
