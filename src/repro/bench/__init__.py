"""Benchmark harness: engine-variant runners and paper-style reporting."""

from .runner import BenchmarkRow, Variant, compare_variants, run_query_set
from .report import format_series, format_table, geomean

__all__ = [
    "BenchmarkRow",
    "Variant",
    "compare_variants",
    "format_series",
    "format_table",
    "geomean",
    "run_query_set",
]
