"""Engine-variant benchmark runner (the Table 4 machinery).

A :class:`Variant` describes one engine configuration of the paper's
comparison: original (no predicate cache), PC^B (bitmap), PC^R (range),
PS (predicate sorting), or combinations.  ``compare_variants`` loads a
fresh database per variant (physical-layout variants rewrite tables),
warms each query once, and reports the repeat-execution counters —
matching the paper's methodology where Table 4 reports runs with the
cache populated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.sorting import PredicateSorter
from ..core.cache import PredicateCache
from ..core.config import PredicateCacheConfig
from ..engine.engine import QueryEngine
from ..predicates.ast import Predicate
from ..storage.database import Database

__all__ = ["Variant", "BenchmarkRow", "run_query_set", "compare_variants"]


@dataclass
class Variant:
    """One engine configuration under comparison."""

    name: str
    cache_config: Optional[PredicateCacheConfig] = None
    sort_predicates: Dict[str, List[Predicate]] = field(default_factory=dict)

    def build_engine(self, database: Database) -> QueryEngine:
        cache = PredicateCache(self.cache_config) if self.cache_config else None
        for table_name, predicates in self.sort_predicates.items():
            PredicateSorter(predicates).apply(database.table(table_name))
        return QueryEngine(database, predicate_cache=cache)


@dataclass
class BenchmarkRow:
    """Counters of one query under one variant (repeat execution)."""

    query: str
    variant: str
    model_seconds: float
    wall_seconds: float
    rows_scanned: int
    blocks_accessed: int
    rows_output: int
    cold_model_seconds: float = 0.0

    @property
    def speedup_available(self) -> bool:
        return self.cold_model_seconds > 0


def run_query_set(
    engine: QueryEngine,
    queries: Dict[str, str],
    variant_name: str = "default",
    warmup_runs: int = 1,
) -> List[BenchmarkRow]:
    """Run each query ``warmup_runs + 1`` times; report the last run.

    The warmup run(s) populate the predicate cache (and the block
    cache); the measured run is the repeat execution the paper's
    Table 4 reports.
    """
    rows: List[BenchmarkRow] = []
    for name, sql in queries.items():
        cold = engine.execute(sql)
        for _ in range(warmup_runs - 1):
            engine.execute(sql)
        measured = engine.execute(sql) if warmup_runs >= 1 else cold
        rows.append(
            BenchmarkRow(
                query=name,
                variant=variant_name,
                model_seconds=measured.counters.model_seconds,
                wall_seconds=measured.counters.wall_seconds,
                rows_scanned=measured.counters.rows_scanned,
                blocks_accessed=measured.counters.blocks_accessed,
                rows_output=measured.num_rows,
                cold_model_seconds=cold.counters.model_seconds,
            )
        )
    return rows


def compare_variants(
    loader: Callable[[Database], None],
    make_database: Callable[[], Database],
    queries: Dict[str, str],
    variants: Sequence[Variant],
    warmup_runs: int = 1,
) -> Dict[str, List[BenchmarkRow]]:
    """Run the query set under every variant on freshly loaded data.

    Every variant gets its own database instance so that physical
    reorganizations (predicate sorting) do not leak across variants.
    """
    results: Dict[str, List[BenchmarkRow]] = {}
    for variant in variants:
        database = make_database()
        loader(database)
        engine = variant.build_engine(database)
        results[variant.name] = run_query_set(
            engine, queries, variant.name, warmup_runs
        )
    return results
