"""ASCII reporting helpers: the benches print paper-style tables."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series", "geomean", "format_bytes"]


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's Table 4 summary row)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, points: Sequence[float], bins: int = 20, width: int = 40
) -> str:
    """Render a numeric series as an inline ASCII bar strip.

    Used for figure-shaped results (hit rate over time, CDFs).
    """
    if not points:
        return f"{name}: (empty)"
    blocks = " .:-=+*#%@"
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    step = max(1, len(points) // width)
    sampled = [
        sum(points[i : i + step]) / len(points[i : i + step])
        for i in range(0, len(points), step)
    ]
    strip = "".join(
        blocks[min(int((p - lo) / span * (len(blocks) - 1)), len(blocks) - 1)]
        for p in sampled
    )
    return f"{name} [{lo:.3g}..{hi:.3g}]: {strip}"


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte size (Table 3 rendering)."""
    value = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} TB"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)
