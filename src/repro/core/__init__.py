"""Predicate caching — the paper's primary contribution.

Public surface:

* :class:`~repro.core.rowrange.RowRange` / :class:`~repro.core.rowrange.RangeList`
  — the row-range algebra shared with the scan path,
* :class:`~repro.core.gapheap.GapHeapRangeBuilder` — online bounded-range
  construction (§4.1.1),
* :class:`~repro.core.keys.ScanKey` / :class:`~repro.core.keys.SemiJoinDescriptor`
  — cache keys, including the join-index extension (§4.4),
* :class:`~repro.core.entry.CacheEntry` with range and bitmap per-slice
  states (§4.1.1–4.1.2),
* :class:`~repro.core.cache.PredicateCache` — the cache itself,
* :class:`~repro.core.config.PredicateCacheConfig` and
  :class:`~repro.core.stats.CacheStats`.
"""

from .cache import PredicateCache
from .config import PredicateCacheConfig
from .entry import BitmapSliceState, CacheEntry, RangeSliceState, SliceState
from .gapheap import GapHeapRangeBuilder
from .keys import ScanKey, SemiJoinDescriptor, conjunct_key
from .policy import AdmissionPolicy, AlwaysAdmit, CostBasedPolicy
from .rowrange import RangeList, RowRange
from .stats import CacheStats, ReuseStats

__all__ = [
    "AdmissionPolicy",
    "AlwaysAdmit",
    "BitmapSliceState",
    "CostBasedPolicy",
    "CacheEntry",
    "CacheStats",
    "GapHeapRangeBuilder",
    "PredicateCache",
    "PredicateCacheConfig",
    "RangeList",
    "RangeSliceState",
    "ReuseStats",
    "RowRange",
    "ScanKey",
    "SemiJoinDescriptor",
    "SliceState",
    "conjunct_key",
]
