"""Cache keys: scan expressions, optionally extended with semi-join filters.

The predicate cache is an inverted index from *scan expressions* to row
ranges (§4.1).  A plain key is ``(table, canonical predicate string)``.
The join-index extension (§4.4) widens the key with a description of the
semi-join filter: the join predicate plus the *build side* — its table,
its filter predicate, and (recursively) any semi-join filter that was
applied to the build side itself.  The paper renders this as a nested
key; we reproduce the same structure as a canonical string.

Keys are plain frozen dataclasses so they hash cheaply and can be logged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

__all__ = ["SemiJoinDescriptor", "ScanKey", "conjunct_key"]


@dataclass(frozen=True)
class SemiJoinDescriptor:
    """Describes one semi-join filter applied during a scan.

    Attributes:
        join_predicate: canonical text of the equi-join condition, e.g.
            ``"o_orderkey = l_orderkey"``.
        build_table: name of the build-side relation.
        build_predicate_key: canonical key of the build side's filter
            (``"TRUE"`` for an unfiltered build side).
        build_semijoins: semi-join filters that restricted the build
            side itself (snowflake chains), in canonical order.
    """

    join_predicate: str
    build_table: str
    build_predicate_key: str = "TRUE"
    build_semijoins: Tuple["SemiJoinDescriptor", ...] = ()

    def key(self) -> str:
        """Canonical string, mirroring the paper's nested key layout."""
        inner = f"table={self.build_table}; filter={self.build_predicate_key}"
        if self.build_semijoins:
            nested = ", ".join(s.key() for s in self.build_semijoins)
            inner += f"; semijoins=[{nested}]"
        return f"<semijoin pred={self.join_predicate!r} build=({inner})>"

    def referenced_tables(self) -> FrozenSet[str]:
        """All build-side tables, recursively — the invalidation scope.

        A semi-join cache entry depends on the *content* of every build
        table in the chain: any insert/delete/update there changes which
        probe rows have join partners (§4.4).
        """
        tables = {self.build_table}
        for nested in self.build_semijoins:
            tables |= nested.referenced_tables()
        return frozenset(tables)


@dataclass(frozen=True)
class ScanKey:
    """The full predicate-cache key for one base-table scan."""

    table: str
    predicate_key: str
    semijoins: Tuple[SemiJoinDescriptor, ...] = ()

    def __post_init__(self) -> None:
        # Canonical order so that filter arrival order does not split
        # cache entries.
        ordered = tuple(sorted(self.semijoins, key=lambda s: s.key()))
        object.__setattr__(self, "semijoins", ordered)

    @property
    def is_join_key(self) -> bool:
        return bool(self.semijoins)

    def base_key(self) -> "ScanKey":
        """The same scan without semi-join filters (fallback lookup)."""
        return ScanKey(self.table, self.predicate_key)

    def referenced_tables(self) -> FrozenSet[str]:
        """Tables whose *data* changes invalidate this entry."""
        tables: FrozenSet[str] = frozenset()
        for semijoin in self.semijoins:
            tables |= semijoin.referenced_tables()
        return tables

    def key(self) -> str:
        text = f"scan table={self.table}; filter={self.predicate_key}"
        if self.semijoins:
            nested = ", ".join(s.key() for s in self.semijoins)
            text += f"; semijoins=[{nested}]"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.key()


def conjunct_key(table: str, predicate_key: str) -> ScanKey:
    """The canonical cache key for one conjunct of a decomposed predicate.

    A conjunct key is a *plain* :class:`ScanKey` — never join-extended —
    over the conjunct's normalized canonical rendering.  Using the plain
    form means a direct scan of the same single-conjunct predicate and
    the reuse lattice's decomposer share one entry: there is no separate
    key namespace for derived entries, only a provenance tag on the
    :class:`~repro.core.entry.CacheEntry`.
    """
    if not predicate_key:
        raise ValueError("conjunct predicate key must be non-empty")
    return ScanKey(table, predicate_key)
