"""Row-range algebra.

A :class:`RowRange` is a half-open interval ``[start, end)`` of row ids.
A :class:`RangeList` is an ordered, non-overlapping, non-adjacent list of
row ranges.  Range lists are the currency of the whole system:

* the vectorized scan produces a range list of qualifying rows,
* the predicate cache stores (bounded) range lists per cached predicate,
* a cached range list restricts the candidate rows of a repeated scan.

Ranges are half-open (like Python slices) so that lengths and
concatenations are free of ±1 bookkeeping.  The paper describes ranges as
``(start row, end row)`` pairs; the open/closed convention is internal.

Representation
--------------

A :class:`RangeList` stores all of its ranges in one ``(N, 2)`` int64
numpy array (``bounds``), column 0 holding starts and column 1 holding
(exclusive) ends.  The normalization invariant — sorted, disjoint,
non-adjacent, no empty ranges — is expressed on the array as::

    bounds[:, 0] < bounds[:, 1]          (every range non-empty)
    bounds[:-1, 1] < bounds[1:, 0]       (strictly increasing, gaps > 0)

Every set operation works directly on the bounds array (boundary merges,
event sweeps, ``searchsorted``); :class:`RowRange` objects are only
materialized on demand for iteration.  ``num_rows`` is computed once and
cached.  See DESIGN.md ("Array-backed range representation") for the
per-operation complexity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .. import invariants as _inv

__all__ = ["RowRange", "RangeList"]

_EMPTY_BOUNDS = np.empty((0, 2), dtype=np.int64)
_EMPTY_BOUNDS.setflags(write=False)


@dataclass(frozen=True, slots=True)
class RowRange:
    """A half-open interval ``[start, end)`` of row ids."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"range start must be >= 0, got {self.start}")
        if self.end < self.start:
            raise ValueError(f"range end {self.end} < start {self.start}")

    def __len__(self) -> int:
        return self.end - self.start

    def __bool__(self) -> bool:
        return self.end > self.start

    def __contains__(self, row: int) -> bool:
        return self.start <= row < self.end

    def overlaps(self, other: "RowRange") -> bool:
        """True if the two ranges share at least one row."""
        return self.start < other.end and other.start < self.end

    def touches(self, other: "RowRange") -> bool:
        """True if the ranges overlap or are directly adjacent."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "RowRange") -> "RowRange":
        """The overlapping part of the two ranges (may be empty)."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        return RowRange(start, max(start, end))

    def union_touching(self, other: "RowRange") -> "RowRange":
        """Merge with a touching range.

        Raises:
            ValueError: if the ranges neither overlap nor touch.
        """
        if not self.touches(other):
            raise ValueError(f"ranges {self} and {other} do not touch")
        return RowRange(min(self.start, other.start), max(self.end, other.end))

    def shift(self, offset: int) -> "RowRange":
        """A copy of this range translated by ``offset`` rows."""
        return RowRange(self.start + offset, self.end + offset)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start},{self.end})"


class RangeList:
    """An ordered list of disjoint, non-adjacent row ranges.

    The constructor normalizes arbitrary input ranges: it sorts them,
    drops empty ranges, and merges overlapping or adjacent ones.  All set
    operations (union, intersection, complement) preserve the invariant.
    """

    __slots__ = ("_bounds", "_num_rows")

    def __init__(self, ranges: Iterable[RowRange | Tuple[int, int]] = ()) -> None:
        if isinstance(ranges, np.ndarray):
            bounds = np.array(ranges, dtype=np.int64).reshape(-1, 2)
        else:
            items = [
                (r.start, r.end) if isinstance(r, RowRange) else r for r in ranges
            ]
            bounds = (
                np.array(items, dtype=np.int64)
                if items
                else _EMPTY_BOUNDS
            )
        self._bounds = _normalize(_validate(bounds))
        self._num_rows: int | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def _wrap(cls, bounds: np.ndarray, num_rows: int | None = None) -> "RangeList":
        """Trusted constructor: ``bounds`` must already be normalized."""
        if _inv.ACTIVE:
            _inv.check_bounds(bounds)
        out = cls.__new__(cls)
        bounds.setflags(write=False)
        out._bounds = bounds
        out._num_rows = num_rows
        return out

    @classmethod
    def from_bounds(cls, bounds: np.ndarray) -> "RangeList":
        """Build from an ``(N, 2)`` array of ``[start, end)`` pairs.

        The array is validated and normalized (sorted, empties dropped,
        overlapping/adjacent pairs merged) — the array-native equivalent
        of the tuple constructor, without per-range objects.
        """
        bounds = np.asarray(bounds, dtype=np.int64).reshape(-1, 2)
        return cls._wrap(_normalize(_validate(bounds)))

    @classmethod
    def full(cls, num_rows: int) -> "RangeList":
        """A range list covering ``[0, num_rows)``."""
        if num_rows <= 0:
            return cls._wrap(_EMPTY_BOUNDS, 0)
        return cls._wrap(np.array([[0, num_rows]], dtype=np.int64), int(num_rows))

    @classmethod
    def empty(cls) -> "RangeList":
        return cls._wrap(_EMPTY_BOUNDS, 0)

    @classmethod
    def from_mask(cls, mask: np.ndarray, offset: int = 0) -> "RangeList":
        """Build a range list from a boolean qualification mask.

        This is what the vectorized scan produces: consecutive ``True``
        runs become ranges.  ``offset`` translates mask positions into
        global row ids.
        """
        mask = np.asarray(mask, dtype=bool)
        if mask.size == 0 or not mask.any():
            return cls._wrap(_EMPTY_BOUNDS, 0)
        # Run boundaries: diff of the int mask is +1 at run starts and
        # -1 one past run ends.
        diff = np.diff(mask.astype(np.int8))
        starts = np.flatnonzero(diff == 1) + 1
        ends = np.flatnonzero(diff == -1) + 1
        if mask[0]:
            starts = np.concatenate(([0], starts))
        if mask[-1]:
            ends = np.concatenate((ends, [mask.size]))
        bounds = np.empty((len(starts), 2), dtype=np.int64)
        bounds[:, 0] = starts
        bounds[:, 1] = ends
        if offset:
            bounds += offset
        return cls._wrap(bounds, int(np.count_nonzero(mask)))

    @classmethod
    def from_rows(cls, rows: Sequence[int] | np.ndarray) -> "RangeList":
        """Build a range list from individual (unsorted, unique) row ids."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return cls._wrap(_EMPTY_BOUNDS, 0)
        if rows.size > 1:
            deltas = np.diff(rows)
            if not (deltas > 0).all():  # not already sorted-unique
                rows = np.unique(rows)
                deltas = np.diff(rows)
            breaks = np.flatnonzero(deltas > 1)
        else:
            breaks = np.empty(0, dtype=np.int64)
        bounds = np.empty((len(breaks) + 1, 2), dtype=np.int64)
        bounds[0, 0] = rows[0]
        bounds[1:, 0] = rows[breaks + 1]
        bounds[:-1, 1] = rows[breaks] + 1
        bounds[-1, 1] = rows[-1] + 1
        return cls._wrap(bounds, int(rows.size))

    # -- basic protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._bounds)

    def __iter__(self) -> Iterator[RowRange]:
        for start, end in self._bounds:
            yield RowRange(int(start), int(end))

    def __getitem__(self, idx: int) -> RowRange:
        start, end = self._bounds[idx]
        return RowRange(int(start), int(end))

    def __bool__(self) -> bool:
        return len(self._bounds) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeList):
            return NotImplemented
        return np.array_equal(self._bounds, other._bounds)

    def __hash__(self) -> int:
        return hash(self._bounds.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RangeList({[RowRange(int(s), int(e)) for s, e in self._bounds]!r})"

    # -- array views -------------------------------------------------------

    @property
    def bounds(self) -> np.ndarray:
        """The ``(N, 2)`` int64 bounds array (read-only view)."""
        return self._bounds

    @property
    def starts(self) -> np.ndarray:
        """Read-only view of all range starts."""
        return self._bounds[:, 0]

    @property
    def ends(self) -> np.ndarray:
        """Read-only view of all (exclusive) range ends."""
        return self._bounds[:, 1]

    # -- measures ----------------------------------------------------------

    @property
    def num_rows(self) -> int:
        """Total number of rows covered by all ranges (cached)."""
        if self._num_rows is None:
            self._num_rows = int(
                np.sum(self._bounds[:, 1] - self._bounds[:, 0])
            )
        return self._num_rows

    @property
    def span(self) -> RowRange:
        """The bounding range ``[first.start, last.end)`` (empty if none)."""
        if not len(self._bounds):
            return RowRange(0, 0)
        return RowRange(int(self._bounds[0, 0]), int(self._bounds[-1, 1]))

    def contains_row(self, row: int) -> bool:
        """Binary search membership test for a single row id."""
        idx = int(np.searchsorted(self._bounds[:, 0], row, side="right")) - 1
        return idx >= 0 and row < self._bounds[idx, 1]

    # -- set algebra ---------------------------------------------------------

    def union(self, other: "RangeList") -> "RangeList":
        """Rows in either list."""
        if not other:
            return self
        if not self:
            return other
        return RangeList._wrap(
            _normalize(np.concatenate((self._bounds, other._bounds)))
        )

    def intersect(self, other: "RangeList") -> "RangeList":
        """Rows in both lists (vectorized boundary sweep)."""
        a, b = self._bounds, other._bounds
        if not len(a) or not len(b):
            return RangeList.empty()
        # Event sweep over all boundaries: +1 at starts, -1 at ends,
        # ends sorted before coincident starts (half-open semantics).
        # Coverage 2 between consecutive events means "inside both".
        points = np.concatenate((a[:, 0], b[:, 0], a[:, 1], b[:, 1]))
        deltas = np.empty(len(points), dtype=np.int8)
        half = len(a) + len(b)
        deltas[:half] = 1
        deltas[half:] = -1
        order = np.lexsort((deltas, points))
        points = points[order]
        coverage = np.cumsum(deltas[order])
        # Coverage changes at every event, so each maximal cov==2 region
        # is a single inter-event segment; empty segments are dropped.
        idx = np.flatnonzero(coverage == 2)
        starts = points[idx]
        ends = points[idx + 1]
        keep = ends > starts
        bounds = np.empty((int(np.count_nonzero(keep)), 2), dtype=np.int64)
        bounds[:, 0] = starts[keep]
        bounds[:, 1] = ends[keep]
        return RangeList._wrap(bounds)

    def difference(self, other: "RangeList") -> "RangeList":
        """Rows in this list but not in ``other``."""
        if not len(other._bounds) or not len(self._bounds):
            return self
        span_end = max(self.span.end, other.span.end)
        return self.intersect(other.complement(span_end))

    def complement(self, num_rows: int) -> "RangeList":
        """Rows in ``[0, num_rows)`` not covered by this list."""
        if num_rows <= 0:
            return RangeList.empty()
        clipped = self.clip(0, num_rows)._bounds
        # Gaps between consecutive ranges, plus the leading/trailing
        # remainder of the domain.
        starts = np.concatenate(([0], clipped[:, 1]))
        ends = np.concatenate((clipped[:, 0], [num_rows]))
        keep = ends > starts
        bounds = np.empty((int(np.count_nonzero(keep)), 2), dtype=np.int64)
        bounds[:, 0] = starts[keep]
        bounds[:, 1] = ends[keep]
        return RangeList._wrap(bounds)

    # -- transforms ----------------------------------------------------------

    def clip(self, start: int, end: int) -> "RangeList":
        """Restrict the list to the window ``[start, end)``."""
        b = self._bounds
        if not len(b) or end <= start:
            return RangeList.empty()
        if start <= b[0, 0] and end >= b[-1, 1]:
            return self
        lo = int(np.searchsorted(b[:, 1], start, side="right"))
        hi = int(np.searchsorted(b[:, 0], end, side="left"))
        if lo >= hi:
            return RangeList.empty()
        sub = b[lo:hi].copy()
        if sub[0, 0] < start:
            sub[0, 0] = start
        if sub[-1, 1] > end:
            sub[-1, 1] = end
        return RangeList._wrap(sub)

    def shift(self, offset: int) -> "RangeList":
        """Translate every range by ``offset`` rows."""
        if not len(self._bounds):
            return self
        if self._bounds[0, 0] + offset < 0:
            raise ValueError(
                f"range start must be >= 0, got {int(self._bounds[0, 0]) + offset}"
            )
        return RangeList._wrap(self._bounds + np.int64(offset), self._num_rows)

    def coalesce(self, max_ranges: int) -> "RangeList":
        """Reduce to at most ``max_ranges`` ranges by closing smallest gaps.

        This is the *offline* equivalent of the paper's gap-heap
        construction (:mod:`repro.core.gapheap` builds the same result
        online): we keep the ``max_ranges - 1`` largest gaps between
        consecutive ranges and merge across all other gaps.  The result
        covers a superset of the original rows (false positives only).
        """
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        b = self._bounds
        if len(b) <= max_ranges:
            return self
        gaps = b[1:, 0] - b[:-1, 1]
        kept = max_ranges - 1
        if kept == 0:
            keep = np.empty(0, dtype=np.int64)
        else:
            # Top-k gap selection without a full sort; ties are broken
            # arbitrarily but deterministically by np.argpartition.
            keep = np.sort(np.argpartition(gaps, len(gaps) - kept)[-kept:])
        bounds = np.empty((kept + 1, 2), dtype=np.int64)
        bounds[0, 0] = b[0, 0]
        bounds[1:, 0] = b[keep + 1, 0]
        bounds[:-1, 1] = b[keep, 1]
        bounds[-1, 1] = b[-1, 1]
        return RangeList._wrap(bounds)

    def to_mask(self, num_rows: int) -> np.ndarray:
        """Materialize as a boolean mask over ``[0, num_rows)``."""
        if num_rows <= 0:
            return np.zeros(max(num_rows, 0), dtype=bool)
        clipped = self.clip(0, num_rows)._bounds
        # Boundary-delta accumulation: +1 at starts, -1 at ends, prefix
        # sum > 0 marks covered rows.  All boundary points are distinct
        # by the normalization invariant, so plain fancy indexing works.
        delta = np.zeros(num_rows + 1, dtype=np.int8)
        delta[clipped[:, 0]] = 1
        delta[clipped[:, 1]] = -1
        return np.cumsum(delta[:-1]).astype(bool)

    def to_row_ids(self) -> np.ndarray:
        """Materialize as an int64 array of row ids (vectorized)."""
        b = self._bounds
        if not len(b):
            return np.empty(0, dtype=np.int64)
        lengths = b[:, 1] - b[:, 0]
        total = self.num_rows
        # Prefix-sum trick: fill with ones, plant each range's start as a
        # jump at its first output slot, cumulative-sum the whole thing.
        out = np.ones(total, dtype=np.int64)
        out[0] = b[0, 0]
        if len(b) > 1:
            offsets = np.cumsum(lengths[:-1])
            out[offsets] = b[1:, 0] - (b[:-1, 1] - 1)
        return np.cumsum(out)

    def to_pairs(self) -> List[Tuple[int, int]]:
        """Plain ``(start, end)`` tuples, e.g. for serialization."""
        return [(int(s), int(e)) for s, e in self._bounds]

    def covers(self, other: "RangeList") -> bool:
        """True if every row of ``other`` is contained in this list."""
        b = other._bounds
        if not len(b):
            return True
        if not len(self._bounds):
            return False
        idx = np.searchsorted(self._bounds[:, 0], b[:, 0], side="right") - 1
        if (idx < 0).any():
            return False
        return bool((b[:, 1] <= self._bounds[idx, 1]).all())

    @property
    def nbytes(self) -> int:
        """Memory footprint: two 8-byte row ids per range (paper §4.1.1)."""
        return 16 * len(self._bounds)


def _validate(bounds: np.ndarray) -> np.ndarray:
    """Reject negative starts and inverted ranges (RowRange's contract)."""
    if len(bounds):
        if (bounds[:, 0] < 0).any():
            bad = int(bounds[bounds[:, 0] < 0][0, 0])
            raise ValueError(f"range start must be >= 0, got {bad}")
        inverted = bounds[:, 1] < bounds[:, 0]
        if inverted.any():
            s, e = bounds[inverted][0]
            raise ValueError(f"range end {int(e)} < start {int(s)}")
    return bounds


def _normalize(bounds: np.ndarray) -> np.ndarray:
    """Sort, drop empties, and merge overlapping/adjacent ranges."""
    nonempty = bounds[:, 1] > bounds[:, 0]
    if not nonempty.all():
        bounds = bounds[nonempty]
    n = len(bounds)
    if n == 0:
        return _EMPTY_BOUNDS
    if n > 1:
        starts = bounds[:, 0]
        if (starts[1:] < starts[:-1]).any():
            bounds = bounds[np.argsort(starts, kind="stable")]
        starts = bounds[:, 0]
        # Running max of ends finds merged-group extents; a new group
        # starts wherever a start exceeds everything seen so far
        # (strictly — touching ranges merge).
        cummax = np.maximum.accumulate(bounds[:, 1])
        breaks = np.flatnonzero(starts[1:] > cummax[:-1]) + 1
        if len(breaks) < n - 1:
            merged = np.empty((len(breaks) + 1, 2), dtype=np.int64)
            merged[0, 0] = starts[0]
            merged[1:, 0] = starts[breaks]
            merged[:-1, 1] = cummax[breaks - 1]
            merged[-1, 1] = cummax[-1]
            return merged
    return np.ascontiguousarray(bounds)
