"""Admission policies: which predicates are worth caching (§4.1.2).

The paper's prototype "caches all predicates pushed into the table
scans" and notes that *"a cost-based optimizer could decide which
predicates to cache based on the selectivity and repetitiveness"*.
This module implements that extension:

* :class:`AlwaysAdmit` — the prototype's behaviour (default),
* :class:`CostBasedPolicy` — admit a scan key only once it has been
  *seen* enough times (repetitiveness) and its observed selectivity is
  low enough that skipping pays (an unselective entry qualifies almost
  every block and saves nothing).

Policies are consulted by the scan path before an entry is created;
rejected scans are *observed* (count + selectivity) so they can qualify
later.  The ablation bench compares memory footprint and hit quality of
the two policies on a workload mixing hot dashboards with one-off
exploration queries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict

from .keys import ScanKey

__all__ = ["AdmissionPolicy", "AlwaysAdmit", "CostBasedPolicy"]


class AdmissionPolicy:
    """Interface: decide whether a scan key deserves a cache entry."""

    def should_admit(self, key: ScanKey) -> bool:
        raise NotImplementedError

    def observe(self, key: ScanKey, selectivity: float) -> None:
        """Record one execution of the scan (admitted or not)."""

    def forget(self, key: ScanKey) -> None:
        """Drop observation state (entry invalidated)."""


class AlwaysAdmit(AdmissionPolicy):
    """The prototype's policy: every filtered scan gets an entry."""

    def should_admit(self, key: ScanKey) -> bool:
        return True

    def observe(self, key: ScanKey, selectivity: float) -> None:
        pass

    def forget(self, key: ScanKey) -> None:
        pass


@dataclass
class _Observation:
    sightings: int = 0
    selectivity: float = 1.0


class CostBasedPolicy(AdmissionPolicy):
    """Admit repetitive, selective scans only.

    Args:
        min_sightings: executions of a scan key before an entry is
            created (``2`` = cache on the first repeat; ``1`` = always).
        max_selectivity: entries whose scans qualify more than this
            fraction of rows are not worth the memory (their candidate
            ranges cover nearly the whole table anyway).
        max_tracked: bound on observation-table size (LRU-ish trim).

    Thread-safe: the observation table and the admission/rejection
    counters are guarded by an internal lock — the scan path calls
    ``observe``/``should_admit`` from concurrent serving coordinators.
    """

    def __init__(
        self,
        min_sightings: int = 2,
        max_selectivity: float = 0.5,
        max_tracked: int = 100_000,
    ) -> None:
        if min_sightings < 1:
            raise ValueError("min_sightings must be >= 1")
        if not 0.0 < max_selectivity <= 1.0:
            raise ValueError("max_selectivity must be in (0, 1]")
        self.min_sightings = min_sightings
        self.max_selectivity = max_selectivity
        self.max_tracked = max_tracked
        self._observations: Dict[ScanKey, _Observation] = {}
        self._lock = threading.Lock()
        self.admissions = 0
        self.rejections = 0

    def should_admit(self, key: ScanKey) -> bool:
        with self._lock:
            observation = self._observations.get(key)
            if (
                observation is None
                or observation.sightings < self.min_sightings - 1
            ):
                self.rejections += 1
                return False
            if observation.selectivity > self.max_selectivity:
                self.rejections += 1
                return False
            self.admissions += 1
            return True

    def observe(self, key: ScanKey, selectivity: float) -> None:
        with self._lock:
            observation = self._observations.get(key)
            if observation is None:
                if len(self._observations) >= self.max_tracked:
                    # Trim the oldest half (insertion order ~ recency here).
                    for stale in list(self._observations)[: self.max_tracked // 2]:
                        del self._observations[stale]
                observation = _Observation()
                self._observations[key] = observation
            observation.sightings += 1
            observation.selectivity = selectivity

    def forget(self, key: ScanKey) -> None:
        with self._lock:
            self._observations.pop(key, None)

    @property
    def tracked_keys(self) -> int:
        return len(self._observations)
