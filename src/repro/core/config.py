"""Predicate-cache configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["PredicateCacheConfig"]


@dataclass(frozen=True)
class PredicateCacheConfig:
    """Tuning knobs for the predicate cache.

    Attributes:
        variant: ``"bitmap"`` (paper default: 1,000 rows per bit) or
            ``"range"`` (bounded merged ranges, 16,384 per slice in the
            paper's Table 3 setup).
        max_ranges_per_slice: bound for the range variant.
        bitmap_block_rows: rows represented per bit for the bitmap
            variant.
        max_entries: LRU capacity in entries (None = unbounded).
        max_bytes: LRU capacity in payload bytes (None = unbounded).
        cache_join_keys: whether the join-index extension (§4.4) records
            semi-join-filtered entries at all.
        normalize_keys: normalize predicates (NOT push-down, interval
            merging, CNF) before forming cache keys — the paper's
            §4.1.2 "SMT solver" extension.  Off by default, like the
            prototype.
        min_rows_to_cache: scans over fewer candidate rows than this are
            not worth an entry (tiny tables gain nothing).
        enable_reuse: turn on the cross-query reuse lattice (DESIGN.md
            §14): conjunct decomposition on install, intersection
            composition and subsumption matching on a full-key miss.
            Off by default, like ``normalize_keys`` — the paper's cache
            is exact-match only.
        reuse_max_conjuncts: predicates that normalize to more conjuncts
            than this are not decomposed (CNF blow-up guard).
        reuse_composition: serve ``A AND B`` misses from the vectorized
            intersection of cached per-conjunct entries.
        reuse_subsumption: serve a range predicate from a cached wider
            range on the same column, with a residual re-check.
    """

    variant: str = "bitmap"
    max_ranges_per_slice: int = 16384
    bitmap_block_rows: int = 1000
    max_entries: Optional[int] = None
    max_bytes: Optional[int] = None
    cache_join_keys: bool = True
    normalize_keys: bool = False
    min_rows_to_cache: int = 0
    enable_reuse: bool = False
    reuse_max_conjuncts: int = 8
    reuse_composition: bool = True
    reuse_subsumption: bool = True

    def __post_init__(self) -> None:
        if self.variant not in ("bitmap", "range"):
            raise ValueError(f"unknown predicate-cache variant {self.variant!r}")
        if self.max_ranges_per_slice < 1:
            raise ValueError("max_ranges_per_slice must be >= 1")
        if self.bitmap_block_rows < 1:
            raise ValueError("bitmap_block_rows must be >= 1")
        if self.reuse_max_conjuncts < 1:
            raise ValueError("reuse_max_conjuncts must be >= 1")
