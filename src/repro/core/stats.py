"""Predicate-cache statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats"]


@dataclass
class CacheStats:
    """Monotonic counters for cache behaviour.

    ``hit_rate`` is hits over lookups — the paper's Fig. 13 metric.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    extensions: int = 0
    invalidations: int = 0
    evictions: int = 0
    stale_rejections: int = 0
    stale_installs: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "CacheStats":
        return CacheStats(**vars(self))

    def delta(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            **{k: getattr(self, k) - getattr(before, k) for k in vars(self)}
        )
