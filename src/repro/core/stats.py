"""Predicate-cache statistics."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheStats", "ReuseStats"]


@dataclass
class CacheStats:
    """Monotonic counters for cache behaviour.

    ``hit_rate`` is hits over lookups — the paper's Fig. 13 metric.
    """

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    inserts: int = 0
    extensions: int = 0
    invalidations: int = 0
    evictions: int = 0
    stale_rejections: int = 0
    stale_installs: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def snapshot(self) -> "CacheStats":
        return CacheStats(**vars(self))

    def delta(self, before: "CacheStats") -> "CacheStats":
        return CacheStats(
            **{k: getattr(self, k) - getattr(before, k) for k in vars(self)}
        )


@dataclass
class ReuseStats:
    """Monotonic counters for the cross-query reuse lattice (DESIGN.md §14).

    Kept separate from :class:`CacheStats` on purpose: ``hit_rate``
    stays the paper's Fig. 13 exact-match metric, while conjunct probes
    and derived serves are accounted here.  Registered as the
    ``repro_reuse_*`` metric family.
    """

    conjunct_lookups: int = 0
    conjunct_hits: int = 0
    conjunct_installs: int = 0
    composed_serves: int = 0
    subsumed_serves: int = 0
    recheck_rows: int = 0
    skipped_rows: int = 0

    @property
    def serves(self) -> int:
        """Scans answered from derived entries rather than exact hits."""
        return self.composed_serves + self.subsumed_serves

    def snapshot(self) -> "ReuseStats":
        return ReuseStats(**vars(self))

    def delta(self, before: "ReuseStats") -> "ReuseStats":
        return ReuseStats(
            **{k: getattr(self, k) - getattr(before, k) for k in vars(self)}
        )
