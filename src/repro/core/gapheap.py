"""Online bounded-range construction via a heap of the largest gaps.

The paper (§4.1.1) limits the number of ranges stored per cache entry.
While the scan streams qualifying row ranges, a bounded min-heap tracks
the *largest gaps* between qualifying rows; after the scan the kept gaps
are complemented into at most ``max_ranges`` merged ranges.

Merging only ever *adds* rows to the cached ranges (false positives); it
never drops a qualifying row (no false negatives), which is the safety
property the predicate cache relies on — the vectorized scan re-checks
the predicate on cached rows.

Two feeding modes share the same state:

* :meth:`add` streams one range at a time through a classic bounded
  min-heap (``heapq``), for callers that produce ranges incrementally.
* :meth:`add_ranges` ingests whole ``starts``/``ends`` arrays at once:
  gap widths are computed vectorially and the top ``max_ranges - 1``
  gaps are selected with ``np.partition``-style selection instead of a
  per-gap Python heap loop.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from .rowrange import RangeList

__all__ = ["GapHeapRangeBuilder"]


class GapHeapRangeBuilder:
    """Builds a bounded :class:`RangeList` from streamed qualifying ranges.

    Feed qualifying ranges in ascending row order with :meth:`add` (or in
    bulk with :meth:`add_ranges`); call :meth:`finish` once to obtain the
    merged result.  At most ``max_ranges`` ranges are produced, by
    keeping the ``max_ranges - 1`` widest gaps seen between consecutive
    qualifying ranges.

    Example:
        >>> b = GapHeapRangeBuilder(max_ranges=2)
        >>> for r in [(0, 2), (4, 6), (100, 110)]:
        ...     b.add(*r)
        >>> b.finish().to_pairs()
        [(0, 6), (100, 110)]
    """

    def __init__(self, max_ranges: int) -> None:
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        self.max_ranges = max_ranges
        # Min-heap of (gap_width, gap_start, gap_end) keeping the largest
        # max_ranges - 1 gaps.
        self._gaps: List[Tuple[int, int, int]] = []
        self._first_start: Optional[int] = None
        self._last_end: Optional[int] = None
        self._finished = False

    @property
    def rows_seen(self) -> int:
        """Number of rows spanned so far ignoring gaps (diagnostics)."""
        if self._first_start is None or self._last_end is None:
            return 0
        return self._last_end - self._first_start

    def add(self, start: int, end: int) -> None:
        """Stream the next qualifying range ``[start, end)``.

        Ranges must arrive in ascending, non-overlapping order.
        """
        if self._finished:
            raise RuntimeError("builder already finished")
        if end <= start:
            return
        if self._last_end is not None and start < self._last_end:
            raise ValueError(
                f"ranges must be streamed in ascending order; "
                f"got start {start} < previous end {self._last_end}"
            )
        if self._first_start is None:
            self._first_start = start
        elif start > self._last_end:  # a gap between qualifying runs
            self._push_gap(self._last_end, start)
        self._last_end = end

    def add_ranges(self, starts: np.ndarray, ends: np.ndarray) -> None:
        """Bulk-stream qualifying ranges ``[starts[i], ends[i])``.

        Ranges must be in ascending, non-overlapping order (empty ranges
        are ignored).  All gap bookkeeping is vectorized: gap widths come
        from one array subtraction and the largest ``max_ranges - 1``
        survivors — merged with any gaps already held — are selected with
        ``np.argpartition`` instead of per-gap heap pushes.
        """
        if self._finished:
            raise RuntimeError("builder already finished")
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        nonempty = ends > starts
        if not nonempty.all():
            starts, ends = starts[nonempty], ends[nonempty]
        if not len(starts):
            return
        if len(starts) > 1 and (starts[1:] < ends[:-1]).any():
            bad = int(np.flatnonzero(starts[1:] < ends[:-1])[0])
            raise ValueError(
                f"ranges must be streamed in ascending order; "
                f"got start {int(starts[bad + 1])} < previous end {int(ends[bad])}"
            )
        if self._last_end is not None and starts[0] < self._last_end:
            raise ValueError(
                f"ranges must be streamed in ascending order; "
                f"got start {int(starts[0])} < previous end {self._last_end}"
            )

        gap_starts = ends[:-1]
        gap_ends = starts[1:]
        if self._first_start is None:
            self._first_start = int(starts[0])
        elif starts[0] > self._last_end:  # gap back to the previous batch
            gap_starts = np.concatenate(([self._last_end], gap_starts))
            gap_ends = np.concatenate(([starts[0]], gap_ends))
        self._last_end = int(ends[-1])

        keep = self.max_ranges - 1
        if keep == 0:
            return
        widths = gap_ends - gap_starts
        positive = widths > 0
        if not positive.all():
            gap_starts, gap_ends, widths = (
                gap_starts[positive], gap_ends[positive], widths[positive],
            )
        if not len(widths):
            return
        if self._gaps:  # merge with gaps carried over from scalar adds
            carried = np.array(self._gaps, dtype=np.int64)
            widths = np.concatenate((carried[:, 0], widths))
            gap_starts = np.concatenate((carried[:, 1], gap_starts))
            gap_ends = np.concatenate((carried[:, 2], gap_ends))
        if len(widths) > keep:
            top = np.argpartition(widths, len(widths) - keep)[-keep:]
            widths, gap_starts, gap_ends = (
                widths[top], gap_starts[top], gap_ends[top],
            )
        self._gaps = [
            (int(w), int(s), int(e))
            for w, s, e in zip(widths, gap_starts, gap_ends)
        ]
        heapq.heapify(self._gaps)

    def add_range_list(self, ranges: RangeList) -> None:
        """Stream every range of a :class:`RangeList` (bulk path)."""
        self.add_ranges(ranges.starts, ranges.ends)

    def _push_gap(self, gap_start: int, gap_end: int) -> None:
        width = gap_end - gap_start
        entry = (width, gap_start, gap_end)
        if len(self._gaps) < self.max_ranges - 1:
            heapq.heappush(self._gaps, entry)
        elif self._gaps and width > self._gaps[0][0]:
            heapq.heapreplace(self._gaps, entry)
        # else: gap is smaller than all kept gaps -> merged over.

    def finish(self) -> RangeList:
        """Complement the kept gaps into the final bounded range list."""
        self._finished = True
        if self._first_start is None:
            return RangeList.empty()
        assert self._last_end is not None
        if not self._gaps:
            bounds = np.array([[self._first_start, self._last_end]], dtype=np.int64)
            return RangeList._wrap(bounds)
        kept = np.array(
            sorted((start, end) for _, start, end in self._gaps), dtype=np.int64
        )
        bounds = np.empty((len(kept) + 1, 2), dtype=np.int64)
        bounds[0, 0] = self._first_start
        bounds[1:, 0] = kept[:, 1]
        bounds[:-1, 1] = kept[:, 0]
        bounds[-1, 1] = self._last_end
        return RangeList._wrap(bounds)
