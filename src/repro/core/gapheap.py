"""Online bounded-range construction via a heap of the largest gaps.

The paper (§4.1.1) limits the number of ranges stored per cache entry.
While the scan streams qualifying row ranges, a bounded min-heap tracks
the *largest gaps* between qualifying rows; after the scan the kept gaps
are complemented into at most ``max_ranges`` merged ranges.

Merging only ever *adds* rows to the cached ranges (false positives); it
never drops a qualifying row (no false negatives), which is the safety
property the predicate cache relies on — the vectorized scan re-checks
the predicate on cached rows.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from .rowrange import RangeList, RowRange

__all__ = ["GapHeapRangeBuilder"]


class GapHeapRangeBuilder:
    """Builds a bounded :class:`RangeList` from streamed qualifying ranges.

    Feed qualifying ranges in ascending row order with :meth:`add`; call
    :meth:`finish` once to obtain the merged result.  At most
    ``max_ranges`` ranges are produced, by keeping the ``max_ranges - 1``
    widest gaps seen between consecutive qualifying ranges.

    Example:
        >>> b = GapHeapRangeBuilder(max_ranges=2)
        >>> for r in [(0, 2), (4, 6), (100, 110)]:
        ...     b.add(*r)
        >>> b.finish().to_pairs()
        [(0, 6), (100, 110)]
    """

    def __init__(self, max_ranges: int) -> None:
        if max_ranges < 1:
            raise ValueError("max_ranges must be >= 1")
        self.max_ranges = max_ranges
        # Min-heap of (gap_width, gap_start, gap_end) keeping the largest
        # max_ranges - 1 gaps.
        self._gaps: List[Tuple[int, int, int]] = []
        self._first_start: Optional[int] = None
        self._last_end: Optional[int] = None
        self._finished = False

    @property
    def rows_seen(self) -> int:
        """Number of rows spanned so far ignoring gaps (diagnostics)."""
        if self._first_start is None or self._last_end is None:
            return 0
        return self._last_end - self._first_start

    def add(self, start: int, end: int) -> None:
        """Stream the next qualifying range ``[start, end)``.

        Ranges must arrive in ascending, non-overlapping order.
        """
        if self._finished:
            raise RuntimeError("builder already finished")
        if end <= start:
            return
        if self._last_end is not None and start < self._last_end:
            raise ValueError(
                f"ranges must be streamed in ascending order; "
                f"got start {start} < previous end {self._last_end}"
            )
        if self._first_start is None:
            self._first_start = start
        elif start > self._last_end:  # a gap between qualifying runs
            self._push_gap(self._last_end, start)
        self._last_end = end

    def add_range_list(self, ranges: RangeList) -> None:
        """Stream every range of a :class:`RangeList`."""
        for r in ranges:
            self.add(r.start, r.end)

    def _push_gap(self, gap_start: int, gap_end: int) -> None:
        width = gap_end - gap_start
        entry = (width, gap_start, gap_end)
        if len(self._gaps) < self.max_ranges - 1:
            heapq.heappush(self._gaps, entry)
        elif self._gaps and width > self._gaps[0][0]:
            heapq.heapreplace(self._gaps, entry)
        # else: gap is smaller than all kept gaps -> merged over.

    def finish(self) -> RangeList:
        """Complement the kept gaps into the final bounded range list."""
        self._finished = True
        if self._first_start is None:
            return RangeList.empty()
        assert self._last_end is not None
        kept = sorted((start, end) for _, start, end in self._gaps)
        ranges: List[RowRange] = []
        cursor = self._first_start
        for gap_start, gap_end in kept:
            ranges.append(RowRange(cursor, gap_start))
            cursor = gap_end
        ranges.append(RowRange(cursor, self._last_end))
        result = RangeList.__new__(RangeList)
        result._ranges = ranges
        return result
