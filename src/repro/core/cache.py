"""The predicate cache: an inverted index from scan keys to row ranges.

This is the paper's contribution (§4).  The cache is a per-node hash
table mapping :class:`~repro.core.keys.ScanKey` to
:class:`~repro.core.entry.CacheEntry`.  It is filled as a side product
of scanning (the engine calls :meth:`record_slice_scan` with the row
ranges the vectorized scan produced anyway), consulted before scans
(:meth:`lookup` / :meth:`select_entry`), and invalidated by:

* ``layout`` changes of the scanned table (vacuum, reorganization) —
  row numbering changed, all entries on that table are dropped;
* ``data`` changes of any *build-side* table of a join-index entry —
  the semi-join filter's contents changed (§4.4).

Plain entries survive inserts/deletes/updates on their own table —
the design's headline property (§4.3).

Locking discipline (DESIGN.md §12): one re-entrant lock serializes
every mutation — installs, LRU reordering, eviction, invalidation,
generation bumps, stats — so concurrent serving threads interleave at
whole-operation granularity and generation stamps stay consistent with
the entry table.  Slice-state payloads themselves are published safely
without the lock: ``extend`` swaps in the new bounds array *before*
advancing the watermark, so a reader that raced an extension sees a
superset-safe (possibly slightly stale) state, never a torn one.
Mutation outside a ``with self._lock`` block (or a helper documented as
"caller holds ``_lock``") is rejected by linter rule RP007.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Dict, Iterable, List, Mapping, Optional, Tuple

from .. import invariants as _inv
from ..obs import lockwitness
from .config import PredicateCacheConfig
from .entry import BitmapSliceState, CacheEntry, RangeSliceState, SliceState
from .keys import ScanKey
from .policy import AdmissionPolicy, AlwaysAdmit
from .rowrange import RangeList
from .stats import CacheStats, ReuseStats

if TYPE_CHECKING:
    from ..obs.metrics import MetricsRegistry
    from ..persist.store import CacheStore
    from ..storage.table import Table

__all__ = ["PredicateCache"]


class PredicateCache:
    """Per-node predicate cache with LRU eviction.

    The cache is storage-agnostic: it never touches table data, only row
    ranges and version counters handed in by the scan path.  That is what
    lets the same class index Redshift-style native tables and external
    formats (§4.5) alike.

    Thread-safe: every public operation runs under ``_lock`` (see the
    module docstring for the discipline).  Lock ordering with an
    attached store is cache → store — the cache may call into the store
    while holding its lock, never the reverse (hydration installs run
    *without* the store's I/O lock held).
    """

    def __init__(
        self,
        config: Optional[PredicateCacheConfig] = None,
        policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.config = config if config is not None else PredicateCacheConfig()
        self.policy = policy if policy is not None else AlwaysAdmit()
        self._entries: "OrderedDict[ScanKey, CacheEntry]" = OrderedDict()
        self.stats = CacheStats()
        self.reuse_stats = ReuseStats()
        self._watched: Dict[str, object] = {}
        # Per-table invalidation generation: bumped whenever a table's
        # entries are dropped wholesale (vacuum/layout change).  Entries
        # are stamped at creation; installs with a stale stamp are
        # refused (see record_slice_scan).
        self._generations: Dict[str, int] = {}
        # Last observed layout_version (vacuum epoch) per watched table.
        # Persisted with every entry so recovery can tell whether row
        # numbering survived the restart (DESIGN.md §9).
        self._table_layouts: Dict[str, int] = {}
        # Optional durable store; when attached, install/extend/drop
        # events are written through (see repro/persist/).
        self._store: Optional["CacheStore"] = None
        # Re-entrant: invariant validation re-enters public read
        # methods (entries, generation_of, total_nbytes) under the lock.
        self._lock = lockwitness.named_rlock("PredicateCache._lock")

    # -- wiring ------------------------------------------------------------------

    def ping(self) -> bool:
        """Liveness probe for the health monitor (DESIGN.md §13).

        A live cache answers by briefly taking and releasing its lock —
        proving the node is both reachable and not wedged.  A dead
        node's tombstone raises
        :class:`~repro.faults.NodeDownError` instead.
        """
        with self._lock:
            return True

    def watch_table(self, table: "Table") -> None:
        """Subscribe to a table's change events (idempotent)."""
        with self._lock:
            if table.name in self._watched:
                return
            self._watched[table.name] = table
            self._table_layouts[table.name] = table.layout_version
        table.on_change(self._on_table_event)

    def watched_tables(self) -> List["Table"]:
        """The table objects this cache subscribed to (resize transfer)."""
        with self._lock:
            return list(self._watched.values())

    def table_layout_of(self, table_name: str) -> int:
        """Last observed layout_version (vacuum epoch) of a table."""
        with self._lock:
            return self._table_layouts.get(table_name, 0)

    def _on_table_event(self, table: "Table", event: str) -> None:
        if event == "layout":
            with self._lock:
                self._table_layouts[table.name] = table.layout_version
            self.invalidate_table(table.name)
        elif event == "data":
            self.invalidate_build_side(table.name)

    # -- persistence ---------------------------------------------------------------

    def attach_store(self, store: "CacheStore") -> None:
        """Enable write-through to a durable cache store.

        Every install/extend journals the new slice state; every
        invalidation/eviction journals the drop — the store stays a
        faithful mirror that a replacement node can hydrate from.
        """
        with self._lock:
            self._store = store

    def detach_store(self) -> None:
        with self._lock:
            self._store = None

    @property
    def store(self) -> Optional["CacheStore"]:
        """The attached write-through store, if any."""
        with self._lock:
            return self._store

    def install_restored(
        self,
        key: ScanKey,
        num_slices: int,
        build_versions: Mapping[str, int],
        slice_states: Mapping[int, SliceState],
        stats: Tuple[int, int, int] = (0, 0, 0),
        table_layout: Optional[int] = None,
        provenance: str = "scan",
        source_digests: Tuple[int, ...] = (),
    ) -> CacheEntry:
        """Install a warm-start entry recovered from a store.

        The entry is stamped with *this* cache's current generation for
        its table (revalidation already proved the row numbering is
        live), so subsequent scans may extend it like any other entry.
        Derived entries keep their recorded provenance across restarts.
        Does not write through — hydration must not re-journal what the
        store just replayed.
        """
        with self._lock:
            entry = CacheEntry(
                key,
                num_slices,
                dict(build_versions),
                generation=self._generations.get(key.table, 0),
                provenance=provenance,
                source_digests=source_digests,
            )
            for slice_id, state in slice_states.items():
                entry.slice_states[slice_id] = state
            entry.hits, entry.rows_qualifying, entry.rows_considered = (
                int(stats[0]), int(stats[1]), int(stats[2]),
            )
            self._entries[key] = entry
            if table_layout is not None:
                self._table_layouts.setdefault(key.table, int(table_layout))
            self._evict_if_needed()
            if _inv.ACTIVE:
                for state in slice_states.values():
                    _inv.check_slice_state(state)
                _inv.check_cache(self)
            return entry

    # -- lookups -------------------------------------------------------------------

    def lookup(
        self,
        key: ScanKey,
        current_versions: Optional[Mapping[str, int]] = None,
    ) -> Optional[CacheEntry]:
        """Find a live entry for ``key``; counts a lookup.

        ``current_versions`` maps build-side table names to their current
        ``data_version``; entries whose recorded versions mismatch are
        dropped as stale (defence in depth on top of event-driven
        invalidation).
        """
        with self._lock:
            self.stats.lookups += 1
            entry = self._find(key, current_versions)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            entry.hits += 1
            return entry

    def _find(
        self,
        key: ScanKey,
        current_versions: Optional[Mapping[str, int]],
    ) -> Optional[CacheEntry]:
        """Caller holds ``_lock``."""
        entry = self._entries.get(key)
        if entry is None:
            return None
        if current_versions is not None:
            for table_name, version in entry.build_versions.items():
                if current_versions.get(table_name, version) != version:
                    self._drop(key)
                    self.stats.stale_rejections += 1
                    return None
        self._entries.move_to_end(key)
        return entry

    def select_entry(
        self,
        keys: Iterable[ScanKey],
        current_versions: Optional[Mapping[str, int]] = None,
    ) -> Optional[CacheEntry]:
        """Pick the most selective live entry among candidate keys.

        The scan path offers both the join-extended key and the plain
        base key; per §4.4 we "choose the most selective matching
        entry".  Counts a single lookup (hit if any key matched).
        """
        with self._lock:
            self.stats.lookups += 1
            best: Optional[CacheEntry] = None
            for key in keys:
                entry = self._find(key, current_versions)
                if entry is None:
                    continue
                if best is None or entry.selectivity < best.selectivity:
                    best = entry
            if best is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            best.hits += 1
            return best

    def lookup_part(
        self,
        key: ScanKey,
        current_versions: Optional[Mapping[str, int]] = None,
    ) -> Optional[CacheEntry]:
        """Probe for one conjunct of a decomposed predicate (DESIGN.md §14).

        Identical liveness/staleness semantics to :meth:`lookup`, but
        accounted in :attr:`reuse_stats` rather than :attr:`stats` so the
        paper's Fig. 13 exact-match ``hit_rate`` is not diluted by the
        reuse lattice's extra probes.  Still touches the LRU and the
        entry's hit count — a conjunct serving a composition is in use.
        """
        with self._lock:
            self.reuse_stats.conjunct_lookups += 1
            entry = self._find(key, current_versions)
            if entry is None:
                return None
            self.reuse_stats.conjunct_hits += 1
            entry.hits += 1
            return entry

    def record_reuse_serve(self, basis: str) -> None:
        """Count one scan answered from derived entries ("composed"/"subsumed")."""
        with self._lock:
            if basis == "composed":
                self.reuse_stats.composed_serves += 1
            elif basis == "subsumed":
                self.reuse_stats.subsumed_serves += 1
            else:
                raise ValueError(f"unknown reuse serve basis {basis!r}")

    def record_reuse_rows(self, rechecked: int, skipped: int) -> None:
        """Fold one reuse-served scan's re-checked vs. skipped row counts."""
        with self._lock:
            self.reuse_stats.recheck_rows += int(rechecked)
            self.reuse_stats.skipped_rows += int(skipped)

    def __contains__(self, key: ScanKey) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- building -----------------------------------------------------------------

    def get_or_create(
        self,
        key: ScanKey,
        num_slices: int,
        build_versions: Optional[Mapping[str, int]] = None,
        provenance: str = "scan",
        source_digests: Tuple[int, ...] = (),
    ) -> CacheEntry:
        """The entry for ``key``, creating an empty one if needed.

        ``provenance``/``source_digests`` only stamp a *newly created*
        entry: an existing entry keeps its original provenance (a direct
        scan of ``x < 25`` and the decomposer's ``x < 25`` conjunct share
        one entry, first writer names it).  Derived entries are
        first-class for accounting and eviction — their payload bytes
        count against ``max_bytes`` exactly once, here, because the
        ephemeral composed/subsumed servings built *from* them are never
        installed (enforced by ``invariants.check_cache``).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                return entry
            if key.is_join_key and not self.config.cache_join_keys:
                raise ValueError("join-index keys are disabled by configuration")
            entry = CacheEntry(
                key,
                num_slices,
                dict(build_versions or {}),
                generation=self._generations.get(key.table, 0),
                provenance=provenance,
                source_digests=source_digests,
            )
            self._entries[key] = entry
            self.stats.inserts += 1
            if provenance == "conjunct":
                self.reuse_stats.conjunct_installs += 1
            self._evict_if_needed()
            return entry

    def generation_of(self, table_name: str) -> int:
        """Current invalidation generation of a table's entries."""
        with self._lock:
            return self._generations.get(table_name, 0)

    def record_slice_scan(
        self,
        entry: CacheEntry,
        slice_id: int,
        qualifying: RangeList,
        scanned_upto: int,
    ) -> None:
        """Record one slice's scan output into the entry.

        First call per slice creates the state; later calls extend the
        uncached tail (appends since the entry was built, §4.3.1).

        Stale installs are refused: if the entry was invalidated or
        evicted after the scan picked it up (a vacuum between lookup and
        install), or its generation stamp no longer matches the table's,
        the ranges describe row numbering that no longer exists and must
        not be (re)installed — the scan's results are still correct, only
        the cache write is dropped.  The whole check-then-install runs
        under ``_lock``, so a concurrent invalidation lands either
        before (install refused) or after (entry dropped) — never
        between the stamp check and the extension.
        """
        with self._lock:
            if (
                self._entries.get(entry.key) is not entry
                or entry.generation != self._generations.get(entry.key.table, 0)
            ):
                self.stats.stale_installs += 1
                return
            state = entry.slice_states[slice_id]
            if state is None:
                entry.slice_states[slice_id] = self._new_state(
                    qualifying, scanned_upto
                )
            else:
                state.extend(qualifying, scanned_upto)
                self.stats.extensions += 1
            if self._store is not None:
                self._store.log_state(
                    entry,
                    slice_id,
                    entry.slice_states[slice_id],
                    self._table_layouts.get(entry.key.table, 0),
                )
            # Recording state grows the entry's payload; re-enforce the byte
            # budget here, not just on insert (after the write-through, so a
            # resulting eviction's drop event lands after the state event).
            self._evict_if_needed()
            if _inv.ACTIVE:
                _inv.check_slice_state(
                    entry.slice_states[slice_id], slice_rows=scanned_upto
                )

    def record_entry_stats(
        self, entry: CacheEntry, rows_qualifying: int, rows_considered: int
    ) -> None:
        """Fold one slice scan's row counts into the entry's selectivity.

        Serialized on the cache lock: concurrent scan coordinators
        updating the same entry must not lose increments (the entry's
        unsynchronized ``record_scan_stats`` is for single-owner use).
        """
        with self._lock:
            entry.record_scan_stats(rows_qualifying, rows_considered)

    def _new_state(self, qualifying: RangeList, scanned_upto: int) -> SliceState:
        """Caller holds ``_lock``."""
        if self.config.variant == "range":
            return RangeSliceState(
                qualifying, scanned_upto, self.config.max_ranges_per_slice
            )
        return BitmapSliceState(
            qualifying, scanned_upto, self.config.bitmap_block_rows
        )

    # -- invalidation ---------------------------------------------------------------

    def invalidate_table(self, table_name: str) -> int:
        """Drop every entry scanning ``table_name`` (layout changed)."""
        with self._lock:
            self._generations[table_name] = (
                self._generations.get(table_name, 0) + 1
            )
            stale = [k for k in self._entries if k.table == table_name]
            for key in stale:
                self._drop(key)
            self.stats.invalidations += len(stale)
            return len(stale)

    def invalidate_build_side(self, table_name: str) -> int:
        """Drop join-index entries whose build side includes the table."""
        with self._lock:
            stale = [
                k for k in self._entries if table_name in k.referenced_tables()
            ]
            for key in stale:
                self._drop(key)
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> int:
        """Drop every entry, counting invalidations.

        Routes through :meth:`_drop` so the admission policy forgets
        each key — a cleared key starts from scratch and can earn
        re-admission, instead of being silently blacklisted by stale
        observation state.
        """
        with self._lock:
            stale = list(self._entries)
            for table_name in {key.table for key in stale}:
                self._generations[table_name] = (
                    self._generations.get(table_name, 0) + 1
                )
            for key in stale:
                self._drop(key)
            self.stats.invalidations += len(stale)
            return len(stale)

    def drop_stale(self, key: ScanKey) -> bool:
        """Drop one entry detected inconsistent at scan time.

        The degraded-scan path calls this when a cached state disagrees
        with the slice it describes (e.g. its watermark exceeds the
        slice's row count after a missed invalidation).  Routes through
        :meth:`_drop` so the admission policy forgets the key and the
        invalidation shows up in metrics.
        """
        with self._lock:
            if key in self._entries:
                self._drop(key)
                self.stats.invalidations += 1
                return True
            return False

    def admits(self, key: ScanKey) -> bool:
        """True if an entry exists or the admission policy allows one."""
        with self._lock:
            if key in self._entries:
                return True
        return self.policy.should_admit(key)

    def _drop(self, key: ScanKey) -> None:
        """Caller holds ``_lock``."""
        entry = self._entries.pop(key, None)
        self.policy.forget(key)
        self._log_drop(entry)

    def _log_drop(self, entry: Optional[CacheEntry]) -> None:
        """Write a drop through to the store: only this cache's
        installed slice states (a cluster node must not erase its
        peers' shares of the same entry).  Caller holds ``_lock``."""
        if entry is None or self._store is None:
            return
        slices = [
            slice_id
            for slice_id, state in enumerate(entry.slice_states)
            if state is not None
        ]
        if slices:
            self._store.log_drop(entry.key, slices)

    # -- capacity ----------------------------------------------------------------

    def trim_to_bytes(self, budget_bytes: int) -> int:
        """Evict LRU entries until payload bytes fit ``budget_bytes``.

        The memory-pressure hook (DESIGN.md §13): under overload the
        health monitor trims the cache toward its byte budget *before*
        allocation pressure turns into an OOM kill, instead of waiting
        for the per-install enforcement in :meth:`_evict_if_needed`.
        At least one entry always survives (mirroring the byte-budget
        eviction rule).  Returns the number of payload bytes released;
        evictions are counted and written through to an attached store
        like any other drop.
        """
        with self._lock:
            total = self.total_nbytes
            released = 0
            while len(self._entries) > 1 and total > budget_bytes:
                _, evicted = self._entries.popitem(last=False)
                total -= evicted.nbytes
                released += evicted.nbytes
                self._log_drop(evicted)
                self.stats.evictions += 1
            if _inv.ACTIVE:
                _inv.check_cache(self)
            return released

    def _evict_if_needed(self) -> None:
        """Caller holds ``_lock``."""
        limit = self.config.max_entries
        while limit is not None and len(self._entries) > limit:
            _, evicted = self._entries.popitem(last=False)
            self._log_drop(evicted)
            self.stats.evictions += 1
        max_bytes = self.config.max_bytes
        if max_bytes is not None:
            # Compute the payload total once and decrement per eviction —
            # re-summing every entry per loop iteration is quadratic.
            total = self.total_nbytes
            while len(self._entries) > 1 and total > max_bytes:
                _, evicted = self._entries.popitem(last=False)
                total -= evicted.nbytes
                self._log_drop(evicted)
                self.stats.evictions += 1
        if _inv.ACTIVE:
            _inv.check_cache(self)

    # -- observability -------------------------------------------------------------

    def register_metrics(
        self,
        registry: "MetricsRegistry",
        labels: Optional[Mapping[str, str]] = None,
        prefix: str = "repro_predicate_cache",
    ) -> None:
        """Expose this cache on a :class:`~repro.obs.MetricsRegistry`.

        All series are callback-backed reads of the stats the cache
        keeps anyway, so registration adds nothing to the scan path.
        Scrape-time reads run without the cache lock (single attribute
        loads of monotonic counters — a scrape may be one increment
        stale, never torn).  ``labels`` distinguishes multiple caches
        (e.g. cluster nodes).
        """
        for field_name in vars(self.stats):
            registry.counter(
                f"{prefix}_{field_name}_total",
                f"Predicate cache {field_name.replace('_', ' ')}",
                labels=labels,
                fn=lambda s=self, f=field_name: getattr(s.stats, f),
            )
        registry.gauge(
            f"{prefix}_entries",
            "Live predicate-cache entries",
            labels=labels,
            fn=lambda: len(self._entries),
        )
        registry.gauge(
            f"{prefix}_nbytes",
            "Total payload bytes across entries (Table 3 metric)",
            labels=labels,
            fn=lambda: self.total_nbytes,
        )
        registry.gauge(
            f"{prefix}_hit_rate",
            "Hits over lookups (Fig. 13 metric)",
            labels=labels,
            fn=lambda: self.stats.hit_rate,
        )
        # The reuse lattice's own metric family (DESIGN.md §14).  Keyed
        # off the cache-family prefix so per-node cluster registrations
        # ("repro_node_predicate_cache") stay distinct.
        reuse_prefix = (
            prefix.replace("predicate_cache", "reuse")
            if "predicate_cache" in prefix
            else f"{prefix}_reuse"
        )
        for field_name in vars(self.reuse_stats):
            registry.counter(
                f"{reuse_prefix}_{field_name}_total",
                f"Reuse lattice {field_name.replace('_', ' ')}",
                labels=labels,
                fn=lambda s=self, f=field_name: getattr(s.reuse_stats, f),
            )

    # -- introspection -------------------------------------------------------------

    @property
    def total_nbytes(self) -> int:
        """Total payload bytes across entries (the Table 3 metric)."""
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    def entries(self) -> List[CacheEntry]:
        with self._lock:
            return list(self._entries.values())

    def keys(self) -> List[ScanKey]:
        with self._lock:
            return list(self._entries.keys())
