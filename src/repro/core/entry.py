"""Cache entry payloads: per-slice qualifying-row state.

Both index variants (§4.1.1–4.1.2) share the same lifecycle:

1. On the first scan, the qualifying row ranges of each slice are
   recorded, together with ``last_cached_row`` — the slice size at scan
   time.
2. On a repeat, :meth:`candidates` returns the rows the scan must still
   look at: the cached qualifying rows (a superset of the truth — false
   positives only) plus the *uncached tail* appended since.
3. After the repeat scanned the tail, :meth:`extend` folds the tail's
   qualifying rows in, keeping the entry complete without rebuilds —
   the "online under inserts" property of §4.3.1.

The **range variant** stores at most ``max_ranges`` merged row ranges
(built with the gap heap).  The **bitmap variant** stores one bit per
``block_size`` rows; it grows with the table but is ~8x smaller at the
paper's settings (Table 3).

Publication ordering: installs and extensions are serialized by the
owning :class:`~repro.core.cache.PredicateCache` lock, but *readers*
(the scan path consuming :meth:`SliceState.candidates`) run lock-free.
Both ``extend`` implementations therefore publish the new qualifying
state **before** advancing ``last_cached_row``: a racing reader sees
either the old state (and re-scans the tail) or the new state with the
old watermark (a superset of the truth) — never a new watermark over
old state, which would silently skip tail rows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .rowrange import RangeList

__all__ = [
    "SliceState",
    "RangeSliceState",
    "BitmapSliceState",
    "CacheEntry",
    "PROVENANCES",
]

# How an entry came to exist (DESIGN.md §14).  Order matters: the
# persistence layer encodes provenance as the index into this tuple.
PROVENANCES: Tuple[str, ...] = ("scan", "conjunct", "composed", "subsumed")


class SliceState:
    """Per-slice qualifying-row state (abstract)."""

    last_cached_row: int

    def candidates(self, num_rows: int) -> RangeList:
        """Rows a repeated scan must evaluate: cached hits + new tail."""
        raise NotImplementedError

    def cached_candidates(self) -> RangeList:
        """Just the cached qualifying rows (rows < last_cached_row)."""
        raise NotImplementedError

    def extend(self, tail_qualifying: RangeList, scanned_upto: int) -> None:
        """Fold in qualifying rows of the previously uncached tail."""
        raise NotImplementedError

    @property
    def nbytes(self) -> int:
        raise NotImplementedError

    def _tail_range(self, num_rows: int) -> RangeList:
        if num_rows > self.last_cached_row:
            return RangeList([(self.last_cached_row, num_rows)])
        return RangeList.empty()


class RangeSliceState(SliceState):
    """Bounded list of merged row ranges (§4.1.1)."""

    __slots__ = ("ranges", "last_cached_row", "max_ranges")

    def __init__(
        self, qualifying: RangeList, scanned_upto: int, max_ranges: int
    ) -> None:
        self.max_ranges = max_ranges
        self.ranges = qualifying.coalesce(max_ranges)
        self.last_cached_row = scanned_upto

    def candidates(self, num_rows: int) -> RangeList:
        return self.ranges.union(self._tail_range(num_rows))

    def cached_candidates(self) -> RangeList:
        return self.ranges

    def extend(self, tail_qualifying: RangeList, scanned_upto: int) -> None:
        if scanned_upto < self.last_cached_row:
            raise ValueError(
                f"cannot shrink cached region from {self.last_cached_row} "
                f"to {scanned_upto}"
            )
        merged = self.ranges.union(tail_qualifying.clip(self.last_cached_row, scanned_upto))
        # Publish the merged ranges before advancing the watermark (see
        # module docstring): lock-free readers must never observe a new
        # watermark over the old, tail-less range list.
        self.ranges = merged.coalesce(self.max_ranges)
        self.last_cached_row = scanned_upto

    @property
    def nbytes(self) -> int:
        # Two 8-byte row ids per range plus the watermark.
        return self.ranges.nbytes + 8


class BitmapSliceState(SliceState):
    """One bit per block of ``block_size`` rows (§4.1.2)."""

    __slots__ = ("bits", "last_cached_row", "block_size")

    def __init__(
        self, qualifying: RangeList, scanned_upto: int, block_size: int
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        self.bits = np.zeros(self._num_blocks(scanned_upto), dtype=bool)
        self.last_cached_row = scanned_upto
        self._set_bits(qualifying)

    def _num_blocks(self, num_rows: int) -> int:
        return (num_rows + self.block_size - 1) // self.block_size

    def _set_bits(self, qualifying: RangeList) -> None:
        bounds = qualifying.bounds
        if not len(bounds):
            return
        # Boundary-delta accumulation over block indices: +1 at each
        # range's first block, -1 one past its last block, prefix sum > 0
        # marks covered blocks — no per-range Python loop.
        delta = np.zeros(len(self.bits) + 1, dtype=np.int64)
        np.add.at(delta, bounds[:, 0] // self.block_size, 1)
        np.add.at(delta, (bounds[:, 1] - 1) // self.block_size + 1, -1)
        self.bits |= np.cumsum(delta[:-1]) > 0

    def candidates(self, num_rows: int) -> RangeList:
        return self.cached_candidates().union(self._tail_range(num_rows))

    def cached_candidates(self) -> RangeList:
        if not self.bits.any():
            return RangeList.empty()
        # Merged runs of set bits, scaled to row ranges and clipped at the
        # watermark (the last block may be partial).
        bounds = RangeList.from_mask(self.bits).bounds * self.block_size
        bounds = bounds.copy()
        np.minimum(bounds[:, 1], self.last_cached_row, out=bounds[:, 1])
        return RangeList.from_bounds(bounds)

    def extend(self, tail_qualifying: RangeList, scanned_upto: int) -> None:
        if scanned_upto < self.last_cached_row:
            raise ValueError(
                f"cannot shrink cached region from {self.last_cached_row} "
                f"to {scanned_upto}"
            )
        needed = self._num_blocks(scanned_upto)
        if needed > len(self.bits):
            grown = np.zeros(needed, dtype=bool)
            grown[: len(self.bits)] = self.bits
            self.bits = grown
        # Set the tail bits before advancing the watermark (see module
        # docstring): a racing lock-free reader then sees at worst extra
        # candidate blocks under the old watermark — superset-safe.
        self._set_bits(tail_qualifying.clip(self.last_cached_row, scanned_upto))
        self.last_cached_row = scanned_upto

    @property
    def nbytes(self) -> int:
        # One bit per block plus the watermark.
        return (len(self.bits) + 7) // 8 + 8


class CacheEntry:
    """One predicate-cache entry: per-slice states plus bookkeeping."""

    __slots__ = (
        "key",
        "slice_states",
        "build_versions",
        "generation",
        "hits",
        "rows_qualifying",
        "rows_considered",
        "provenance",
        "source_digests",
    )

    def __init__(
        self,
        key,
        num_slices: int,
        build_versions: dict,
        generation: int = 0,
        provenance: str = "scan",
        source_digests: Tuple[int, ...] = (),
    ) -> None:
        self.key = key
        self.slice_states: List[Optional[SliceState]] = [None] * num_slices
        # data_version of each build-side table at entry creation; a
        # mismatch at lookup time means the semi-join filter contents
        # may have changed and the entry is stale (§4.4).
        self.build_versions = dict(build_versions)
        # The cache's per-table invalidation generation when this entry
        # was created.  A scan that prepared against an older generation
        # (a vacuum fired mid-flight) must not install its row ranges:
        # the numbering they describe no longer exists.
        self.generation = generation
        self.hits = 0
        self.rows_qualifying = 0
        self.rows_considered = 0
        # How this entry came to exist (DESIGN.md §14): "scan" for a
        # direct install, "conjunct" for a decomposed part, "composed" /
        # "subsumed" for full-key entries filled by a reuse-served scan.
        # Derived entries record the key digests they were built from so
        # explain/analyze and the invariant checker can audit the lattice.
        if provenance not in PROVENANCES:
            raise ValueError(f"unknown entry provenance {provenance!r}")
        self.provenance = provenance
        self.source_digests: Tuple[int, ...] = tuple(source_digests)

    @property
    def complete(self) -> bool:
        """True once every slice has recorded state."""
        return all(state is not None for state in self.slice_states)

    @property
    def selectivity(self) -> float:
        """Fraction of considered rows that qualified (1.0 if unknown).

        Drives the "choose the most selective matching entry" rule of
        §4.4 when both a plain and a join-index entry match.
        """
        if self.rows_considered == 0:
            return 1.0
        return self.rows_qualifying / self.rows_considered

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.slice_states if s is not None)

    def record_scan_stats(self, qualifying: int, considered: int) -> None:
        self.rows_qualifying += qualifying
        self.rows_considered += considered
