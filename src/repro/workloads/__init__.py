"""Workloads: benchmark datasets, query sets, and workload simulators.

* :mod:`repro.workloads.tpch` — TPC-H dbgen (uniform and skewed [3])
  plus the 22-query set (simplified to the engine's SQL subset),
* :mod:`repro.workloads.ssb` — the Star Schema Benchmark,
* :mod:`repro.workloads.tpcds_lite` — a TPC-DS-shaped store-sales slice,
* :mod:`repro.workloads.fleet` — the fleet-of-clusters simulator behind
  the paper's Section 2 workload analysis,
* :mod:`repro.workloads.customer` — the paper's internal customer
  Workloads A and B (hit-rate and scan-repetition experiments),
* :mod:`repro.workloads.loadgen` — seeded closed-loop load generation
  for the concurrent serving layer.
"""

from . import customer, fleet, loadgen, ssb, tpcds_lite, tpch
from .loadgen import LoadGenerator, LoadReport, LoadScript, run_closed_loop

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "LoadScript",
    "customer",
    "fleet",
    "loadgen",
    "run_closed_loop",
    "ssb",
    "tpch",
    "tpcds_lite",
]
