"""TPC-H: schema, data generator (uniform and skewed), and query set.

The generator follows the TPC-H population rules at reduced scale:
``scale_factor=1`` would produce the standard 6 M-row ``lineitem``; the
benchmarks run at ``scale_factor≈0.01–0.05``.  ``skew > 0`` produces
the *skewed* TPC-H variant the paper evaluates (its reference [3]):
categorical and key columns are drawn Zipfian instead of uniformly, so
selective predicates hit rare values whose rows concentrate in few
blocks — the regime where block-skipping techniques pay off.

Orders are generated in ``o_orderdate`` order and lineitems in
``l_orderkey`` order, mirroring natural ingestion order in a warehouse
(date-correlated clustering).

The 22 queries are expressed in the engine's SQL subset.  Queries whose
original form needs correlated subqueries / CASE / LIKE are simplified
to variants that preserve the *scan-and-join* structure (the predicate
cache's concern); every simplification is listed in ``SIMPLIFICATIONS``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..storage.database import Database
from ..storage.dtypes import DataType, date_to_days
from ..storage.table import ColumnSpec, TableSchema

__all__ = [
    "SCHEMAS",
    "SIMPLIFICATIONS",
    "clusterize",
    "generate",
    "load",
    "queries",
    "query",
    "zipf_choice",
]

_D = DataType

SCHEMAS: Dict[str, TableSchema] = {
    "region": TableSchema(
        "region",
        (ColumnSpec("r_regionkey", _D.INT64), ColumnSpec("r_name", _D.STRING)),
    ),
    "nation": TableSchema(
        "nation",
        (
            ColumnSpec("n_nationkey", _D.INT64),
            ColumnSpec("n_name", _D.STRING),
            ColumnSpec("n_regionkey", _D.INT64),
        ),
    ),
    "supplier": TableSchema(
        "supplier",
        (
            ColumnSpec("s_suppkey", _D.INT64),
            ColumnSpec("s_name", _D.STRING),
            ColumnSpec("s_nationkey", _D.INT64),
            ColumnSpec("s_acctbal", _D.FLOAT64),
        ),
        dist_key="s_suppkey",
    ),
    "customer": TableSchema(
        "customer",
        (
            ColumnSpec("c_custkey", _D.INT64),
            ColumnSpec("c_name", _D.STRING),
            ColumnSpec("c_nationkey", _D.INT64),
            ColumnSpec("c_mktsegment", _D.STRING),
            ColumnSpec("c_acctbal", _D.FLOAT64),
        ),
        dist_key="c_custkey",
    ),
    "part": TableSchema(
        "part",
        (
            ColumnSpec("p_partkey", _D.INT64),
            ColumnSpec("p_name", _D.STRING),
            ColumnSpec("p_mfgr", _D.STRING),
            ColumnSpec("p_brand", _D.STRING),
            ColumnSpec("p_type_category", _D.STRING),
            ColumnSpec("p_type", _D.STRING),
            ColumnSpec("p_size", _D.INT64),
            ColumnSpec("p_container", _D.STRING),
            ColumnSpec("p_retailprice", _D.FLOAT64),
        ),
        dist_key="p_partkey",
    ),
    "partsupp": TableSchema(
        "partsupp",
        (
            ColumnSpec("ps_partkey", _D.INT64),
            ColumnSpec("ps_suppkey", _D.INT64),
            ColumnSpec("ps_availqty", _D.INT64),
            ColumnSpec("ps_supplycost", _D.FLOAT64),
        ),
        dist_key="ps_partkey",
    ),
    "orders": TableSchema(
        "orders",
        (
            ColumnSpec("o_orderkey", _D.INT64),
            ColumnSpec("o_custkey", _D.INT64),
            ColumnSpec("o_orderstatus", _D.STRING),
            ColumnSpec("o_totalprice", _D.FLOAT64),
            ColumnSpec("o_orderdate", _D.DATE),
            ColumnSpec("o_orderpriority", _D.STRING),
            ColumnSpec("o_shippriority", _D.INT64),
        ),
        dist_key="o_orderkey",
    ),
    "lineitem": TableSchema(
        "lineitem",
        (
            ColumnSpec("l_orderkey", _D.INT64),
            ColumnSpec("l_partkey", _D.INT64),
            ColumnSpec("l_suppkey", _D.INT64),
            ColumnSpec("l_linenumber", _D.INT64),
            ColumnSpec("l_quantity", _D.FLOAT64),
            ColumnSpec("l_extendedprice", _D.FLOAT64),
            ColumnSpec("l_discount", _D.FLOAT64),
            ColumnSpec("l_tax", _D.FLOAT64),
            ColumnSpec("l_returnflag", _D.STRING),
            ColumnSpec("l_linestatus", _D.STRING),
            ColumnSpec("l_shipdate", _D.DATE),
            ColumnSpec("l_commitdate", _D.DATE),
            ColumnSpec("l_receiptdate", _D.DATE),
            ColumnSpec("l_shipinstruct", _D.STRING),
            ColumnSpec("l_shipmode", _D.STRING),
        ),
        dist_key="l_orderkey",
    ),
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_SHIPINSTRUCT = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
]
_COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
    "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
    "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange",
    "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder",
    "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon",
    "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
    "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white",
    "yellow",
]

_TYPE_CATEGORIES = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
_TYPE_FINISH = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
_TYPE_METAL = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_TYPES = [
    f"{c} {f} {m}"
    for c in _TYPE_CATEGORIES
    for f in _TYPE_FINISH
    for m in _TYPE_METAL
]

_START_DATE = date_to_days("1992-01-01")
_END_DATE = date_to_days("1998-08-02")

SIMPLIFICATIONS = {
    "Q2": "min-cost aggregate without the correlated min subquery",
    "Q4": "EXISTS rewritten as join + count(distinct o_orderkey)",
    "Q5": "drops the c_nationkey = s_nationkey cycle condition",
    "Q7": "single nation dimension (no supplier/customer nation pair)",
    "Q8": "market share ratio simplified to revenue by year and nation",
    "Q9": "partsupp cost term dropped (profit ~ discounted revenue)",
    "Q12": "CASE priority counts simplified to count(*) per shipmode",
    "Q13": "left join + nested aggregate simplified to order counts",
    "Q14": "CASE promo fraction replaced by the LIKE filter alone",
    "Q15": "revenue view + max subquery replaced by order/limit 1",
    "Q16": "drops the supplier NOT IN subquery",
    "Q17": "drops the correlated avg-quantity subquery",
    "Q18": "drops the HAVING sum subquery (top quantities instead)",
    "Q20": "supplier availability check without nested subqueries",
    "Q21": "waiting-supplier count without the anti-join conditions",
    "Q22": "phone-prefix/acctbal subqueries replaced by acctbal filter",
}


def clusterize(
    values: np.ndarray,
    window: int,
    offset: int = 0,
) -> np.ndarray:
    """Sort values within windows of ``window`` rows (temporal locality).

    Skewed real-world data is not just *frequency*-skewed but also
    *temporally clustered* — hot values arrive in bursts (campaigns,
    batch loads).  The paper's skewed-TPC-H reference [3] produces such
    correlated skew; this transform adds it to Zipf draws: within each
    window the values are sorted, so rare values concentrate in few
    blocks instead of being sprinkled everywhere.
    """
    if window <= 1:
        return values
    out = values.copy()
    start = -offset % window if offset else 0
    if start:
        out[:start].sort()
    for begin in range(start, len(out), window):
        out[begin : begin + window].sort()
    return out


def zipf_choice(
    rng: np.random.Generator,
    num_values: int,
    size: int,
    skew: float,
) -> np.ndarray:
    """Draw ``size`` ranks from ``[0, num_values)``.

    ``skew=0`` is uniform; larger values concentrate mass on low ranks
    with probability ∝ 1/(rank+1)^skew (a Zipf-Mandelbrot draw).
    """
    if num_values <= 0:
        raise ValueError("num_values must be positive")
    if skew <= 0:
        return rng.integers(0, num_values, size)
    weights = 1.0 / np.power(np.arange(1, num_values + 1, dtype=np.float64), skew)
    weights /= weights.sum()
    return rng.choice(num_values, size=size, p=weights)


def generate(
    scale_factor: float = 0.01,
    skew: float = 0.0,
    seed: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate all eight TPC-H tables as column dictionaries."""
    rng = np.random.default_rng(seed)
    num_supplier = max(10, int(10_000 * scale_factor))
    num_customer = max(30, int(150_000 * scale_factor))
    num_part = max(40, int(200_000 * scale_factor))
    num_orders = max(100, int(1_500_000 * scale_factor))

    tables: Dict[str, Dict[str, np.ndarray]] = {}

    tables["region"] = {
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.array(_REGIONS, dtype=object),
    }
    tables["nation"] = {
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_name": np.array(_NATIONS, dtype=object),
        "n_regionkey": np.arange(25, dtype=np.int64) % 5,
    }
    tables["supplier"] = {
        "s_suppkey": np.arange(1, num_supplier + 1, dtype=np.int64),
        "s_name": np.array(
            [f"Supplier#{i:09d}" for i in range(1, num_supplier + 1)], dtype=object
        ),
        "s_nationkey": zipf_choice(rng, 25, num_supplier, skew),
        "s_acctbal": np.round(rng.uniform(-999.99, 9999.99, num_supplier), 2),
    }
    tables["customer"] = {
        "c_custkey": np.arange(1, num_customer + 1, dtype=np.int64),
        "c_name": np.array(
            [f"Customer#{i:09d}" for i in range(1, num_customer + 1)], dtype=object
        ),
        "c_nationkey": zipf_choice(rng, 25, num_customer, skew),
        "c_mktsegment": np.array(_SEGMENTS, dtype=object)[
            zipf_choice(rng, len(_SEGMENTS), num_customer, skew)
        ],
        "c_acctbal": np.round(rng.uniform(-999.99, 9999.99, num_customer), 2),
    }

    brand_ranks = zipf_choice(rng, 25, num_part, skew)
    type_ranks = zipf_choice(rng, len(_TYPES), num_part, skew)
    color_picks = zipf_choice(rng, len(_COLORS), num_part * 3, skew).reshape(
        num_part, 3
    )
    part_names = np.array(
        [" ".join(_COLORS[c] for c in row) for row in color_picks], dtype=object
    )
    retail = np.round(
        900.0 + (np.arange(1, num_part + 1) % 1000) / 10.0 + rng.uniform(0, 100, num_part),
        2,
    )
    tables["part"] = {
        "p_partkey": np.arange(1, num_part + 1, dtype=np.int64),
        "p_name": part_names,
        "p_mfgr": np.array(
            [f"Manufacturer#{r % 5 + 1}" for r in brand_ranks], dtype=object
        ),
        "p_brand": np.array(
            [f"Brand#{r // 5 + 1}{r % 5 + 1}" for r in brand_ranks], dtype=object
        ),
        "p_type_category": np.array(
            [_TYPES[r].split(" ")[0] for r in type_ranks], dtype=object
        ),
        "p_type": np.array([_TYPES[r] for r in type_ranks], dtype=object),
        "p_size": 1 + zipf_choice(rng, 50, num_part, skew).astype(np.int64),
        "p_container": np.array(_CONTAINERS, dtype=object)[
            zipf_choice(rng, len(_CONTAINERS), num_part, skew)
        ],
        "p_retailprice": retail,
    }

    num_ps = num_part * 4
    ps_part = np.repeat(np.arange(1, num_part + 1, dtype=np.int64), 4)
    tables["partsupp"] = {
        "ps_partkey": ps_part,
        "ps_suppkey": 1 + zipf_choice(rng, num_supplier, num_ps, skew).astype(np.int64),
        "ps_availqty": rng.integers(1, 10_000, num_ps),
        "ps_supplycost": np.round(rng.uniform(1.0, 1000.0, num_ps), 2),
    }

    # Orders arrive in date order (natural ingestion clustering).
    if skew > 0:
        # Skewed activity: later dates are hotter.
        offsets = _END_DATE - _START_DATE - zipf_choice(
            rng, _END_DATE - _START_DATE, num_orders, skew / 2
        )
    else:
        offsets = rng.integers(0, _END_DATE - _START_DATE, num_orders)
    orderdates = np.sort(_START_DATE + offsets).astype(np.int64)
    order_status = np.where(
        orderdates < date_to_days("1995-06-17"), "F", "O"
    ).astype(object)
    tables["orders"] = {
        "o_orderkey": np.arange(1, num_orders + 1, dtype=np.int64),
        "o_custkey": 1 + zipf_choice(rng, num_customer, num_orders, skew).astype(np.int64),
        "o_orderstatus": order_status,
        "o_totalprice": np.round(rng.uniform(850.0, 560_000.0, num_orders), 2),
        "o_orderdate": orderdates,
        "o_orderpriority": np.array(_PRIORITIES, dtype=object)[
            zipf_choice(rng, len(_PRIORITIES), num_orders, skew)
        ],
        "o_shippriority": np.zeros(num_orders, dtype=np.int64),
    }

    lines_per_order = rng.integers(1, 8, num_orders)
    num_lineitem = int(lines_per_order.sum())
    l_orderkey = np.repeat(tables["orders"]["o_orderkey"], lines_per_order)
    l_orderdate = np.repeat(orderdates, lines_per_order)
    # Skewed data is also temporally clustered (hot values in bursts);
    # uniform data stays unclustered (window 0 = no-op).
    cluster = 4000 if skew > 0 else 0
    l_partkey = 1 + clusterize(
        zipf_choice(rng, num_part, num_lineitem, skew), cluster, offset=0
    ).astype(np.int64)
    quantity = 1 + clusterize(
        zipf_choice(rng, 50, num_lineitem, skew),
        cluster and cluster + 1500,
        offset=700,
    ).astype(np.float64)
    partprice = retail[l_partkey - 1]
    shipdate = l_orderdate + rng.integers(1, 122, num_lineitem)
    commitdate = l_orderdate + rng.integers(30, 91, num_lineitem)
    receiptdate = shipdate + rng.integers(1, 31, num_lineitem)
    returnflag = np.where(
        receiptdate <= date_to_days("1995-06-17"),
        np.where(rng.random(num_lineitem) < 0.5, "R", "A"),
        "N",
    ).astype(object)
    linestatus = np.where(
        shipdate > date_to_days("1995-06-17"), "O", "F"
    ).astype(object)
    tables["lineitem"] = {
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": 1 + clusterize(
            zipf_choice(rng, num_supplier, num_lineitem, skew),
            cluster and cluster + 900,
            offset=300,
        ).astype(np.int64),
        "l_linenumber": np.concatenate(
            [np.arange(1, n + 1) for n in lines_per_order]
        ).astype(np.int64),
        "l_quantity": quantity,
        "l_extendedprice": np.round(quantity * partprice, 2),
        "l_discount": clusterize(
            zipf_choice(rng, 11, num_lineitem, skew),
            cluster and cluster + 2500,
            offset=1200,
        ) / 100.0,
        "l_tax": rng.integers(0, 9, num_lineitem) / 100.0,
        "l_returnflag": returnflag,
        "l_linestatus": linestatus,
        "l_shipdate": shipdate.astype(np.int64),
        "l_commitdate": commitdate.astype(np.int64),
        "l_receiptdate": receiptdate.astype(np.int64),
        "l_shipinstruct": np.array(_SHIPINSTRUCT, dtype=object)[
            zipf_choice(rng, len(_SHIPINSTRUCT), num_lineitem, skew)
        ],
        "l_shipmode": np.array(_SHIPMODES, dtype=object)[
            zipf_choice(rng, len(_SHIPMODES), num_lineitem, skew)
        ],
    }
    return tables


def load(
    database: Database,
    scale_factor: float = 0.01,
    skew: float = 0.0,
    seed: int = 0,
) -> None:
    """Create and populate all TPC-H tables in ``database``."""
    data = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    for name, schema in SCHEMAS.items():
        table = database.create_table(schema)
        table.insert(data[name], database.begin())


def d(date_text: str) -> int:
    """Date literal as days-since-epoch (the engine's date encoding)."""
    return date_to_days(date_text)


def queries(skewed: bool = False) -> Dict[str, str]:
    """The 22-query set with fixed literals.

    ``skewed=True`` picks literals that are *rare* under the Zipfian
    distribution (high selectivity), the regime where the paper's
    skewed run shows its gains.
    """
    brand_a = "Brand#45" if skewed else "Brand#12"
    brand_b = "Brand#34" if skewed else "Brand#23"
    brand_c = "Brand#55" if skewed else "Brand#34"
    quantity_hi = 45 if skewed else 11
    return {
        "Q1": f"""
            select l_returnflag, l_linestatus,
                   sum(l_quantity) as sum_qty,
                   sum(l_extendedprice) as sum_base_price,
                   sum(l_extendedprice * (1 - l_discount)) as sum_disc_price,
                   avg(l_quantity) as avg_qty,
                   avg(l_extendedprice) as avg_price,
                   avg(l_discount) as avg_disc,
                   count(*) as count_order
            from lineitem
            where l_shipdate <= {d('1998-09-02') - 90}
            group by l_returnflag, l_linestatus
            order by l_returnflag, l_linestatus""",
        "Q2": f"""
            select min(ps_supplycost) as min_cost
            from partsupp, part, supplier, nation, region
            where p_partkey = ps_partkey and s_suppkey = ps_suppkey
              and s_nationkey = n_nationkey and n_regionkey = r_regionkey
              and p_size = {48 if skewed else 15} and r_name = 'EUROPE'
              and p_type like '%BRASS'""",
        "Q3": f"""
            select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue
            from customer, orders, lineitem
            where c_mktsegment = '{'HOUSEHOLD' if skewed else 'BUILDING'}'
              and c_custkey = o_custkey and l_orderkey = o_orderkey
              and o_orderdate < {d('1995-03-15')} and l_shipdate > {d('1995-03-15')}
            group by l_orderkey
            order by revenue desc limit 10""",
        "Q4": f"""
            select o_orderpriority, count(distinct o_orderkey) as order_count
            from orders, lineitem
            where l_orderkey = o_orderkey
              and o_orderdate >= {d('1993-07-01')} and o_orderdate < {d('1993-10-01')}
              and l_commitdate < l_receiptdate
            group by o_orderpriority
            order by o_orderpriority""",
        "Q5": f"""
            select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue
            from customer, orders, lineitem, supplier, nation, region
            where c_custkey = o_custkey and l_orderkey = o_orderkey
              and l_suppkey = s_suppkey and s_nationkey = n_nationkey
              and n_regionkey = r_regionkey and r_name = 'ASIA'
              and o_orderdate >= {d('1994-01-01')} and o_orderdate < {d('1995-01-01')}
            group by n_name
            order by revenue desc""",
        "Q6": f"""
            select sum(l_extendedprice * l_discount) as revenue
            from lineitem
            where l_shipdate >= {d('1994-01-01')} and l_shipdate < {d('1995-01-01')}
              and l_discount between {0.07 if skewed else 0.05} and {0.09 if skewed else 0.07}
              and l_quantity < {45 if skewed else 24}""",
        "Q7": f"""
            select n_name, year(l_shipdate) as l_year,
                   sum(l_extendedprice * (1 - l_discount)) as revenue
            from lineitem, supplier, nation
            where l_suppkey = s_suppkey and s_nationkey = n_nationkey
              and n_name in ('FRANCE', 'GERMANY')
              and l_shipdate between {d('1995-01-01')} and {d('1996-12-31')}
            group by n_name, l_year
            order by n_name, l_year""",
        "Q8": f"""
            select year(l_shipdate) as o_year, n_name,
                   sum(l_extendedprice * (1 - l_discount)) as revenue
            from lineitem, part, supplier, nation
            where p_partkey = l_partkey and s_suppkey = l_suppkey
              and s_nationkey = n_nationkey
              and p_type = 'ECONOMY ANODIZED STEEL'
              and l_shipdate >= {d('1995-01-01')} and l_shipdate <= {d('1996-12-31')}
            group by o_year, n_name
            order by o_year, revenue desc""",
        "Q9": """
            select n_name, year(l_shipdate) as o_year,
                   sum(l_extendedprice * (1 - l_discount)) as profit
            from lineitem, part, supplier, nation
            where p_partkey = l_partkey and s_suppkey = l_suppkey
              and s_nationkey = n_nationkey and p_name like '%green%'
            group by n_name, o_year
            order by n_name, o_year desc limit 50""",
        "Q10": f"""
            select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue
            from customer, orders, lineitem
            where c_custkey = o_custkey and l_orderkey = o_orderkey
              and o_orderdate >= {d('1993-10-01')} and o_orderdate < {d('1994-01-01')}
              and l_returnflag = 'R'
            group by c_custkey, c_name
            order by revenue desc limit 20""",
        "Q11": """
            select ps_partkey, sum(ps_supplycost * ps_availqty) as value
            from partsupp, supplier, nation
            where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
              and n_name = 'GERMANY'
            group by ps_partkey
            order by value desc limit 20""",
        "Q12": f"""
            select l_shipmode, count(*) as line_count
            from orders, lineitem
            where o_orderkey = l_orderkey
              and l_shipmode in ('MAIL', 'SHIP')
              and l_commitdate < l_receiptdate and l_shipdate < l_commitdate
              and l_receiptdate >= {d('1994-01-01')} and l_receiptdate < {d('1995-01-01')}
            group by l_shipmode
            order by l_shipmode""",
        "Q13": """
            select o_custkey, count(*) as c_count
            from orders
            group by o_custkey
            order by c_count desc limit 100""",
        "Q14": f"""
            select sum(l_extendedprice * (1 - l_discount)) as promo_revenue
            from lineitem, part
            where l_partkey = p_partkey and p_type like 'PROMO%'
              and l_shipdate >= {d('1995-09-01')} and l_shipdate < {d('1995-10-01')}""",
        "Q15": f"""
            select l_suppkey, sum(l_extendedprice * (1 - l_discount)) as total_revenue
            from lineitem
            where l_shipdate >= {d('1996-01-01')} and l_shipdate < {d('1996-04-01')}
            group by l_suppkey
            order by total_revenue desc limit 1""",
        "Q16": f"""
            select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt
            from partsupp, part
            where p_partkey = ps_partkey
              and p_brand <> '{brand_a}'
              and p_type not like 'MEDIUM POLISHED%'
              and p_size in (49, 14, 23, 45, 19, 3, 36, 9)
            group by p_brand, p_type, p_size
            order by supplier_cnt desc limit 20""",
        "Q17": f"""
            select sum(l_extendedprice) as total
            from lineitem, part
            where p_partkey = l_partkey
              and p_brand = '{brand_b}' and p_container = 'MED BOX'
              and l_quantity < 5""",
        "Q18": """
            select o_orderkey, sum(l_quantity) as total_qty
            from orders, lineitem
            where o_orderkey = l_orderkey
            group by o_orderkey
            order by total_qty desc limit 100""",
        "Q19": f"""
            select sum(l_extendedprice * (1 - l_discount)) as revenue
            from lineitem, part
            where p_partkey = l_partkey and (
                (p_brand = '{brand_a}'
                 and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                 and l_quantity between {quantity_hi} and {quantity_hi + 10}
                 and p_size between 1 and 5)
                or (p_brand = '{brand_b}'
                 and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                 and l_quantity between {quantity_hi - 5} and {quantity_hi + 5}
                 and p_size between 1 and 10)
                or (p_brand = '{brand_c}'
                 and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                 and l_quantity between {quantity_hi - 10} and {quantity_hi}
                 and p_size between 1 and 15))""",
        "Q20": """
            select count(*) as available
            from partsupp, supplier, nation
            where ps_suppkey = s_suppkey and s_nationkey = n_nationkey
              and n_name = 'CANADA' and ps_availqty > 5000""",
        "Q21": """
            select s_suppkey, count(*) as numwait
            from lineitem, orders, supplier
            where l_orderkey = o_orderkey and l_suppkey = s_suppkey
              and o_orderstatus = 'F' and l_receiptdate > l_commitdate
            group by s_suppkey
            order by numwait desc limit 10""",
        "Q22": """
            select c_nationkey, count(*) as numcust, sum(c_acctbal) as totacctbal
            from customer
            where c_acctbal > 7500.0
            group by c_nationkey
            order by c_nationkey""",
    }


def query(name: str, skewed: bool = False) -> str:
    """One query by name (``"Q1"`` .. ``"Q22"``)."""
    return queries(skewed=skewed)[name]
