"""Seeded closed-loop load generation for the serving layer (§12).

A :class:`LoadGenerator` deterministically expands a seed into
per-client SQL scripts shaped like the paper's fleet traffic: a hot set
of repeating scans (the predicate cache's bread and butter), a stream
of ad-hoc one-off scans, and occasional DML that invalidates cached
entries.  Scripts are pure data — the same ``(seed, shape)`` always
yields byte-identical statement lists, so a concurrent run can be
replayed serially for differential testing.

:func:`run_closed_loop` drives a :class:`~repro.serve.QueryServer` with
one thread per client, each submitting its next statement only after
the previous response arrives (closed-loop: offered load adapts to
service rate, the standard harness shape for latency percentiles).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..serve import Request, RequestStatus, Response

__all__ = [
    "LoadGenerator",
    "LoadReport",
    "LoadScript",
    "run_closed_loop",
    "setup_load_tables",
]

#: Columns every generated table carries.
_COLUMNS = ("k", "v", "bucket")


@dataclass(frozen=True)
class LoadScript:
    """One client's deterministic statement sequence."""

    client_id: int
    tenant: str
    table: str
    statements: Sequence[str]


class LoadGenerator:
    """Expands a seed into per-client SQL scripts.

    Args:
        num_clients: concurrent clients to script for.
        statements_per_client: script length.
        seed: master seed; client ``i`` derives its stream from
            ``seed + i`` so adding clients never perturbs existing
            scripts.
        shared_table: when True every client hits one table
            (``{table_prefix}_shared``) — contended mode for chaos
            testing; when False client ``i`` owns ``{table_prefix}_c{i}``
            — disjoint mode, where concurrent execution is bit-identical
            to serial replay.
        hot_fraction: probability a statement repeats one of the
            client's hot scan templates (cache-hit traffic).
        dml_fraction: probability a statement is an invalidating write
            (DELETE, UPDATE, or VACUUM); the rest are ad-hoc scans.
        hot_templates: size of each client's hot scan pool.
        key_space: half-open upper bound of the ``k`` column domain the
            generated predicates draw from.
    """

    def __init__(
        self,
        num_clients: int,
        statements_per_client: int,
        seed: int = 0,
        shared_table: bool = False,
        hot_fraction: float = 0.6,
        dml_fraction: float = 0.0,
        hot_templates: int = 8,
        key_space: int = 10_000,
        table_prefix: str = "load",
    ) -> None:
        if num_clients < 1:
            raise ValueError("num_clients must be >= 1")
        if not 0.0 <= hot_fraction + dml_fraction <= 1.0:
            raise ValueError("hot_fraction + dml_fraction must be within [0, 1]")
        self.num_clients = num_clients
        self.statements_per_client = statements_per_client
        self.seed = seed
        self.shared_table = shared_table
        self.hot_fraction = hot_fraction
        self.dml_fraction = dml_fraction
        self.hot_templates = hot_templates
        self.key_space = key_space
        self.table_prefix = table_prefix

    def table_for(self, client_id: int) -> str:
        if self.shared_table:
            return f"{self.table_prefix}_shared"
        return f"{self.table_prefix}_c{client_id}"

    def tables(self) -> List[str]:
        """Distinct tables the scripts reference, in client order."""
        names: List[str] = []
        for client in range(self.num_clients):
            name = self.table_for(client)
            if name not in names:
                names.append(name)
        return names

    def scripts(self) -> List[LoadScript]:
        """The deterministic per-client scripts for this configuration."""
        return [self._script_for(client) for client in range(self.num_clients)]

    def _script_for(self, client_id: int) -> LoadScript:
        rng = np.random.default_rng(self.seed + client_id)
        table = self.table_for(client_id)
        # The hot pool is fixed up front so repeats are literal repeats
        # (same statement text → same scan key → predicate-cache hit).
        hot_pool = [
            self._scan_sql(table, rng) for _ in range(self.hot_templates)
        ]
        statements: List[str] = []
        for _ in range(self.statements_per_client):
            draw = rng.random()
            if draw < self.hot_fraction:
                statements.append(hot_pool[int(rng.integers(len(hot_pool)))])
            elif draw < self.hot_fraction + self.dml_fraction:
                statements.append(self._dml_sql(table, rng))
            else:
                statements.append(self._scan_sql(table, rng))
        return LoadScript(
            client_id=client_id,
            tenant=f"tenant_{client_id}",
            table=table,
            statements=tuple(statements),
        )

    def _scan_sql(self, table: str, rng: np.random.Generator) -> str:
        lo = int(rng.integers(0, self.key_space))
        width = int(rng.integers(50, 500))
        if rng.random() < 0.5:
            return (
                f"select count(*) from {table} "
                f"where k >= {lo} and k < {lo + width}"
            )
        bucket = int(rng.integers(0, 50))
        return (
            f"select sum(v) from {table} "
            f"where bucket = {bucket} and k >= {lo} and k < {lo + width}"
        )

    def _dml_sql(self, table: str, rng: np.random.Generator) -> str:
        kind = rng.random()
        if kind < 0.4:
            key = int(rng.integers(0, self.key_space))
            return f"delete from {table} where k = {key}"
        if kind < 0.8:
            key = int(rng.integers(0, self.key_space))
            bump = int(rng.integers(1, 10))
            return f"update {table} set v = {bump} where k = {key}"
        return f"vacuum {table}"


def setup_load_tables(
    engine,
    generator: LoadGenerator,
    rows_per_table: int = 20_000,
    seed: Optional[int] = None,
) -> List[str]:
    """Create + populate every table a generator's scripts reference.

    Row content is seeded (default: the generator's own seed), so two
    databases set up with the same arguments hold identical data —
    required by the differential oracle.
    """
    from ..storage import ColumnSpec, DataType, TableSchema

    seed = generator.seed if seed is None else seed
    names = generator.tables()
    for name in names:
        # SeedSequence takes integer entropy; fold the table name in so
        # shared and per-client tables get distinct but stable content.
        rng = np.random.default_rng([seed, *name.encode()])
        engine.database.create_table(
            TableSchema(
                name,
                tuple(ColumnSpec(column, DataType.INT64) for column in _COLUMNS),
            )
        )
        engine.insert(
            name,
            {
                "k": rng.integers(0, generator.key_space, rows_per_table),
                "v": rng.integers(0, 1000, rows_per_table),
                "bucket": rng.integers(0, 50, rows_per_table),
            },
        )
    return names


@dataclass
class LoadReport:
    """Everything a closed-loop run observed, per client and overall.

    ``responses`` holds each client's *terminal* responses in statement
    order.  Rejections a closed-loop client retried through (admission
    pushback, overload sheds) never become terminal, so they are
    tallied separately in ``rejections`` — keyed by client, then by
    shed reason — which is what makes shed-mode runs diagnosable.
    """

    responses: Dict[int, List[Response]] = field(default_factory=dict)
    rejections: Dict[int, Dict[str, int]] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def total_requests(self) -> int:
        return sum(len(r) for r in self.responses.values())

    @property
    def qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_requests / self.wall_seconds

    def status_counts(self) -> Dict[RequestStatus, int]:
        """Terminal responses per status, every status present (one pass)."""
        counts = {status: 0 for status in RequestStatus}
        for responses in self.responses.values():
            for response in responses:
                counts[response.status] += 1
        return counts

    def count(self, status: RequestStatus) -> int:
        return self.status_counts()[status]

    def note_rejection(self, client_id: int, reason: str) -> None:
        """Record one retried rejection (called by the client's own thread)."""
        per_client = self.rejections.setdefault(client_id, {})
        per_client[reason] = per_client.get(reason, 0) + 1

    @property
    def total_rejections(self) -> int:
        """Rejections clients retried through (not terminal responses)."""
        return sum(
            count
            for per_client in self.rejections.values()
            for count in per_client.values()
        )

    def rejections_by_reason(self) -> Dict[str, int]:
        """Retried rejections summed across clients, keyed by shed reason."""
        totals: Dict[str, int] = {}
        for per_client in self.rejections.values():
            for reason, count in per_client.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    @property
    def errors(self) -> int:
        return self.count(RequestStatus.ERROR)

    def latencies(self) -> np.ndarray:
        """Completion latencies (seconds) of executed statements."""
        values = [
            response.total_seconds
            for responses in self.responses.values()
            for response in responses
            if response.status in (RequestStatus.OK, RequestStatus.ERROR)
        ]
        return np.asarray(values, dtype=np.float64)

    def percentile(self, q: float) -> float:
        latencies = self.latencies()
        if latencies.size == 0:
            return 0.0
        return float(np.percentile(latencies, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> Dict[str, float]:
        counts = self.status_counts()
        return {
            "requests": self.total_requests,
            "qps": self.qps,
            "p50_seconds": self.p50,
            "p99_seconds": self.p99,
            "ok": counts[RequestStatus.OK],
            "rejected": counts[RequestStatus.REJECTED],
            "timed_out": counts[RequestStatus.TIMED_OUT],
            "errors": counts[RequestStatus.ERROR],
            "retried_rejections": self.total_rejections,
            "wall_seconds": self.wall_seconds,
        }


def run_closed_loop(
    server,
    scripts: Sequence[LoadScript],
    deadline_seconds: Optional[float] = None,
) -> LoadReport:
    """Drive the server with one closed-loop thread per script.

    Each client thread submits its statements strictly in order,
    waiting for every response before sending the next — a rejected
    statement is retried until admitted (closed-loop clients back off
    by blocking, they do not drop work), so every script runs to
    completion and differential comparisons see all statements.  Every
    retried rejection is recorded on the report by shed reason, so
    shed-mode runs stay diagnosable.  ``deadline_seconds`` stamps each
    request with a latency budget (timed-out statements are terminal,
    not retried).
    """
    report = LoadReport(responses={script.client_id: [] for script in scripts})

    def client_loop(script: LoadScript) -> None:
        sink = report.responses[script.client_id]
        for sql in script.statements:
            while True:
                response = server.submit(
                    Request(
                        sql,
                        tenant=script.tenant,
                        deadline_seconds=deadline_seconds,
                    )
                ).result()
                if response.status is not RequestStatus.REJECTED:
                    sink.append(response)
                    break
                # Admission pushed back: record why, yield, retry.
                report.note_rejection(
                    script.client_id, response.shed_reason or "admission"
                )
                time.sleep(0.0005)

    threads = [
        threading.Thread(
            target=client_loop, args=(script,), name=f"loadgen-{script.client_id}"
        )
        for script in scripts
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.monotonic() - started
    return report
