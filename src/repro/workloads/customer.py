"""The paper's internal customer workloads A and B (§5.3), simulated.

* **Workload A** (Fig. 13): ~44,000 queries over a few hours; the
  predicate-cache hit rate starts at zero, stays low during a cold
  exploration phase (~the first third of the stream), then climbs as
  the working set of repeating scans stabilizes.  We reproduce the
  *shape* with a two-phase template mixture at configurable scale.

* **Workload B** (Fig. 14): ≈4,000 scans drawn from 401 unique scans:
  183 run exactly once, 218 repeat, and scans repeating ≥10 times
  account for ≈3,243 executions.  We match those anchor numbers
  directly with a constructed repetition histogram.

Both generators emit streams of (scan key, table) records compatible
with the analysis helpers, plus SQL streams replayable against a real
engine database for end-to-end hit-rate measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..engine.hashing import fnv1a_hash
from .tpch import zipf_choice

__all__ = [
    "ScanEvent",
    "workload_a",
    "workload_b",
    "workload_a_sql",
    "WORKLOAD_B_ANCHORS",
]


@dataclass(frozen=True)
class ScanEvent:
    """One scan execution: its cache key and position in the stream."""

    index: int
    scan_key: str
    table: str


# Anchor numbers from the paper's description of Workload B (Fig. 14).
WORKLOAD_B_ANCHORS = {
    "total_scans": 4000,
    "unique_scans": 401,
    "singleton_scans": 183,
    "repeating_scans": 218,
    "scans_from_10plus": 3243,
}


def workload_a(
    num_queries: int = 4400,
    warmup_fraction: float = 0.34,
    seed: int = 0,
) -> List[ScanEvent]:
    """Workload A: a query stream whose hit rate climbs after a warmup.

    The stream has two phases: an exploration phase dominated by fresh
    scans (lots of distinct dashboards being set up), then a steady
    phase drawing Zipf-style from the established template pool.  The
    paper's run uses 44,000 queries; the default here is 10 % of that
    (pass ``num_queries=44_000`` for full scale).
    """
    rng = np.random.default_rng(seed)
    warmup_end = int(num_queries * warmup_fraction)
    pool_size = max(20, warmup_end)
    hot_size = max(15, pool_size // 4)
    tables = [f"fact_{i % 7}" for i in range(7)]

    events: List[ScanEvent] = []
    fresh = 0
    for i in range(num_queries):
        if i < warmup_end:
            # Exploration: mostly first sightings (dashboards being set
            # up), with occasional early repeats.
            if rng.random() < 0.25 and fresh > 10:
                template = int(rng.integers(0, fresh))
            else:
                template = fresh
                fresh += 1
        else:
            # Steady state: hot repeating templates from the first
            # dashboards that were established.
            template = int(zipf_choice(rng, hot_size, 1, 1.1)[0])
        events.append(
            ScanEvent(i, f"scanA_{template}", tables[template % len(tables)])
        )
    return events


def workload_a_sql(
    num_queries: int = 4400,
    warmup_fraction: float = 0.34,
    seed: int = 0,
) -> List[str]:
    """Workload A as replayable SQL over a single wide fact table.

    Requires a table ``facts(f_key, f_value, f_bucket)``; each template
    maps to a distinct filter combination, so the predicate-cache keys
    track the template identity exactly.
    """
    events = workload_a(num_queries, warmup_fraction, seed)
    statements = []
    for event in events:
        template = int(event.scan_key.split("_")[1])
        lo = (template * 37) % 1000
        statements.append(
            "select count(*) from facts "
            f"where f_bucket = {template % 50} and f_key >= {lo} "
            f"and f_key < {lo + 20 + template % 30}"
        )
    return statements


def workload_b(seed: int = 0) -> List[ScanEvent]:
    """Workload B: the scan stream matching Fig. 14's anchor numbers.

    Constructs 401 unique scans: 183 singletons, and 218 repeating
    scans whose counts are fitted so that scans repeating ≥10 times sum
    to ≈3,243 executions and the total lands at ≈4,000.
    """
    anchors = WORKLOAD_B_ANCHORS
    rng = np.random.default_rng(seed)

    counts: List[int] = [1] * anchors["singleton_scans"]
    num_repeating = anchors["repeating_scans"]
    # Split the repeating population: a light tail repeating 2-9 times
    # and a hot head repeating >= 10 times.
    hot = 90
    light = num_repeating - hot
    light_counts = [int(c) for c in rng.integers(2, 10, light)]
    remaining = anchors["scans_from_10plus"]
    hot_counts: List[int] = []
    # Zipf-shaped hot head normalized to the anchor total.
    raw = 1.0 / np.power(np.arange(1, hot + 1, dtype=np.float64), 0.9)
    raw = raw / raw.sum() * remaining
    hot_counts = np.maximum(raw.astype(int), 10).tolist()
    counts.extend(light_counts)
    counts.extend(hot_counts)

    events: List[ScanEvent] = []
    stream: List[str] = []
    for scan_id, count in enumerate(counts):
        stream.extend([f"scanB_{scan_id}"] * count)
    # Stable FNV-1a key→table assignment: builtin hash() would shuffle
    # the table layout of the generated workload on every fresh process.
    digests = fnv1a_hash(np.array(stream, dtype=object))
    tables = [f"tbl_{int(d) % 11}" for d in digests]
    order = rng.permutation(len(stream))
    for position, index in enumerate(order):
        events.append(ScanEvent(position, stream[int(index)], tables[int(index)]))
    return events
