"""A TPC-DS-shaped workload slice ("TPC-DS lite").

Full TPC-DS is 24 tables and 99 queries, most far outside this engine's
SQL subset.  The paper uses TPC-DS for two results only — build
overhead (Fig. 15) and end-to-end speedups (Fig. 17) — both of which
depend on the *scan/join mix*, not on full query semantics.  This
module provides the store-sales snowflake at the heart of TPC-DS
(``store_sales`` fact; ``date_dim``, ``item``, ``store``,
``customer_demographics`` dimensions) and twelve queries shaped after
common TPC-DS templates (Q3, Q7, Q19, Q42, Q52, Q53, Q55, Q59, Q61,
Q65, Q68, Q98 families).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..storage.database import Database
from ..storage.dtypes import DataType
from ..storage.table import ColumnSpec, TableSchema
from .tpch import zipf_choice

__all__ = ["SCHEMAS", "generate", "load", "queries", "query"]

_D = DataType

SCHEMAS: Dict[str, TableSchema] = {
    "date_dim": TableSchema(
        "date_dim",
        (
            ColumnSpec("d_date_sk", _D.INT64),
            ColumnSpec("d_year", _D.INT64),
            ColumnSpec("d_moy", _D.INT64),
            ColumnSpec("d_dom", _D.INT64),
            ColumnSpec("d_qoy", _D.INT64),
        ),
    ),
    "item": TableSchema(
        "item",
        (
            ColumnSpec("i_item_sk", _D.INT64),
            ColumnSpec("i_brand_id", _D.INT64),
            ColumnSpec("i_brand", _D.STRING),
            ColumnSpec("i_category", _D.STRING),
            ColumnSpec("i_manufact_id", _D.INT64),
            ColumnSpec("i_current_price", _D.FLOAT64),
        ),
        dist_key="i_item_sk",
    ),
    "store": TableSchema(
        "store",
        (
            ColumnSpec("s_store_sk", _D.INT64),
            ColumnSpec("s_state", _D.STRING),
            ColumnSpec("s_gmt_offset", _D.INT64),
        ),
    ),
    "customer_demographics": TableSchema(
        "customer_demographics",
        (
            ColumnSpec("cd_demo_sk", _D.INT64),
            ColumnSpec("cd_gender", _D.STRING),
            ColumnSpec("cd_marital_status", _D.STRING),
            ColumnSpec("cd_education_status", _D.STRING),
        ),
    ),
    "store_sales": TableSchema(
        "store_sales",
        (
            ColumnSpec("ss_sold_date_sk", _D.INT64),
            ColumnSpec("ss_item_sk", _D.INT64),
            ColumnSpec("ss_store_sk", _D.INT64),
            ColumnSpec("ss_cdemo_sk", _D.INT64),
            ColumnSpec("ss_quantity", _D.INT64),
            ColumnSpec("ss_sales_price", _D.FLOAT64),
            ColumnSpec("ss_ext_sales_price", _D.FLOAT64),
            ColumnSpec("ss_net_profit", _D.FLOAT64),
        ),
        dist_key="ss_item_sk",
    ),
}

_CATEGORIES = [
    "Books", "Children", "Electronics", "Home", "Jewelry",
    "Men", "Music", "Shoes", "Sports", "Women",
]
_STATES = ["TN", "CA", "TX", "OH", "GA", "WA", "IL", "NY", "FL", "MI"]


def generate(
    scale_factor: float = 0.005,
    skew: float = 0.8,
    seed: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate the five TPC-DS-lite tables."""
    rng = np.random.default_rng(seed)
    num_item = max(50, int(18_000 * scale_factor * 10))
    num_store = max(5, int(12 * scale_factor * 100))
    num_demo = 1000
    num_sales = max(500, int(2_880_000 * scale_factor))

    num_days = 5 * 365
    days = np.arange(num_days)
    date_dim = {
        "d_date_sk": (2_450_000 + days).astype(np.int64),
        "d_year": (1998 + days // 365).astype(np.int64),
        "d_moy": (days % 365 // 31 + 1).clip(1, 12).astype(np.int64),
        "d_dom": (days % 31 + 1).astype(np.int64),
        "d_qoy": (days % 365 // 92 + 1).clip(1, 4).astype(np.int64),
    }

    brand_ids = 1 + zipf_choice(rng, 100, num_item, skew)
    cat_idx = zipf_choice(rng, len(_CATEGORIES), num_item, skew)
    item = {
        "i_item_sk": np.arange(1, num_item + 1, dtype=np.int64),
        "i_brand_id": brand_ids.astype(np.int64),
        "i_brand": np.array([f"brand#{b}" for b in brand_ids], dtype=object),
        "i_category": np.array(_CATEGORIES, dtype=object)[cat_idx],
        "i_manufact_id": 1 + zipf_choice(rng, 50, num_item, skew).astype(np.int64),
        "i_current_price": np.round(rng.uniform(0.5, 300.0, num_item), 2),
    }

    store = {
        "s_store_sk": np.arange(1, num_store + 1, dtype=np.int64),
        "s_state": np.array(_STATES, dtype=object)[
            zipf_choice(rng, len(_STATES), num_store, skew)
        ],
        "s_gmt_offset": np.full(num_store, -5, dtype=np.int64),
    }

    demo = {
        "cd_demo_sk": np.arange(1, num_demo + 1, dtype=np.int64),
        "cd_gender": np.array(["M", "F"], dtype=object)[
            rng.integers(0, 2, num_demo)
        ],
        "cd_marital_status": np.array(["M", "S", "D", "W", "U"], dtype=object)[
            zipf_choice(rng, 5, num_demo, skew)
        ],
        "cd_education_status": np.array(
            ["Primary", "Secondary", "College", "2 yr Degree", "4 yr Degree",
             "Advanced Degree", "Unknown"],
            dtype=object,
        )[zipf_choice(rng, 7, num_demo, skew)],
    }

    # Sales in date order (ingestion clustering).
    day_pick = np.sort(zipf_choice(rng, num_days, num_sales, skew / 2))
    quantity = 1 + zipf_choice(rng, 100, num_sales, skew).astype(np.int64)
    price = np.round(rng.uniform(0.5, 200.0, num_sales), 2)
    store_sales = {
        "ss_sold_date_sk": date_dim["d_date_sk"][day_pick],
        "ss_item_sk": 1 + zipf_choice(rng, num_item, num_sales, skew).astype(np.int64),
        "ss_store_sk": 1 + zipf_choice(rng, num_store, num_sales, skew).astype(np.int64),
        "ss_cdemo_sk": 1 + zipf_choice(rng, num_demo, num_sales, skew).astype(np.int64),
        "ss_quantity": quantity,
        "ss_sales_price": price,
        "ss_ext_sales_price": np.round(price * quantity, 2),
        "ss_net_profit": np.round(price * quantity * rng.uniform(-0.1, 0.4, num_sales), 2),
    }

    return {
        "date_dim": date_dim,
        "item": item,
        "store": store,
        "customer_demographics": demo,
        "store_sales": store_sales,
    }


def load(
    database: Database,
    scale_factor: float = 0.005,
    skew: float = 0.8,
    seed: int = 0,
) -> None:
    """Create and populate the TPC-DS-lite tables in ``database``."""
    data = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    for name, schema in SCHEMAS.items():
        table = database.create_table(schema)
        table.insert(data[name], database.begin())


def queries() -> Dict[str, str]:
    """Twelve TPC-DS-template-shaped queries over the lite schema."""
    return {
        "DS-Q3": """
            select d_year, i_brand_id, sum(ss_ext_sales_price) as sum_agg
            from store_sales, date_dim, item
            where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
              and i_manufact_id = 1 and d_moy = 11
            group by d_year, i_brand_id
            order by d_year, sum_agg desc limit 100""",
        "DS-Q7": """
            select i_item_sk, avg(ss_quantity) as agg1, avg(ss_sales_price) as agg2
            from store_sales, customer_demographics, item
            where ss_item_sk = i_item_sk and ss_cdemo_sk = cd_demo_sk
              and cd_gender = 'F' and cd_marital_status = 'W'
              and cd_education_status = 'Primary'
            group by i_item_sk
            order by i_item_sk limit 100""",
        "DS-Q19": """
            select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
            from store_sales, date_dim, item
            where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
              and i_manufact_id = 7 and d_moy = 11 and d_year = 1999
            group by i_brand_id, i_brand
            order by ext_price desc limit 100""",
        "DS-Q42": """
            select d_year, i_category, sum(ss_ext_sales_price) as total
            from store_sales, date_dim, item
            where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
              and d_moy = 12 and d_year = 2000
            group by d_year, i_category
            order by total desc limit 100""",
        "DS-Q52": """
            select d_year, i_brand_id, sum(ss_ext_sales_price) as ext_price
            from store_sales, date_dim, item
            where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
              and d_moy = 12 and d_year = 1998
            group by d_year, i_brand_id
            order by ext_price desc limit 100""",
        "DS-Q53": """
            select i_manufact_id, sum(ss_sales_price) as sum_sales
            from store_sales, item, date_dim
            where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk
              and i_category in ('Books', 'Children', 'Electronics')
              and d_qoy = 1
            group by i_manufact_id
            order by sum_sales desc limit 100""",
        "DS-Q55": """
            select i_brand_id, i_brand, sum(ss_ext_sales_price) as ext_price
            from store_sales, date_dim, item
            where ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
              and i_manufact_id = 28 and d_moy = 11 and d_year = 2001
            group by i_brand_id, i_brand
            order by ext_price desc limit 100""",
        "DS-Q59": """
            select s_state, d_year, sum(ss_sales_price) as sales
            from store_sales, date_dim, store
            where ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
              and d_year in (1999, 2000)
            group by s_state, d_year
            order by s_state, d_year""",
        "DS-Q61": """
            select sum(ss_ext_sales_price) as promotions
            from store_sales, store, item, date_dim
            where ss_store_sk = s_store_sk and ss_item_sk = i_item_sk
              and ss_sold_date_sk = d_date_sk
              and i_category = 'Jewelry' and s_gmt_offset = -5
              and d_year = 1998 and d_moy = 11""",
        "DS-Q65": """
            select s_store_sk, i_item_sk, sum(ss_sales_price) as revenue
            from store_sales, item, store
            where ss_item_sk = i_item_sk and ss_store_sk = s_store_sk
              and i_current_price > 250.0
            group by s_store_sk, i_item_sk
            order by revenue desc limit 100""",
        "DS-Q68": """
            select ss_store_sk, count(*) as cnt, sum(ss_ext_sales_price) as total
            from store_sales, date_dim
            where ss_sold_date_sk = d_date_sk
              and d_dom between 1 and 2 and d_year in (1998, 1999)
            group by ss_store_sk
            order by total desc limit 100""",
        "DS-Q98": """
            select i_category, sum(ss_ext_sales_price) as itemrevenue
            from store_sales, item, date_dim
            where ss_item_sk = i_item_sk and ss_sold_date_sk = d_date_sk
              and i_category in ('Sports', 'Books', 'Home')
              and d_year = 1999 and d_moy between 2 and 3
            group by i_category
            order by i_category""",
    }


def query(name: str) -> str:
    """One TPC-DS-lite query by name."""
    return queries()[name]
