"""Fleet simulator: the population behind the Section 2 workload analysis.

The paper analyzes a representative sample of Redshift clusters
(us-east-1, January 2023).  We cannot access that telemetry, so this
module generates a synthetic fleet whose *per-cluster parameters* are
drawn from distributions calibrated to reproduce the paper's reported
aggregates:

* query repetition averaging ≈72 % with a heavy >90 % mode (Fig. 1),
* the statement mix of Table 2 (42.3 % select, 24.7 % ingest, 9.9 %
  delete/update, 23.3 % other) with wide per-cluster spread (Fig. 2–3),
* scans as repetitive as queries, slightly more (Fig. 4),
* repetition vs. scanned-table size as in Fig. 5 (queries on huge
  tables repeat less; scans repeat regardless),
* result-cache hit rates collapsing with update rate (Fig. 6–7).

Each generated statement is a lightweight record (kind, text, tables,
scans), which is what the paper's log analysis operates on — the
analysis pipeline in :mod:`repro.analysis` is the real deliverable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ScanDescriptor",
    "Statement",
    "ClusterProfile",
    "ClusterWorkload",
    "sample_fleet",
    "generate_workload",
    "STATEMENT_KINDS",
    "TABLE_SIZE_BUCKETS",
]

STATEMENT_KINDS = ("select", "insert", "copy", "delete", "update", "other")

# Fleet-average statement mix (paper Table 2).
_MIX_MEANS = np.array([0.423, 0.178, 0.069, 0.063, 0.036, 0.233])

# Size buckets of Fig. 5: <1e6, 1e6-1e7(?), three cuts used by the paper
# (small / medium / large / extra-large by rows read).
TABLE_SIZE_BUCKETS = (
    ("small", 0, 10**6),
    ("medium", 10**6, 10**7),
    ("large", 10**7, 10**9),
    ("xlarge", 10**9, 10**18),
)


@dataclass(frozen=True)
class ScanDescriptor:
    """One base-table scan with a filter: the predicate cache's unit."""

    table: str
    table_rows: int
    predicate: str

    def key(self) -> str:
        return f"{self.table}:{self.predicate}"


@dataclass(frozen=True)
class Statement:
    """One log entry of a cluster's workload."""

    kind: str
    text: str
    tables: Tuple[str, ...] = ()
    scans: Tuple[ScanDescriptor, ...] = ()

    @property
    def is_select(self) -> bool:
        return self.kind == "select"

    @property
    def is_write(self) -> bool:
        return self.kind in ("insert", "copy", "delete", "update")


@dataclass
class ClusterProfile:
    """Sampled per-cluster parameters."""

    cluster_id: int
    num_statements: int
    target_repetition: float
    statement_mix: Dict[str, float]
    table_rows: List[int]
    scan_share: float  # how much of the scan pool queries share


@dataclass
class ClusterWorkload:
    """A cluster's generated statement log."""

    profile: ClusterProfile
    statements: List[Statement]


def sample_fleet(
    num_clusters: int = 100,
    statements_per_cluster: int = 2000,
    seed: int = 0,
) -> List[ClusterProfile]:
    """Sample per-cluster parameters for a synthetic fleet."""
    rng = np.random.default_rng(seed)
    profiles: List[ClusterProfile] = []
    for cluster_id in range(num_clusters):
        # Repetition: heavy mass above 0.75, mean ≈ 0.72 (Fig. 1).
        repetition = float(np.clip(rng.beta(2.0, 0.8), 0.02, 0.995))
        # Statement mix: Dirichlet around Table 2 means, wide spread.
        mix = rng.dirichlet(_MIX_MEANS * 6.0)
        num_tables = int(rng.integers(5, 40))
        # Log-uniform table sizes from 10^3 to 10^10 rows.
        table_rows = [
            int(10 ** rng.uniform(3, 10)) for _ in range(num_tables)
        ]
        profiles.append(
            ClusterProfile(
                cluster_id=cluster_id,
                num_statements=statements_per_cluster,
                target_repetition=repetition,
                statement_mix=dict(zip(STATEMENT_KINDS, mix)),
                table_rows=table_rows,
                scan_share=float(rng.uniform(0.5, 0.95)),
            )
        )
    return profiles


def generate_workload(
    profile: ClusterProfile, seed: int = 0
) -> ClusterWorkload:
    """Generate one cluster's statement log from its profile."""
    rng = np.random.default_rng(seed * 1_000_003 + profile.cluster_id)
    tables = [f"t{i}" for i in range(len(profile.table_rows))]
    rows = profile.table_rows

    kinds = rng.choice(
        len(STATEMENT_KINDS),
        size=profile.num_statements,
        p=np.array([profile.statement_mix[k] for k in STATEMENT_KINDS]),
    )
    num_selects = int(np.count_nonzero(kinds == 0))

    select_pool = _build_select_pool(profile, rng, tables, rows, num_selects)
    select_iter = iter(_draw_selects(profile, rng, select_pool, num_selects))

    statements: List[Statement] = []
    for kind_index in kinds:
        kind = STATEMENT_KINDS[kind_index]
        if kind == "select":
            statements.append(next(select_iter))
        elif kind == "other":
            statements.append(Statement(kind, f"other-{rng.integers(1_000_000)}"))
        else:
            table = tables[int(rng.integers(len(tables)))]
            statements.append(
                Statement(kind, f"{kind} {table} {rng.integers(1_000_000)}", (table,))
            )
    return ClusterWorkload(profile, statements)


def _build_select_pool(
    profile: ClusterProfile,
    rng: np.random.Generator,
    tables: Sequence[str],
    rows: Sequence[int],
    num_selects: int,
) -> List[Statement]:
    """The cluster's repeating-query templates (dashboards, reports).

    Queries on extra-large tables are biased toward the *ad-hoc*
    population instead (drawn as singletons), reproducing Fig. 5's
    lower query repetition for huge tables; the scans those ad-hoc
    queries run still come from a shared pool, keeping scan repetition
    size-independent.
    """
    repeated_budget = int(num_selects * profile.target_repetition)
    pool_size = max(1, int(repeated_budget / max(rng.uniform(3, 25), 1)))
    # Shared scan pool, smaller than the query pool (queries share scans).
    scan_pool_size = max(1, int(pool_size * profile.scan_share))
    scan_pool: List[ScanDescriptor] = []
    for i in range(scan_pool_size):
        t = int(rng.integers(len(tables)))
        scan_pool.append(
            ScanDescriptor(
                table=tables[t],
                table_rows=rows[t],
                predicate=f"p{i}",
            )
        )
    pool: List[Statement] = []
    for i in range(pool_size):
        scan_count = int(rng.integers(1, 4))
        picks = rng.integers(0, scan_pool_size, scan_count)
        scans = tuple(scan_pool[int(p)] for p in picks)
        pool.append(
            Statement(
                "select",
                f"q{profile.cluster_id}_{i}",
                tuple({s.table for s in scans}),
                scans,
            )
        )
    return pool


def _draw_selects(
    profile: ClusterProfile,
    rng: np.random.Generator,
    pool: List[Statement],
    num_selects: int,
) -> List[Statement]:
    """Mix repeated pool draws (Zipf) with fresh ad-hoc singletons."""
    from .tpch import zipf_choice

    repeated_budget = int(num_selects * profile.target_repetition)
    num_singletons = num_selects - repeated_budget
    draws = zipf_choice(rng, len(pool), repeated_budget, 0.8)
    selects: List[Statement] = [pool[int(i)] for i in draws]

    # Ad-hoc singletons strongly prefer larger tables (Fig. 5's
    # query-side bias: one-off explorations target the big fact tables,
    # dashboards hit everything).
    sizes = np.array(profile.table_rows, dtype=np.float64)
    weights = np.log10(sizes) ** 4
    weights /= weights.sum()
    tables = [f"t{i}" for i in range(len(sizes))]
    for i in range(num_singletons):
        t = int(rng.choice(len(sizes), p=weights))
        scans = (
            ScanDescriptor(tables[t], int(sizes[t]), f"adhoc_{profile.cluster_id}_{i}"),
        )
        selects.append(
            Statement("select", f"adhoc{profile.cluster_id}_{i}", (tables[t],), scans)
        )
    perm = rng.permutation(len(selects))
    return [selects[int(i)] for i in perm]
