"""The Star Schema Benchmark (SSB) [30]: schema, generator, 13 queries.

SSB is a pure star schema — one ``lineorder`` fact table joined to
``date``, ``part``, ``supplier``, and ``customer`` dimensions, with
every query a filtered fact-dimension join.  This makes it the cleanest
exercise of the paper's join-index extension: every scan of
``lineorder`` carries semi-join filters from the dimension scans.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..storage.database import Database
from ..storage.dtypes import DataType
from ..storage.table import ColumnSpec, TableSchema
from .tpch import zipf_choice

__all__ = ["SCHEMAS", "drilldown_queries", "generate", "load", "queries", "query"]

_D = DataType

SCHEMAS: Dict[str, TableSchema] = {
    "date": TableSchema(
        "date",
        (
            ColumnSpec("d_datekey", _D.INT64),
            ColumnSpec("d_year", _D.INT64),
            ColumnSpec("d_yearmonthnum", _D.INT64),
            ColumnSpec("d_weeknuminyear", _D.INT64),
        ),
    ),
    "ssb_part": TableSchema(
        "ssb_part",
        (
            ColumnSpec("p_partkey", _D.INT64),
            ColumnSpec("p_mfgr", _D.STRING),
            ColumnSpec("p_category", _D.STRING),
            ColumnSpec("p_brand1", _D.STRING),
        ),
        dist_key="p_partkey",
    ),
    "ssb_supplier": TableSchema(
        "ssb_supplier",
        (
            ColumnSpec("s_suppkey", _D.INT64),
            ColumnSpec("s_city", _D.STRING),
            ColumnSpec("s_nation", _D.STRING),
            ColumnSpec("s_region", _D.STRING),
        ),
        dist_key="s_suppkey",
    ),
    "ssb_customer": TableSchema(
        "ssb_customer",
        (
            ColumnSpec("c_custkey", _D.INT64),
            ColumnSpec("c_city", _D.STRING),
            ColumnSpec("c_nation", _D.STRING),
            ColumnSpec("c_region", _D.STRING),
        ),
        dist_key="c_custkey",
    ),
    "lineorder": TableSchema(
        "lineorder",
        (
            ColumnSpec("lo_orderkey", _D.INT64),
            ColumnSpec("lo_custkey", _D.INT64),
            ColumnSpec("lo_partkey", _D.INT64),
            ColumnSpec("lo_suppkey", _D.INT64),
            ColumnSpec("lo_orderdate", _D.INT64),
            ColumnSpec("lo_quantity", _D.INT64),
            ColumnSpec("lo_extendedprice", _D.FLOAT64),
            ColumnSpec("lo_discount", _D.INT64),
            ColumnSpec("lo_revenue", _D.FLOAT64),
            ColumnSpec("lo_supplycost", _D.FLOAT64),
        ),
        dist_key="lo_orderkey",
    ),
}

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS_PER_REGION = 5
_CITIES_PER_NATION = 10


def generate(
    scale_factor: float = 0.005,
    skew: float = 0.6,
    seed: int = 0,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Generate the five SSB tables.

    SSB data is mildly non-uniform by construction; ``skew`` applies
    Zipf to categorical choices like the TPC-H generator.
    """
    rng = np.random.default_rng(seed)
    num_part = max(40, int(200_000 * scale_factor))
    num_supplier = max(10, int(2_000 * scale_factor * 10))
    num_customer = max(30, int(30_000 * scale_factor * 10))
    num_lineorder = max(200, int(6_000_000 * scale_factor))

    # Date dimension: 7 years of days, keyed yyyymmdd.
    years = np.arange(1992, 1999)
    datekeys, d_year, d_ymn, d_week = [], [], [], []
    for year in years:
        for month in range(1, 13):
            for day in range(1, 29):  # 28-day months keep keys simple
                datekeys.append(year * 10_000 + month * 100 + day)
                d_year.append(year)
                d_ymn.append(year * 100 + month)
                d_week.append(((month - 1) * 28 + day - 1) // 7 + 1)
    dates = {
        "d_datekey": np.array(datekeys, dtype=np.int64),
        "d_year": np.array(d_year, dtype=np.int64),
        "d_yearmonthnum": np.array(d_ymn, dtype=np.int64),
        "d_weeknuminyear": np.array(d_week, dtype=np.int64),
    }

    nations = [
        f"{region[:4]}_NATION{i}" for region in _REGIONS
        for i in range(_NATIONS_PER_REGION)
    ]
    cities = [f"{nation[:9]}_C{i}" for nation in nations for i in range(_CITIES_PER_NATION)]

    def geo(size: int):
        city_idx = zipf_choice(rng, len(cities), size, skew)
        nation_idx = city_idx // _CITIES_PER_NATION
        region_idx = nation_idx // _NATIONS_PER_REGION
        return (
            np.array(cities, dtype=object)[city_idx],
            np.array(nations, dtype=object)[nation_idx],
            np.array(_REGIONS, dtype=object)[region_idx],
        )

    s_city, s_nation, s_region = geo(num_supplier)
    supplier = {
        "s_suppkey": np.arange(1, num_supplier + 1, dtype=np.int64),
        "s_city": s_city,
        "s_nation": s_nation,
        "s_region": s_region,
    }
    c_city, c_nation, c_region = geo(num_customer)
    customer = {
        "c_custkey": np.arange(1, num_customer + 1, dtype=np.int64),
        "c_city": c_city,
        "c_nation": c_nation,
        "c_region": c_region,
    }

    mfgr_idx = zipf_choice(rng, 5, num_part, skew)
    cat_idx = zipf_choice(rng, 5, num_part, skew)
    brand_idx = zipf_choice(rng, 40, num_part, skew)
    part = {
        "p_partkey": np.arange(1, num_part + 1, dtype=np.int64),
        "p_mfgr": np.array([f"MFGR#{m + 1}" for m in mfgr_idx], dtype=object),
        "p_category": np.array(
            [f"MFGR#{m + 1}{c + 1}" for m, c in zip(mfgr_idx, cat_idx)], dtype=object
        ),
        "p_brand1": np.array(
            [
                f"MFGR#{m + 1}{c + 1}{b + 1:02d}"
                for m, c, b in zip(mfgr_idx, cat_idx, brand_idx)
            ],
            dtype=object,
        ),
    }

    # Fact rows arrive in date order (ingestion clustering).
    date_pick = np.sort(zipf_choice(rng, len(datekeys), num_lineorder, skew / 2))
    quantity = 1 + zipf_choice(rng, 50, num_lineorder, skew).astype(np.int64)
    extended = np.round(rng.uniform(100.0, 10_000.0, num_lineorder), 2)
    discount = zipf_choice(rng, 11, num_lineorder, skew).astype(np.int64)
    lineorder = {
        "lo_orderkey": np.arange(1, num_lineorder + 1, dtype=np.int64),
        "lo_custkey": 1 + zipf_choice(rng, num_customer, num_lineorder, skew).astype(np.int64),
        "lo_partkey": 1 + zipf_choice(rng, num_part, num_lineorder, skew).astype(np.int64),
        "lo_suppkey": 1 + zipf_choice(rng, num_supplier, num_lineorder, skew).astype(np.int64),
        "lo_orderdate": dates["d_datekey"][date_pick],
        "lo_quantity": quantity,
        "lo_extendedprice": extended,
        "lo_discount": discount,
        "lo_revenue": np.round(extended * (100 - discount) / 100.0, 2),
        "lo_supplycost": np.round(extended * 0.6, 2),
    }

    return {
        "date": dates,
        "ssb_part": part,
        "ssb_supplier": supplier,
        "ssb_customer": customer,
        "lineorder": lineorder,
    }


def load(
    database: Database,
    scale_factor: float = 0.005,
    skew: float = 0.6,
    seed: int = 0,
) -> None:
    """Create and populate the SSB tables in ``database``."""
    data = generate(scale_factor=scale_factor, skew=skew, seed=seed)
    for name, schema in SCHEMAS.items():
        table = database.create_table(schema)
        table.insert(data[name], database.begin())


def queries() -> Dict[str, str]:
    """The 13 SSB queries (flight.query naming: Q1.1 … Q4.3)."""
    return {
        "Q1.1": """
            select sum(lo_extendedprice * lo_discount) as revenue
            from lineorder, date
            where lo_orderdate = d_datekey and d_year = 1993
              and lo_discount between 1 and 3 and lo_quantity < 25""",
        "Q1.2": """
            select sum(lo_extendedprice * lo_discount) as revenue
            from lineorder, date
            where lo_orderdate = d_datekey and d_yearmonthnum = 199401
              and lo_discount between 4 and 6 and lo_quantity between 26 and 35""",
        "Q1.3": """
            select sum(lo_extendedprice * lo_discount) as revenue
            from lineorder, date
            where lo_orderdate = d_datekey
              and d_weeknuminyear = 6 and d_year = 1994
              and lo_discount between 5 and 7 and lo_quantity between 26 and 35""",
        "Q2.1": """
            select d_year, p_brand1, sum(lo_revenue) as revenue
            from lineorder, date, ssb_part, ssb_supplier
            where lo_orderdate = d_datekey and lo_partkey = p_partkey
              and lo_suppkey = s_suppkey
              and p_category = 'MFGR#11' and s_region = 'AMERICA'
            group by d_year, p_brand1
            order by d_year, p_brand1""",
        "Q2.2": """
            select d_year, p_brand1, sum(lo_revenue) as revenue
            from lineorder, date, ssb_part, ssb_supplier
            where lo_orderdate = d_datekey and lo_partkey = p_partkey
              and lo_suppkey = s_suppkey
              and p_brand1 between 'MFGR#3301' and 'MFGR#3308'
              and s_region = 'ASIA'
            group by d_year, p_brand1
            order by d_year, p_brand1""",
        "Q2.3": """
            select d_year, p_brand1, sum(lo_revenue) as revenue
            from lineorder, date, ssb_part, ssb_supplier
            where lo_orderdate = d_datekey and lo_partkey = p_partkey
              and lo_suppkey = s_suppkey
              and p_brand1 = 'MFGR#5540' and s_region = 'EUROPE'
            group by d_year, p_brand1
            order by d_year, p_brand1""",
        "Q3.1": """
            select c_nation, s_nation, d_year, sum(lo_revenue) as revenue
            from lineorder, ssb_customer, ssb_supplier, date
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_orderdate = d_datekey
              and c_region = 'ASIA' and s_region = 'ASIA'
              and d_year >= 1992 and d_year <= 1997
            group by c_nation, s_nation, d_year
            order by d_year asc, revenue desc limit 50""",
        "Q3.2": """
            select c_city, s_city, d_year, sum(lo_revenue) as revenue
            from lineorder, ssb_customer, ssb_supplier, date
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_orderdate = d_datekey
              and c_nation = 'AMER_NATION0' and s_nation = 'AMER_NATION0'
              and d_year >= 1992 and d_year <= 1997
            group by c_city, s_city, d_year
            order by d_year asc, revenue desc limit 50""",
        "Q3.3": """
            select c_city, s_city, d_year, sum(lo_revenue) as revenue
            from lineorder, ssb_customer, ssb_supplier, date
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_orderdate = d_datekey
              and c_city in ('ASIA_NATIO_C1', 'ASIA_NATIO_C5')
              and s_city in ('ASIA_NATIO_C1', 'ASIA_NATIO_C5')
            group by c_city, s_city, d_year
            order by d_year asc, revenue desc limit 50""",
        "Q3.4": """
            select c_city, s_city, d_year, sum(lo_revenue) as revenue
            from lineorder, ssb_customer, ssb_supplier, date
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_orderdate = d_datekey
              and c_city in ('ASIA_NATIO_C1', 'ASIA_NATIO_C5')
              and s_city in ('ASIA_NATIO_C1', 'ASIA_NATIO_C5')
              and d_yearmonthnum = 199712
            group by c_city, s_city, d_year
            order by d_year asc, revenue desc limit 50""",
        "Q4.1": """
            select d_year, c_nation, sum(lo_revenue - lo_supplycost) as profit
            from lineorder, date, ssb_customer, ssb_supplier, ssb_part
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_partkey = p_partkey and lo_orderdate = d_datekey
              and c_region = 'AMERICA' and s_region = 'AMERICA'
              and p_mfgr in ('MFGR#1', 'MFGR#2')
            group by d_year, c_nation
            order by d_year, c_nation""",
        "Q4.2": """
            select d_year, s_nation, p_category, sum(lo_revenue - lo_supplycost) as profit
            from lineorder, date, ssb_customer, ssb_supplier, ssb_part
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_partkey = p_partkey and lo_orderdate = d_datekey
              and c_region = 'AMERICA' and s_region = 'AMERICA'
              and d_year in (1997, 1998)
              and p_mfgr in ('MFGR#1', 'MFGR#2')
            group by d_year, s_nation, p_category
            order by d_year, s_nation, p_category""",
        "Q4.3": """
            select d_year, s_city, p_brand1, sum(lo_revenue - lo_supplycost) as profit
            from lineorder, date, ssb_customer, ssb_supplier, ssb_part
            where lo_custkey = c_custkey and lo_suppkey = s_suppkey
              and lo_partkey = p_partkey and lo_orderdate = d_datekey
              and s_nation = 'AMER_NATION0'
              and d_year in (1997, 1998) and p_category = 'MFGR#14'
            group by d_year, s_city, p_brand1
            order by d_year, s_city, p_brand1""",
    }


def query(name: str) -> str:
    """One SSB query by name (``"Q1.1"`` … ``"Q4.3"``)."""
    return queries()[name]


def drilldown_queries(rounds: int = 8, seed: int = 0) -> List[str]:
    """SSB-style drill-down sessions over ``lineorder`` (DESIGN.md §14).

    Models an analyst narrowing in on a slice of the fact table: each
    round starts from a broad single-conjunct filter ``A``, adds
    conjuncts (``A AND B``, then ``A AND B AND C``), and then repeats
    the hierarchy with progressively narrower ranges contained in the
    originals.  The shape is deliberately hostile to exact-match
    caching — almost every predicate string is new — while being ideal
    for the reuse lattice: later conjunctions decompose into already
    cached conjuncts (composition) and narrowed ranges sit inside
    cached wider ones (subsumption).

    Pure fact-table scans (no dimension joins) so every query takes the
    decomposable plain-scan path.  Returns the session's queries in
    drill-down order.
    """
    rng = np.random.default_rng(seed)
    out: List[str] = []
    for _ in range(max(0, rounds)):
        # Broad base ranges for the three drill-down dimensions.
        q_lo = int(rng.integers(1, 20))
        q_hi = q_lo + int(rng.integers(15, 30))
        d_lo = int(rng.integers(0, 4))
        d_hi = d_lo + int(rng.integers(3, 7))
        year = int(rng.integers(1992, 1998))
        months = int(rng.integers(6, 12))
        date_lo = year * 10_000 + 101
        date_hi = year * 10_000 + (months + 1) * 100 + 1
        a = f"lo_quantity between {q_lo} and {q_hi}"
        b = f"lo_discount between {d_lo} and {d_hi}"
        c = f"lo_orderdate >= {date_lo} and lo_orderdate < {date_hi}"
        out.append(f"select count(*) from lineorder where {a}")
        out.append(f"select count(*) from lineorder where {a} and {b}")
        out.append(f"select count(*) from lineorder where {a} and {b} and {c}")
        # Narrowed repeat: every range contained in its broad original.
        nq_lo = q_lo + int(rng.integers(1, 5))
        nq_hi = max(nq_lo, q_hi - int(rng.integers(1, 5)))
        nd_hi = max(d_lo, d_hi - 1)
        ndate_hi = year * 10_000 + (max(1, months // 2) + 1) * 100 + 1
        na = f"lo_quantity between {nq_lo} and {nq_hi}"
        nb = f"lo_discount between {d_lo} and {nd_hi}"
        nc = f"lo_orderdate >= {date_lo} and lo_orderdate < {ndate_hi}"
        out.append(f"select count(*) from lineorder where {na}")
        out.append(f"select count(*) from lineorder where {na} and {nb}")
        out.append(
            f"select count(*) from lineorder where {na} and {nb} and {nc}"
        )
    return out
