"""Repetition metrics over statement logs (§2.1, §2.3).

The paper's definition: *a query is repetitive if the same statement,
including the parameters, is seen at least twice*; the repetition rate
of a cluster is the fraction of statements belonging to such queries.
Scans are measured the same way over (table, predicate) keys, counting
only scans with a filter condition.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Sequence, Tuple

from ..workloads.fleet import TABLE_SIZE_BUCKETS, Statement

__all__ = [
    "query_repetition_rate",
    "scan_repetition_rate",
    "repetition_by_table_size",
    "repetition_histogram",
]


def _rate_from_counts(counts: Counter) -> float:
    total = sum(counts.values())
    if total == 0:
        return 0.0
    repeated = sum(c for c in counts.values() if c >= 2)
    return repeated / total


def query_repetition_rate(statements: Sequence[Statement]) -> float:
    """Fraction of select statements whose exact text occurs >= 2 times."""
    counts = Counter(s.text for s in statements if s.is_select)
    return _rate_from_counts(counts)


def scan_repetition_rate(statements: Sequence[Statement]) -> float:
    """Fraction of filtered scans whose (table, predicate) repeats."""
    counts = Counter(
        scan.key() for s in statements if s.is_select for scan in s.scans
    )
    return _rate_from_counts(counts)


def repetition_by_table_size(
    statements: Sequence[Statement],
) -> Dict[str, Tuple[float, float]]:
    """(query rate, scan rate) per table-size bucket (Fig. 5).

    Queries are bucketed by the largest table they scan; scans by their
    own table's size.
    """
    query_counts: Dict[str, Counter] = {name: Counter() for name, _, _ in TABLE_SIZE_BUCKETS}
    scan_counts: Dict[str, Counter] = {name: Counter() for name, _, _ in TABLE_SIZE_BUCKETS}
    for s in statements:
        if not s.is_select or not s.scans:
            continue
        largest = max(scan.table_rows for scan in s.scans)
        query_counts[_bucket(largest)][s.text] += 1
        for scan in s.scans:
            scan_counts[_bucket(scan.table_rows)][scan.key()] += 1
    return {
        name: (
            _rate_from_counts(query_counts[name]),
            _rate_from_counts(scan_counts[name]),
        )
        for name, _, _ in TABLE_SIZE_BUCKETS
    }


def _bucket(rows: int) -> str:
    for name, lo, hi in TABLE_SIZE_BUCKETS:
        if lo <= rows < hi:
            return name
    return TABLE_SIZE_BUCKETS[-1][0]


def repetition_histogram(keys: Iterable[str]) -> Dict[int, int]:
    """How many distinct keys occur exactly N times (Fig. 14 left).

    Returns {repetition count: number of distinct keys with it}.
    """
    counts = Counter(keys)
    histogram: Counter = Counter(counts.values())
    return dict(sorted(histogram.items()))
