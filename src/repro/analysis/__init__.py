"""Workload-analysis pipeline (the paper's Section 2 methodology)."""

from .repetition import (
    query_repetition_rate,
    repetition_by_table_size,
    repetition_histogram,
    scan_repetition_rate,
)
from .mix import read_write_ratio, statement_mix
from .result_cache_sim import simulate_result_cache

__all__ = [
    "query_repetition_rate",
    "read_write_ratio",
    "repetition_by_table_size",
    "repetition_histogram",
    "scan_repetition_rate",
    "simulate_result_cache",
    "statement_mix",
]
