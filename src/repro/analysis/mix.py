"""Statement-mix analysis (§2.2: Table 2, Fig. 2–3)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Sequence

from ..workloads.fleet import STATEMENT_KINDS, Statement

__all__ = ["statement_mix", "read_write_ratio"]


def statement_mix(statements: Sequence[Statement]) -> Dict[str, float]:
    """Fraction of statements per kind (select/insert/copy/...)."""
    counts = Counter(s.kind for s in statements)
    total = max(1, len(statements))
    return {kind: counts.get(kind, 0) / total for kind in STATEMENT_KINDS}


def read_write_ratio(statements: Sequence[Statement]) -> float:
    """Reads divided by writes (Fig. 3's per-cluster comparison).

    Returns ``inf`` for clusters with no data-manipulation statements.
    """
    reads = sum(1 for s in statements if s.is_select)
    writes = sum(1 for s in statements if s.is_write)
    if writes == 0:
        return float("inf")
    return reads / writes
