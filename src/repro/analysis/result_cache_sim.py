"""Result-cache simulation over statement logs (§3.1: Fig. 6–7).

Replays a cluster's statement stream against an idealized result cache:
a select hits iff its exact text was executed before *and* none of its
tables changed in between.  This is the mechanism that makes result
caching's hit rate collapse on write-heavy clusters even though the
queries themselves repeat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..workloads.fleet import Statement

__all__ = ["simulate_result_cache", "ResultCacheSimulation"]


@dataclass
class ResultCacheSimulation:
    """Outcome of replaying one cluster through the result cache."""

    selects: int
    hits: int
    invalidations: int
    write_fraction: float

    @property
    def hit_rate(self) -> float:
        if self.selects == 0:
            return 0.0
        return self.hits / self.selects


def simulate_result_cache(statements: Sequence[Statement]) -> ResultCacheSimulation:
    """Replay a statement stream through an exact-match result cache."""
    table_versions: Dict[str, int] = {}
    cached: Dict[str, Tuple[Tuple[str, int], ...]] = {}
    selects = hits = invalidations = writes = 0

    for statement in statements:
        if statement.is_write:
            writes += 1
            for table in statement.tables:
                table_versions[table] = table_versions.get(table, 0) + 1
            continue
        if not statement.is_select:
            continue
        selects += 1
        current = tuple(
            (table, table_versions.get(table, 0)) for table in sorted(statement.tables)
        )
        seen = cached.get(statement.text)
        if seen is not None:
            if seen == current:
                hits += 1
            else:
                invalidations += 1
        cached[statement.text] = current

    total = max(1, len(statements))
    return ResultCacheSimulation(
        selects=selects,
        hits=hits,
        invalidations=invalidations,
        write_fraction=writes / total,
    )
