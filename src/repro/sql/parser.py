"""SQL parser for the supported statement subset.

Built on the shared tokenizer (:mod:`repro.predicates.lexer`) and the
predicate parser, extended with:

* column-to-column equality in WHERE (recognized as join conditions),
* scalar arithmetic expressions in the select list,
* aggregate functions ``count/sum/avg/min/max`` (and ``count(distinct)``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


from ..engine.expr import BinOp, Col, Const, Expr, Func
from ..engine.expr import _SCALAR_FUNCS
from ..predicates.ast import Predicate
from ..predicates.lexer import TokenKind, tokenize
from ..predicates.parser import PredicateParser
from .ast import (
    AnalyzeStatement,
    DeleteStatement,
    InsertStatement,
    JoinCondition,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
    VacuumStatement,
)

__all__ = ["SQLParseError", "parse_statement"]

_AGG_KEYWORDS = {"count", "sum", "avg", "min", "max"}
_CLAUSE_KEYWORDS = {"group", "order", "limit", "having"}


class SQLParseError(ValueError):
    """Raised on statements outside the supported subset."""


def parse_statement(text: str) -> Statement:
    """Parse one SQL statement (a trailing ``;`` is allowed)."""
    tokens = tokenize(text)
    parser = _StatementParser(tokens)
    statement = parser.parse()
    return statement


class _StatementParser(PredicateParser):
    """Top-level statement dispatch plus clause parsing."""

    def parse(self) -> Statement:
        token = self.peek()
        if token.kind != TokenKind.KEYWORD:
            raise SQLParseError(f"expected a statement keyword, got {token.text!r}")
        word = token.lowered
        if word == "select":
            statement = self._parse_select()
        elif word == "insert":
            statement = self._parse_insert()
        elif word == "delete":
            statement = self._parse_delete()
        elif word == "update":
            statement = self._parse_update()
        elif word == "vacuum":
            statement = self._parse_vacuum()
        elif word == "analyze":
            statement = self._parse_analyze()
        else:
            raise SQLParseError(f"unsupported statement {word.upper()!r}")
        self.accept_punct(";")
        if self.peek().kind != TokenKind.EOF:
            raise SQLParseError(
                f"unexpected trailing input {self.peek().text!r} at "
                f"position {self.peek().pos}"
            )
        return statement

    # -- SELECT -----------------------------------------------------------------

    def _parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        items = self._parse_select_list()
        self.expect_keyword("from")
        tables, join_filters, join_conditions = self._parse_from()

        filters: List[Predicate] = list(join_filters)
        joins: List[JoinCondition] = list(join_conditions)
        if self.accept_keyword("where"):
            filters.extend(self.parse_or().conjuncts())

        group_by: List[str] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._parse_column().name)
            while self.accept_punct(","):
                group_by.append(self._parse_column().name)

        order_by: List[Tuple[str, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_key(items))
            while self.accept_punct(","):
                order_by.append(self._parse_order_key(items))

        limit: Optional[int] = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != TokenKind.NUMBER or "." in token.text:
                raise SQLParseError(f"LIMIT needs an integer, got {token.text!r}")
            limit = int(token.text)

        return SelectStatement(
            items=items,
            tables=tables,
            filters=filters,
            joins=joins,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    def _parse_select_list(self) -> List[SelectItem]:
        if self.accept_punct("*"):
            return []  # empty item list means SELECT *
        items = [self._parse_select_item(0)]
        while self.accept_punct(","):
            items.append(self._parse_select_item(len(items)))
        return items

    def _parse_select_item(self, index: int) -> SelectItem:
        token = self.peek()
        if token.kind == TokenKind.KEYWORD and token.lowered in _AGG_KEYWORDS:
            after = self._tokens[self._pos + 1]
            if after.kind == TokenKind.PUNCT and after.text == "(":
                return self._parse_aggregate_item(index)
        expr = self._parse_scalar_expr()
        alias = self._parse_alias() or _default_alias(expr, index)
        return SelectItem(expr=expr, alias=alias)

    def _parse_aggregate_item(self, index: int) -> SelectItem:
        func = self.advance().lowered
        self.expect_punct("(")
        distinct = bool(self.accept_keyword("distinct"))
        if self.accept_punct("*"):
            if func != "count":
                raise SQLParseError(f"{func}(*) is not valid")
            expr: Optional[Expr] = None
        else:
            expr = self._parse_scalar_expr()
        self.expect_punct(")")
        alias = self._parse_alias() or f"{func}_{index}"
        if func == "count" and distinct:
            func = "count_distinct"
        return SelectItem(expr=expr, alias=alias, func=func, distinct=distinct)

    def _parse_alias(self) -> Optional[str]:
        if self.accept_keyword("as"):
            token = self.advance()
            if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise SQLParseError(f"expected alias after AS, got {token.text!r}")
            return token.text
        token = self.peek()
        if token.kind == TokenKind.IDENT:
            return self.advance().text
        return None

    def _parse_from(
        self,
    ) -> Tuple[List[str], List[Predicate], List[JoinCondition]]:
        tables = [self._parse_table_name()]
        filters: List[Predicate] = []
        joins: List[JoinCondition] = []
        while True:
            if self.accept_punct(","):
                tables.append(self._parse_table_name())
                continue
            joined = self.accept_keyword("join")
            if not joined and self.accept_keyword("inner"):
                self.expect_keyword("join")
                joined = True
            if joined:
                tables.append(self._parse_table_name())
                self.expect_keyword("on")
                filters.extend(self.parse_or().conjuncts())
                continue
            break
        return tables, filters, joins

    def _parse_table_name(self) -> str:
        token = self.advance()
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise SQLParseError(f"expected table name, got {token.text!r}")
        # Optional alias (ignored: columns are globally unique here).
        if self.peek().kind == TokenKind.IDENT:
            self.advance()
        return token.text

    def _parse_order_key(self, items: List[SelectItem]) -> Tuple[str, bool]:
        token = self.advance()
        if token.kind == TokenKind.NUMBER:
            position = int(token.text)
            if not 1 <= position <= len(items):
                raise SQLParseError(f"ORDER BY position {position} out of range")
            name = items[position - 1].alias
        elif token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            name = token.text
            if self.accept_punct("."):
                name = self.advance().text
        else:
            raise SQLParseError(f"expected ORDER BY key, got {token.text!r}")
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return (name, ascending)

    # -- scalar expressions --------------------------------------------------------

    def _parse_scalar_expr(self) -> Expr:
        left = self._parse_term()
        while True:
            token = self.peek()
            if token.kind == TokenKind.PUNCT and token.text in ("+", "-"):
                self.advance()
                left = BinOp(left, token.text, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while True:
            token = self.peek()
            if token.kind == TokenKind.PUNCT and token.text in ("*", "/"):
                self.advance()
                left = BinOp(left, token.text, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expr:
        token = self.peek()
        if token.kind == TokenKind.PUNCT and token.text == "(":
            self.advance()
            inner = self._parse_scalar_expr()
            self.expect_punct(")")
            return inner
        if token.kind == TokenKind.PUNCT and token.text == "-":
            self.advance()
            return BinOp(Const(0), "-", self._parse_factor())
        if token.kind == TokenKind.NUMBER:
            self.advance()
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.kind == TokenKind.IDENT and token.lowered in _SCALAR_FUNCS:
            after = self._tokens[self._pos + 1]
            if after.kind == TokenKind.PUNCT and after.text == "(":
                self.advance()
                self.expect_punct("(")
                arg = self._parse_scalar_expr()
                self.expect_punct(")")
                return Func(token.lowered, arg)
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            return Col(self._parse_column().name)
        raise SQLParseError(f"expected expression, got {token.text!r}")

    # -- INSERT / DELETE / UPDATE / VACUUM -------------------------------------------

    def _parse_insert(self) -> InsertStatement:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self._parse_table_name()
        columns: Optional[List[str]] = None
        if self.accept_punct("("):
            columns = [self._parse_column().name]
            while self.accept_punct(","):
                columns.append(self._parse_column().name)
            self.expect_punct(")")
        self.expect_keyword("values")
        rows: List[Tuple] = [self._parse_value_tuple()]
        while self.accept_punct(","):
            rows.append(self._parse_value_tuple())
        return InsertStatement(table=table, columns=columns, rows=rows)

    def _parse_value_tuple(self) -> Tuple:
        self.expect_punct("(")
        values = [self._parse_value()]
        while self.accept_punct(","):
            values.append(self._parse_value())
        self.expect_punct(")")
        return tuple(values)

    def _parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self._parse_table_name()
        predicate: Optional[Predicate] = None
        if self.accept_keyword("where"):
            predicate = self.parse_or()
        return DeleteStatement(table=table, predicate=predicate)

    def _parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self._parse_table_name()
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept_punct(","):
            assignments.append(self._parse_assignment())
        predicate: Optional[Predicate] = None
        if self.accept_keyword("where"):
            predicate = self.parse_or()
        return UpdateStatement(table=table, assignments=assignments, predicate=predicate)

    def _parse_assignment(self) -> Tuple[str, object]:
        column = self._parse_column().name
        token = self.advance()
        if token.kind != TokenKind.OPERATOR or token.text != "=":
            raise SQLParseError(f"expected '=' in SET, got {token.text!r}")
        return (column, self._parse_value())

    def _parse_analyze(self) -> AnalyzeStatement:
        self.expect_keyword("analyze")
        token = self.peek()
        table: Optional[str] = None
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            table = self.advance().text
        return AnalyzeStatement(table=table)

    def _parse_vacuum(self) -> VacuumStatement:
        self.expect_keyword("vacuum")
        token = self.peek()
        table: Optional[str] = None
        if token.kind in (TokenKind.IDENT, TokenKind.KEYWORD) and token.lowered not in (
            "",
        ):
            table = self.advance().text
        return VacuumStatement(table=table)


def _default_alias(expr: Expr, index: int) -> str:
    if isinstance(expr, Col):
        return expr.name
    return f"expr_{index}"


