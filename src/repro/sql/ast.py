"""SQL statement ASTs (parser output, planner input)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..engine.expr import Expr
from ..predicates.ast import Predicate

__all__ = [
    "AnalyzeStatement",
    "Statement",
    "SelectItem",
    "JoinCondition",
    "SelectStatement",
    "InsertStatement",
    "DeleteStatement",
    "UpdateStatement",
    "VacuumStatement",
]


class Statement:
    """Base class for parsed statements."""


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry.

    Either an aggregate (``func`` set, ``expr`` its argument — None for
    ``count(*)``) or a plain expression (``func`` None).
    """

    expr: Optional[Expr]
    alias: str
    func: Optional[str] = None
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        return self.func is not None


@dataclass(frozen=True)
class JoinCondition:
    """An equi-join conjunct ``left_column = right_column``."""

    left_column: str
    right_column: str

    def canonical(self) -> str:
        a, b = sorted((self.left_column, self.right_column))
        return f"{a} = {b}"


@dataclass
class SelectStatement(Statement):
    """A parsed SELECT."""

    items: List[SelectItem]
    tables: List[str]
    filters: List[Predicate] = field(default_factory=list)
    joins: List[JoinCondition] = field(default_factory=list)
    group_by: List[str] = field(default_factory=list)
    order_by: List[Tuple[str, bool]] = field(default_factory=list)
    limit: Optional[int] = None

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)


@dataclass
class InsertStatement(Statement):
    """``INSERT INTO table [(columns)] VALUES (...), (...)``."""

    table: str
    columns: Optional[List[str]]
    rows: List[Tuple]


@dataclass
class DeleteStatement(Statement):
    """``DELETE FROM table [WHERE predicate]``."""

    table: str
    predicate: Optional[Predicate]


@dataclass
class UpdateStatement(Statement):
    """``UPDATE table SET col = value, ... [WHERE predicate]``."""

    table: str
    assignments: List[Tuple[str, object]]
    predicate: Optional[Predicate]


@dataclass
class VacuumStatement(Statement):
    """``VACUUM [table]``."""

    table: Optional[str]


@dataclass
class AnalyzeStatement(Statement):
    """``ANALYZE [table]``: collect optimizer statistics."""

    table: Optional[str]
