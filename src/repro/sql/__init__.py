"""A SQL subset front end.

Supports the statement shapes the paper's workloads need:

* ``SELECT`` with aggregates, ``GROUP BY``, ``ORDER BY``, ``LIMIT``,
  multi-table joins expressed in the ``WHERE`` clause or via
  ``JOIN ... ON``,
* ``INSERT INTO ... VALUES``,
* ``DELETE FROM ... WHERE``, ``UPDATE ... SET ... WHERE``,
* ``VACUUM [table]``.

The planner splits the ``WHERE`` clause into per-table filter predicates
(pushed into scans — the unit the predicate cache indexes) and equi-join
conditions (planned as hash joins with semi-join filter pushdown).
"""

from .ast import (
    AnalyzeStatement,
    DeleteStatement,
    InsertStatement,
    SelectItem,
    SelectStatement,
    Statement,
    UpdateStatement,
    VacuumStatement,
)
from .parser import SQLParseError, parse_statement
from .planner import PlannerError, plan_select

__all__ = [
    "AnalyzeStatement",
    "DeleteStatement",
    "InsertStatement",
    "PlannerError",
    "SQLParseError",
    "SelectItem",
    "SelectStatement",
    "Statement",
    "UpdateStatement",
    "VacuumStatement",
    "parse_statement",
    "plan_select",
]
