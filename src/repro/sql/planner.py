"""Planner: SELECT statements to executable plan trees.

Planning steps:

1. Resolve every referenced column to its table (column names must be
   unambiguous across the statement's tables, as in TPC-H/SSB schemas).
2. Push each WHERE conjunct into the scan of the single table it
   references — this forms the predicate the cache indexes.
3. Order joins left-deep with the largest table as the probe root
   (fact-table heuristic); every join carries semi-join pushdown.
4. Stack aggregation / projection / sort / limit on top.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..engine.expr import Col
from ..engine.plan import (
    AggregateNode,
    Aggregation,
    FilterNode,
    JoinNode,
    LimitNode,
    MapNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    SortNode,
)
from ..predicates.ast import ColumnComparison, Or, Predicate, conjunction_of
from ..storage.database import Database
from .ast import JoinCondition, SelectStatement

__all__ = ["PlannerError", "plan_select"]


class PlannerError(ValueError):
    """Raised when a statement cannot be planned."""


def plan_select(statement: SelectStatement, database: Database) -> PlanNode:
    """Plan a parsed SELECT against the database catalog."""
    column_owner = _resolve_columns(statement.tables, database)
    per_table, joins, residuals = _split_conjuncts(
        statement.filters, statement.joins, column_owner
    )

    # Multi-table predicates (e.g. Q19's OR of conjunctions) still
    # contribute *implied* per-table disjunctions to the scans; the full
    # predicate is re-checked post-join.
    for residual in residuals:
        for table_name, implied in _implied_per_table(residual, column_owner).items():
            per_table.setdefault(table_name, []).append(implied)

    scans: Dict[str, ScanNode] = {
        name: ScanNode(name, conjunction_of(per_table.get(name, [])))
        for name in statement.tables
    }
    tree = _order_joins(statement, joins, scans, column_owner, database)
    for residual in residuals:
        tree = FilterNode(tree, residual)

    if statement.has_aggregates or statement.group_by:
        tree = _plan_aggregate(statement, tree)
    elif statement.items:
        projections = [(item.alias, item.expr) for item in statement.items]
        tree = ProjectNode(tree, projections)
    # SELECT * leaves the join/scan output as-is.

    if statement.order_by:
        tree = SortNode(tree, list(statement.order_by))
    if statement.limit is not None:
        tree = LimitNode(tree, statement.limit)
    return tree


def _resolve_columns(
    tables: Sequence[str], database: Database
) -> Dict[str, str]:
    """Column name -> owning table, rejecting ambiguity."""
    owner: Dict[str, str] = {}
    for name in tables:
        table = database.table(name)
        for column in table.schema.column_names:
            if column in owner:
                raise PlannerError(
                    f"ambiguous column {column!r} (both {owner[column]} "
                    f"and {name}); the subset requires unique column names"
                )
            owner[column] = name
    return owner


def _split_conjuncts(
    filters: Sequence[Predicate],
    explicit_joins: Sequence[JoinCondition],
    column_owner: Dict[str, str],
) -> Tuple[Dict[str, List[Predicate]], List[JoinCondition], List[Predicate]]:
    """Partition WHERE conjuncts: per-table filters, joins, residuals.

    A cross-table ``col = col`` equality becomes a join condition; a
    same-table column comparison stays a pushable filter; any other
    conjunct spanning multiple tables is a residual (re-checked above
    the joins).
    """
    per_table: Dict[str, List[Predicate]] = {}
    joins: List[JoinCondition] = list(explicit_joins)
    residuals: List[Predicate] = []
    for predicate in filters:
        tables = set()
        for column in predicate.columns():
            table = column_owner.get(column)
            if table is None:
                raise PlannerError(f"unknown column {column!r} in WHERE")
            tables.add(table)
        if (
            isinstance(predicate, ColumnComparison)
            and predicate.op == "="
            and len(tables) == 2
        ):
            joins.append(
                JoinCondition(predicate.left.name, predicate.right.name)
            )
        elif len(tables) <= 1:
            table = tables.pop() if tables else None
            if table is None:
                residuals.append(predicate)  # constant predicate
            else:
                per_table.setdefault(table, []).append(predicate)
        else:
            residuals.append(predicate)
    return per_table, joins, residuals


def _implied_per_table(
    predicate: Predicate, column_owner: Dict[str, str]
) -> Dict[str, Predicate]:
    """Per-table predicates implied by a multi-table conjunct.

    For an OR of conjunctions (the Q19 shape), a table T gets the
    disjunction of the T-only parts of each branch — valid only when
    *every* branch restricts T.  Non-OR multi-table conjuncts imply
    nothing pushable.
    """
    if not isinstance(predicate, Or):
        return {}
    tables_in_branches: List[Dict[str, List[Predicate]]] = []
    for branch in predicate.operands:
        branch_tables: Dict[str, List[Predicate]] = {}
        for conjunct in branch.conjuncts():
            tables = {column_owner.get(c) for c in conjunct.columns()}
            if len(tables) == 1 and None not in tables:
                branch_tables.setdefault(tables.pop(), []).append(conjunct)
        tables_in_branches.append(branch_tables)
    implied: Dict[str, Predicate] = {}
    all_tables = set().union(*(set(b) for b in tables_in_branches))
    for table in all_tables:
        if all(table in branch for branch in tables_in_branches):
            implied[table] = Or(
                tuple(
                    conjunction_of(branch[table]) for branch in tables_in_branches
                )
            )
    return implied


def _order_joins(
    statement: SelectStatement,
    join_conditions: List[JoinCondition],
    scans: Dict[str, ScanNode],
    column_owner: Dict[str, str],
    database: Database,
) -> PlanNode:
    tables = list(statement.tables)
    if len(tables) == 1:
        if join_conditions:
            raise PlannerError("join condition with a single table")
        return scans[tables[0]]

    conditions = [
        _owned_condition(join, column_owner) for join in join_conditions
    ]

    # The probe side anchors on the largest *estimated filtered*
    # cardinality (falls back to physical size without statistics).
    def estimated_output(name: str) -> float:
        stats = database.table_statistics(name)
        if stats is not None:
            return stats.estimated_rows(scans[name].predicate)
        return float(database.table(name).num_rows)

    root = max(tables, key=estimated_output)
    tree: PlanNode = scans[root]
    joined: Set[str] = {root}
    remaining = list(conditions)

    while remaining:
        progress = False
        for condition in list(remaining):
            (left_col, left_table), (right_col, right_table) = condition
            if left_table in joined and right_table not in joined:
                probe_col, build_col, build_table = left_col, right_col, right_table
            elif right_table in joined and left_table not in joined:
                probe_col, build_col, build_table = right_col, left_col, left_table
            elif left_table in joined and right_table in joined:
                raise PlannerError(
                    "cyclic join conditions are outside the supported subset"
                )
            else:
                continue
            tree = JoinNode(
                probe=tree,
                build=scans[build_table],
                probe_key=probe_col,
                build_key=build_col,
            )
            joined.add(build_table)
            remaining.remove(condition)
            progress = True
        if not progress:
            break
    unjoined = set(tables) - joined
    if unjoined:
        raise PlannerError(
            f"tables {sorted(unjoined)} are not connected by join "
            "conditions (cross joins unsupported)"
        )
    return tree


def _owned_condition(
    join: JoinCondition, column_owner: Dict[str, str]
) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    left_table = column_owner.get(join.left_column)
    right_table = column_owner.get(join.right_column)
    if left_table is None or right_table is None:
        missing = join.left_column if left_table is None else join.right_column
        raise PlannerError(f"unknown column {missing!r} in join condition")
    if left_table == right_table:
        raise PlannerError(
            f"self-join condition {join.canonical()!r} is outside the subset"
        )
    return ((join.left_column, left_table), (join.right_column, right_table))


def _plan_aggregate(statement: SelectStatement, tree: PlanNode) -> PlanNode:
    aggregations: List[Aggregation] = []
    computed: List = []
    for item in statement.items:
        if item.is_aggregate:
            aggregations.append(Aggregation(item.func, item.expr, item.alias))
        elif isinstance(item.expr, Col) and item.expr.name in statement.group_by:
            continue
        elif item.alias in statement.group_by:
            # Expression group-by (``year(l_shipdate) as l_year ...
            # group by l_year``): compute the column before grouping.
            computed.append((item.alias, item.expr))
        else:
            raise PlannerError(
                f"non-aggregate select item {item.alias!r} must be a "
                "GROUP BY column"
            )
    if computed:
        tree = MapNode(tree, computed)
    node = AggregateNode(tree, list(statement.group_by), aggregations)
    # Preserve the select-list order (group keys may interleave with
    # aggregates in the query text) via a projection when they differ.
    wanted = [item.alias for item in statement.items]
    if wanted != node.output_columns():
        return ProjectNode(node, [(alias, Col(alias)) for alias in wanted])
    return node
