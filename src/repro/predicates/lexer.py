"""A small SQL-flavoured tokenizer shared by the predicate and SQL parsers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "TokenKind", "LexError", "tokenize"]


class LexError(ValueError):
    """Raised on input that cannot be tokenized."""


class TokenKind:
    """Token categories (plain strings; an Enum adds no value here)."""

    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    KEYWORD = "KEYWORD"
    EOF = "EOF"


_KEYWORDS = {
    "select", "from", "where", "group", "by", "order", "having", "limit",
    "and", "or", "not", "between", "in", "is", "null", "as", "asc", "desc",
    "insert", "into", "values", "update", "set", "delete", "copy", "vacuum",
    "create", "table", "join", "on", "inner", "left", "count", "sum", "avg", "analyze",
    "min", "max", "distinct", "true", "false", "like",
}

_OPERATORS = ("<>", "<=", ">=", "!=", "=", "<", ">")
_PUNCT = "(),.*;+-/%"


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    pos: int

    @property
    def lowered(self) -> str:
        return self.text.lower()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            yield _string_token(text, i)
            # Skip past the closing quote, accounting for '' escapes.
            j = i + 1
            while j < n:
                if text[j] == "'" and j + 1 < n and text[j + 1] == "'":
                    j += 2
                elif text[j] == "'":
                    break
                else:
                    j += 1
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is punctuation
                    # (e.g. ``t.col``), not a decimal point.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenKind.NUMBER, text[i:j], i)
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = TokenKind.KEYWORD if word.lower() in _KEYWORDS else TokenKind.IDENT
            yield Token(kind, word, i)
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenKind.OPERATOR, "<>" if op == "!=" else op, i)
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            yield Token(TokenKind.PUNCT, ch, i)
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}")
    yield Token(TokenKind.EOF, "", n)


def _string_token(text: str, start: int) -> Token:
    """Scan a single-quoted string literal with ``''`` escaping."""
    i = start + 1
    n = len(text)
    out: List[str] = []
    while i < n:
        if text[i] == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return Token(TokenKind.STRING, "".join(out), start)
        out.append(text[i])
        i += 1
    raise LexError(f"unterminated string literal starting at {start}")
