"""Predicate normalization (the paper's §4.1.2 extension).

The prototype caches the optimizer's *string* representation, betting
that repeats are textually identical.  The paper notes that an SMT-
style normalization into conjunctive normal form could increase the hit
rate by unifying semantically equal predicates.  This module implements
a practical normalizer:

* **NOT push-down** — De Morgan plus comparison negation
  (``NOT x < 5`` becomes ``x >= 5``),
* **interval merging** — conjoined restrictions of one column collapse
  into the tightest form (``x > 3 AND x >= 5 AND x < 9`` becomes
  ``x BETWEEN-style`` bounds; contradictions become ``FALSE``),
* **duplicate elimination** and **constant folding** (``p AND p`` → p,
  ``p AND FALSE`` → FALSE, ``p OR TRUE`` → TRUE),
* **CNF conversion** (size-guarded distribution of OR over AND).

``normalize(p)`` returns an equivalent predicate whose ``cache_key()``
is canonical across these rewrites; the ablation bench measures the
hit-rate difference on a workload of syntactic variants.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .ast import (
    And,
    Between,
    Bounds,
    ColumnComparison,
    ColumnRef,
    Comparison,
    FalsePredicate,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
)

__all__ = ["normalize", "push_not_inward", "to_cnf"]

_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def normalize(predicate: Predicate, cnf: bool = True) -> Predicate:
    """An equivalent predicate in canonical form.

    Args:
        predicate: any predicate tree.
        cnf: also distribute OR over AND (guarded against blow-up).
    """
    result = push_not_inward(predicate)
    result = _simplify(result)
    if cnf:
        result = to_cnf(result)
        result = _simplify(result)
    return result


# -- NOT push-down --------------------------------------------------------------


def push_not_inward(predicate: Predicate) -> Predicate:
    """Eliminate NOT nodes where a direct negation exists."""
    if isinstance(predicate, Not):
        return _negate(push_not_inward(predicate.operand))
    if isinstance(predicate, And):
        return And(tuple(push_not_inward(p) for p in predicate.operands))
    if isinstance(predicate, Or):
        return Or(tuple(push_not_inward(p) for p in predicate.operands))
    return predicate


def _negate(predicate: Predicate) -> Predicate:
    if isinstance(predicate, TruePredicate):
        return FalsePredicate()
    if isinstance(predicate, FalsePredicate):
        return TruePredicate()
    if isinstance(predicate, Comparison):
        return Comparison(
            predicate.column, _NEGATED_OP[predicate.op], predicate.literal
        )
    if isinstance(predicate, ColumnComparison):
        return ColumnComparison(
            predicate.left, _NEGATED_OP[predicate.op], predicate.right
        )
    if isinstance(predicate, Between):
        return Or(
            (
                Comparison(predicate.column, "<", predicate.low),
                Comparison(predicate.column, ">", predicate.high),
            )
        )
    if isinstance(predicate, IsNull):
        return IsNull(predicate.column, negated=not predicate.negated)
    if isinstance(predicate, Like):
        return Like(predicate.column, predicate.pattern, negated=not predicate.negated)
    if isinstance(predicate, And):
        return Or(tuple(_negate(p) for p in predicate.operands))
    if isinstance(predicate, Or):
        return And(tuple(_negate(p) for p in predicate.operands))
    if isinstance(predicate, Not):
        return predicate.operand
    return Not(predicate)  # InList and friends keep an explicit NOT


# -- simplification ----------------------------------------------------------------


def _simplify(predicate: Predicate) -> Predicate:
    if isinstance(predicate, And):
        return _simplify_and(predicate)
    if isinstance(predicate, Or):
        return _simplify_or(predicate)
    if isinstance(predicate, Between) and predicate.low.value == predicate.high.value:
        return Comparison(predicate.column, "=", predicate.low)
    return predicate


def _simplify_and(predicate: And) -> Predicate:
    conjuncts: List[Predicate] = []
    for operand in predicate.operands:
        simplified = _simplify(operand)
        if isinstance(simplified, FalsePredicate):
            return FalsePredicate()
        if isinstance(simplified, TruePredicate):
            continue
        if isinstance(simplified, And):
            conjuncts.extend(simplified.operands)
        else:
            conjuncts.append(simplified)

    merged, contradiction = _merge_column_intervals(conjuncts)
    if contradiction:
        return FalsePredicate()

    # Deduplicate by cache key (p AND p -> p).
    seen: Dict[str, Predicate] = {}
    for conjunct in merged:
        seen.setdefault(conjunct.cache_key(), conjunct)
    unique = list(seen.values())
    if not unique:
        return TruePredicate()
    if len(unique) == 1:
        return unique[0]
    return And(tuple(unique))


def _simplify_or(predicate: Or) -> Predicate:
    disjuncts: List[Predicate] = []
    for operand in predicate.operands:
        simplified = _simplify(operand)
        if isinstance(simplified, TruePredicate):
            return TruePredicate()
        if isinstance(simplified, FalsePredicate):
            continue
        if isinstance(simplified, Or):
            disjuncts.extend(simplified.operands)
        else:
            disjuncts.append(simplified)
    seen: Dict[str, Predicate] = {}
    for disjunct in disjuncts:
        seen.setdefault(disjunct.cache_key(), disjunct)
    unique = list(seen.values())
    if not unique:
        return FalsePredicate()
    if len(unique) == 1:
        return unique[0]
    return Or(tuple(unique))


def _merge_column_intervals(
    conjuncts: List[Predicate],
) -> Tuple[List[Predicate], bool]:
    """Collapse single-column range restrictions into tightest forms.

    Returns (new conjunct list, contradiction flag).
    """
    mergeable: Dict[str, List[Predicate]] = {}
    passthrough: List[Predicate] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, (Comparison, Between)) and _is_range(conjunct):
            mergeable.setdefault(_column_of(conjunct), []).append(conjunct)
        else:
            passthrough.append(conjunct)

    merged: List[Predicate] = []
    for column, parts in sorted(mergeable.items()):
        if len(parts) == 1:
            merged.append(parts[0])
            continue
        interval = _combine_bounds(column, parts)
        if interval is None:  # mixed types: keep as-is, no merging
            merged.extend(parts)
            continue
        rebuilt, contradiction = _interval_to_predicate(column, interval)
        if contradiction:
            return [], True
        if rebuilt is not None:
            merged.append(rebuilt)
    return passthrough + merged, False


def _is_range(predicate: Predicate) -> bool:
    if isinstance(predicate, Between):
        return _comparable(predicate.low.value) and _comparable(predicate.high.value)
    if isinstance(predicate, Comparison):
        return predicate.op != "<>" and _comparable(predicate.literal.value)
    return False


def _comparable(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _column_of(predicate: Predicate) -> str:
    return next(iter(predicate.columns()))


def _combine_bounds(column: str, parts: List[Predicate]) -> Optional[Bounds]:
    lo = hi = None
    lo_strict = hi_strict = False
    for part in parts:
        bounds = part.bounds(column)
        if bounds is None:
            return None
        if bounds.lo is not None:
            if lo is None or bounds.lo > lo:
                lo, lo_strict = bounds.lo, bounds.lo_strict
            elif bounds.lo == lo:
                lo_strict = lo_strict or bounds.lo_strict
        if bounds.hi is not None:
            if hi is None or bounds.hi < hi:
                hi, hi_strict = bounds.hi, bounds.hi_strict
            elif bounds.hi == hi:
                hi_strict = hi_strict or bounds.hi_strict
    return Bounds(lo, hi, lo_strict, hi_strict)


def _interval_to_predicate(
    column: str, interval: Bounds
) -> Tuple[Optional[Predicate], bool]:
    """Rebuild the tightest predicate for an interval; detect emptiness."""
    ref = ColumnRef(column)
    lo, hi = interval.lo, interval.hi
    if lo is not None and hi is not None:
        if lo > hi:
            return None, True
        if lo == hi:
            if interval.lo_strict or interval.hi_strict:
                return None, True
            return Comparison(ref, "=", Literal(lo)), False
        if not interval.lo_strict and not interval.hi_strict:
            return Between(ref, Literal(lo), Literal(hi)), False
        return (
            And(
                (
                    Comparison(ref, ">" if interval.lo_strict else ">=", Literal(lo)),
                    Comparison(ref, "<" if interval.hi_strict else "<=", Literal(hi)),
                )
            ),
            False,
        )
    if lo is not None:
        return Comparison(ref, ">" if interval.lo_strict else ">=", Literal(lo)), False
    if hi is not None:
        return Comparison(ref, "<" if interval.hi_strict else "<=", Literal(hi)), False
    return None, False


# -- CNF ----------------------------------------------------------------------------

_CNF_CLAUSE_LIMIT = 64


def to_cnf(predicate: Predicate) -> Predicate:
    """Conjunctive normal form, guarded against exponential blow-up.

    If distribution would exceed ``_CNF_CLAUSE_LIMIT`` clauses the input
    is returned unchanged (still canonicalized by the other rewrites).
    """
    clauses = _cnf_clauses(predicate)
    if clauses is None:
        return predicate
    rebuilt = [
        clause[0] if len(clause) == 1 else Or(tuple(clause)) for clause in clauses
    ]
    if not rebuilt:
        return TruePredicate()
    if len(rebuilt) == 1:
        return rebuilt[0]
    return And(tuple(rebuilt))


def _cnf_clauses(predicate: Predicate) -> Optional[List[List[Predicate]]]:
    if isinstance(predicate, And):
        clauses: List[List[Predicate]] = []
        for operand in predicate.operands:
            sub = _cnf_clauses(operand)
            if sub is None:
                return None
            clauses.extend(sub)
            if len(clauses) > _CNF_CLAUSE_LIMIT:
                return None
        return clauses
    if isinstance(predicate, Or):
        # CNF(a OR b) = cross product of clauses of a and clauses of b.
        result: List[List[Predicate]] = [[]]
        for operand in predicate.operands:
            sub = _cnf_clauses(operand)
            if sub is None:
                return None
            result = [
                existing + clause for existing in result for clause in sub
            ]
            if len(result) > _CNF_CLAUSE_LIMIT:
                return None
        return result
    if isinstance(predicate, TruePredicate):
        return []
    return [[predicate]]
