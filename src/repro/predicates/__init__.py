"""Predicate ASTs, vectorized evaluation, and canonical cache keys.

Predicates are the unit the predicate cache indexes: a scan's filter
condition, pushed down by the optimizer, becomes a canonical string key
(§4.1 — the paper caches the optimizer's textual representation without
normalization).  This package provides:

* the expression node types (:mod:`repro.predicates.ast`),
* numpy-vectorized evaluation over column batches,
* helpers for building conjunctions and extracting referenced columns,
* a small predicate parser used by the SQL front end and tests.
"""

from .ast import (
    And,
    Between,
    Bounds,
    ColumnComparison,
    ColumnRef,
    Comparison,
    FalsePredicate,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    TruePredicate,
    col,
    conjunction_of,
    lit,
)
from .normalize import normalize, push_not_inward, to_cnf
from .parser import parse_predicate

__all__ = [
    "And",
    "Between",
    "Bounds",
    "ColumnComparison",
    "ColumnRef",
    "Comparison",
    "FalsePredicate",
    "InList",
    "IsNull",
    "Like",
    "Literal",
    "Not",
    "Or",
    "Predicate",
    "TruePredicate",
    "col",
    "conjunction_of",
    "lit",
    "normalize",
    "parse_predicate",
    "push_not_inward",
    "to_cnf",
]
