"""Predicate expression nodes with vectorized evaluation.

Every node implements:

* ``evaluate(batch)`` — numpy-vectorized evaluation over a mapping from
  column name to ``np.ndarray`` (all arrays the same length); returns a
  boolean mask,
* ``cache_key()`` — a canonical string used as the predicate-cache key.
  Following the paper (§4.1) we do not normalize into CNF; we only
  canonicalize trivia (sorted conjunct order, stable literal formatting)
  so that the *same* pushed-down predicate always yields the same key,
* ``columns()`` — the set of referenced column names,
* ``bounds(column)`` — optional (lo, hi) value bounds implied for a
  column, used for zone-map pruning.

Nodes are immutable and hashable so they can be used as dict keys and
deduplicated in workload analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = [
    "Bounds",
    "FalsePredicate",
    "Predicate",
    "ColumnRef",
    "Literal",
    "Comparison",
    "Between",
    "InList",
    "IsNull",
    "Like",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "col",
    "lit",
    "conjunction_of",
]

Batch = Mapping[str, np.ndarray]
Value = Union[int, float, str, bool, None]

@dataclass(frozen=True, slots=True)
class Bounds:
    """Value bounds a predicate implies for one column.

    ``lo``/``hi`` of None mean unbounded; ``*_strict`` marks an open
    endpoint (``x < 10`` gives ``hi=10, hi_strict=True``), which lets
    zone maps prune blocks whose minimum equals an excluded bound.
    """

    lo: "Value" = None
    hi: "Value" = None
    lo_strict: bool = False
    hi_strict: bool = False

    @property
    def unbounded(self) -> bool:
        return self.lo is None and self.hi is None

    def as_pair(self) -> "Tuple[Value, Value]":
        return (self.lo, self.hi)


_COMPARISON_OPS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


def _format_value(value: Value) -> str:
    """Stable literal rendering for cache keys (8.0 and 8 differ)."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


class Predicate:
    """Base class for boolean-valued expressions over a row batch."""

    def evaluate(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def cache_key(self) -> str:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def bounds(self, column: str) -> Optional["Bounds"]:
        """Value bounds implied for ``column``, or None if unbounded.

        Only conjunctive restrictions produce bounds; disjunctions are
        conservatively widened.  Used by zone-map pruning.
        """
        return None

    def conjuncts(self) -> List["Predicate"]:
        """Flatten a conjunction tree into its leaf conjuncts."""
        return [self]

    # -- operator sugar -----------------------------------------------------

    def __and__(self, other: "Predicate") -> "Predicate":
        return And((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or((self, other))

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.cache_key()})"


@dataclass(frozen=True, slots=True)
class TruePredicate(Predicate):
    """The always-true predicate (a scan with no filter)."""

    def evaluate(self, batch: Batch) -> np.ndarray:
        n = len(next(iter(batch.values()))) if batch else 0
        return np.ones(n, dtype=bool)

    def cache_key(self) -> str:
        return "TRUE"

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def conjuncts(self) -> List[Predicate]:
        return []


@dataclass(frozen=True, slots=True)
class FalsePredicate(Predicate):
    """The always-false predicate (a provably empty restriction).

    Produced by the normalizer when conjoined ranges contradict
    (``x < 3 AND x > 9``); a scan with it qualifies nothing.
    """

    def evaluate(self, batch: Batch) -> np.ndarray:
        n = len(next(iter(batch.values()))) if batch else 0
        return np.zeros(n, dtype=bool)

    def cache_key(self) -> str:
        return "FALSE"

    def columns(self) -> FrozenSet[str]:
        return frozenset()


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """A reference to a column by name (optionally ``table.column``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant value."""

    value: Value

    def __str__(self) -> str:
        return _format_value(self.value)


def col(name: str) -> ColumnRef:
    """Shorthand constructor for a column reference."""
    return ColumnRef(name)


def lit(value: Value) -> Literal:
    """Shorthand constructor for a literal."""
    return Literal(value)


def _resolve(batch: Batch, column: ColumnRef) -> np.ndarray:
    try:
        return batch[column.name]
    except KeyError:
        raise KeyError(
            f"column {column.name!r} not present in batch "
            f"(have: {sorted(batch)})"
        ) from None


@dataclass(frozen=True, slots=True)
class Comparison(Predicate):
    """``column <op> literal`` with op in ``= <> < <= > >=``."""

    column: ColumnRef
    op: str
    literal: Literal

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        values = _resolve(batch, self.column)
        return _COMPARISON_OPS[self.op](values, self.literal.value)

    def cache_key(self) -> str:
        return f"{self.column} {self.op} {self.literal}"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column.name})

    def bounds(self, column: str) -> Optional[Bounds]:
        if column != self.column.name:
            return None
        v = self.literal.value
        if self.op == "=":
            return Bounds(lo=v, hi=v)
        if self.op in ("<", "<="):
            return Bounds(hi=v, hi_strict=self.op == "<")
        if self.op in (">", ">="):
            return Bounds(lo=v, lo_strict=self.op == ">")
        return None  # <> carries no useful zone-map bound


@dataclass(frozen=True, slots=True)
class ColumnComparison(Predicate):
    """``column <op> column`` (both sides columns of the same batch).

    Used for intra-table conditions like TPC-H Q21's
    ``l_receiptdate > l_commitdate``; cross-table equality is recognized
    by the planner as a join condition instead.
    """

    left: ColumnRef
    op: str
    right: ColumnRef

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise ValueError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        return _COMPARISON_OPS[self.op](
            _resolve(batch, self.left), _resolve(batch, self.right)
        )

    def cache_key(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.left.name, self.right.name})


@dataclass(frozen=True, slots=True)
class Between(Predicate):
    """``column BETWEEN low AND high`` (inclusive both ends, like SQL)."""

    column: ColumnRef
    low: Literal
    high: Literal

    def evaluate(self, batch: Batch) -> np.ndarray:
        values = _resolve(batch, self.column)
        return (values >= self.low.value) & (values <= self.high.value)

    def cache_key(self) -> str:
        return f"{self.column} BETWEEN {self.low} AND {self.high}"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column.name})

    def bounds(self, column: str) -> Optional[Bounds]:
        if column != self.column.name:
            return None
        return Bounds(lo=self.low.value, hi=self.high.value)


@dataclass(frozen=True, slots=True)
class InList(Predicate):
    """``column IN (v1, v2, ...)``."""

    column: ColumnRef
    values: Tuple[Value, ...]

    def evaluate(self, batch: Batch) -> np.ndarray:
        column = _resolve(batch, self.column)
        return np.isin(column, np.asarray(self.values))

    def cache_key(self) -> str:
        rendered = ", ".join(_format_value(v) for v in self.values)
        return f"{self.column} IN ({rendered})"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column.name})

    def bounds(self, column: str) -> Optional[Bounds]:
        if column != self.column.name or not self.values:
            return None
        try:
            return Bounds(lo=min(self.values), hi=max(self.values))
        except TypeError:  # mixed-type lists carry no bound
            return None


@dataclass(frozen=True, slots=True)
class Like(Predicate):
    """``column [NOT] LIKE pattern`` with ``%`` and ``_`` wildcards.

    Prefix patterns (``'PROMO%'``) expose value bounds so zone maps can
    prune on the string prefix, like real engines do.
    """

    column: ColumnRef
    pattern: str
    negated: bool = False

    def evaluate(self, batch: Batch) -> np.ndarray:
        values = _resolve(batch, self.column)
        regex = _like_regex(self.pattern)
        matches = np.array(
            [bool(regex.match(str(v))) for v in values], dtype=bool
        )
        return ~matches if self.negated else matches

    def cache_key(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.column} {keyword} {_format_value(self.pattern)}"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column.name})

    def bounds(self, column: str) -> Optional["Bounds"]:
        if self.negated or column != self.column.name:
            return None
        prefix = _like_literal_prefix(self.pattern)
        if not prefix:
            return None
        # Values matching 'abc%' sort within [ 'abc', 'abc￿' ).
        return Bounds(lo=prefix, hi=prefix + "￿", hi_strict=True)


def _like_regex(pattern: str):
    import re

    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("".join(out) + r"\Z", re.DOTALL)


def _like_literal_prefix(pattern: str) -> str:
    prefix = []
    for ch in pattern:
        if ch in ("%", "_"):
            break
        prefix.append(ch)
    return "".join(prefix)


@dataclass(frozen=True, slots=True)
class IsNull(Predicate):
    """``column IS [NOT] NULL``.

    Null semantics in the storage engine are sentinel-based: each column
    carries an optional validity array; the batch exposes it under the
    pseudo-column name ``<column>__valid``.  Columns without a validity
    array are fully non-null.
    """

    column: ColumnRef
    negated: bool = False

    def evaluate(self, batch: Batch) -> np.ndarray:
        valid = batch.get(f"{self.column.name}__valid")
        if valid is None:
            n = len(_resolve(batch, self.column))
            nulls = np.zeros(n, dtype=bool)
        else:
            nulls = ~valid
        return ~nulls if self.negated else nulls

    def cache_key(self) -> str:
        return f"{self.column} IS {'NOT ' if self.negated else ''}NULL"

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.column.name})


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two or more predicates.

    The cache key sorts the conjuncts' keys so that ``a AND b`` and
    ``b AND a`` (which the optimizer may emit in either order) share a
    cache entry.  This is the one cheap canonicalization the paper's
    string-keyed design admits without an SMT solver.
    """

    operands: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        flattened: List[Predicate] = []
        for op in self.operands:
            if isinstance(op, And):
                flattened.extend(op.operands)
            elif isinstance(op, TruePredicate):
                continue
            else:
                flattened.append(op)
        if len(flattened) < 1:
            flattened = [TruePredicate()]
        object.__setattr__(self, "operands", tuple(flattened))

    def evaluate(self, batch: Batch) -> np.ndarray:
        result = self.operands[0].evaluate(batch)
        for op in self.operands[1:]:
            result = result & op.evaluate(batch)
        return result

    def cache_key(self) -> str:
        keys = sorted(op.cache_key() for op in self.operands)
        return " AND ".join(f"({k})" if " OR " in k else k for k in keys)

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(op.columns() for op in self.operands))

    def bounds(self, column: str) -> Optional[Bounds]:
        result: Optional[Bounds] = None
        for op in self.operands:
            b = op.bounds(column)
            if b is None:
                continue
            if result is None:
                result = b
                continue
            lo, lo_strict = result.lo, result.lo_strict
            if b.lo is not None and (lo is None or b.lo > lo):
                lo, lo_strict = b.lo, b.lo_strict
            elif b.lo is not None and b.lo == lo:
                lo_strict = lo_strict or b.lo_strict
            hi, hi_strict = result.hi, result.hi_strict
            if b.hi is not None and (hi is None or b.hi < hi):
                hi, hi_strict = b.hi, b.hi_strict
            elif b.hi is not None and b.hi == hi:
                hi_strict = hi_strict or b.hi_strict
            result = Bounds(lo, hi, lo_strict, hi_strict)
        return result

    def conjuncts(self) -> List[Predicate]:
        out: List[Predicate] = []
        for op in self.operands:
            out.extend(op.conjuncts())
        return out

    def __hash__(self) -> int:
        return hash(("And", self.operands))


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two or more predicates."""

    operands: Tuple[Predicate, ...]

    def __post_init__(self) -> None:
        flattened: List[Predicate] = []
        for op in self.operands:
            if isinstance(op, Or):
                flattened.extend(op.operands)
            else:
                flattened.append(op)
        object.__setattr__(self, "operands", tuple(flattened))

    def evaluate(self, batch: Batch) -> np.ndarray:
        result = self.operands[0].evaluate(batch)
        for op in self.operands[1:]:
            result = result | op.evaluate(batch)
        return result

    def cache_key(self) -> str:
        keys = sorted(op.cache_key() for op in self.operands)
        return " OR ".join(keys)

    def columns(self) -> FrozenSet[str]:
        return frozenset().union(*(op.columns() for op in self.operands))

    def bounds(self, column: str) -> Optional[Bounds]:
        # A disjunction bounds a column only if *every* branch bounds it;
        # the union of the branch intervals is the implied bound.
        # Strictness is kept conservatively non-strict.
        lo: Value = None
        hi: Value = None
        first = True
        for op in self.operands:
            b = op.bounds(column)
            if b is None:
                return None
            if first:
                lo, hi = b.lo, b.hi
                first = False
                continue
            lo = None if (lo is None or b.lo is None) else min(lo, b.lo)
            hi = None if (hi is None or b.hi is None) else max(hi, b.hi)
        if lo is None and hi is None:
            return None
        return Bounds(lo, hi)

    def __hash__(self) -> int:
        return hash(("Or", self.operands))


@dataclass(frozen=True, slots=True)
class Not(Predicate):
    """Logical negation."""

    operand: Predicate

    def evaluate(self, batch: Batch) -> np.ndarray:
        return ~self.operand.evaluate(batch)

    def cache_key(self) -> str:
        return f"NOT ({self.operand.cache_key()})"

    def columns(self) -> FrozenSet[str]:
        return self.operand.columns()


def conjunction_of(predicates: Iterable[Predicate]) -> Predicate:
    """Combine predicates into a single conjunction.

    Returns :class:`TruePredicate` for an empty input and the predicate
    itself for a single input — the scan path treats all three shapes
    uniformly.
    """
    items = [p for p in predicates if not isinstance(p, TruePredicate)]
    if not items:
        return TruePredicate()
    if len(items) == 1:
        return items[0]
    return And(tuple(items))
