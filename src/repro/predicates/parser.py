"""Recursive-descent parser for filter predicates.

Grammar (standard precedence: OR < AND < NOT < comparison)::

    predicate   := or_expr
    or_expr     := and_expr ( OR and_expr )*
    and_expr    := not_expr ( AND not_expr )*
    not_expr    := NOT not_expr | primary
    primary     := '(' or_expr ')'
                 | column ( cmp_op value
                          | BETWEEN value AND value
                          | [NOT] IN '(' value (',' value)* ')'
                          | IS [NOT] NULL )
    value       := NUMBER | STRING | TRUE | FALSE | NULL

The parser is shared by the SQL front end (WHERE clauses) and by tests
and workload generators that build predicates from text.
"""

from __future__ import annotations

from typing import List, Optional

from .ast import (
    And,
    Between,
    ColumnComparison,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Predicate,
    Value,
)
from .lexer import Token, TokenKind, tokenize

__all__ = ["parse_predicate", "PredicateParseError", "PredicateParser"]


class PredicateParseError(ValueError):
    """Raised when predicate text does not match the grammar."""


def parse_predicate(text: str) -> Predicate:
    """Parse predicate text into a :class:`Predicate` tree.

    Example:
        >>> p = parse_predicate("l_discount = 0.1 and l_quantity >= 40")
        >>> sorted(p.columns())
        ['l_discount', 'l_quantity']
    """
    parser = PredicateParser(tokenize(text))
    predicate = parser.parse_or()
    parser.expect_eof()
    return predicate


class PredicateParser:
    """Token-stream parser; also reused by the SQL parser for WHERE."""

    def __init__(self, tokens: List[Token], start: int = 0) -> None:
        self._tokens = tokens
        self._pos = start

    # -- token helpers -------------------------------------------------------

    @property
    def pos(self) -> int:
        return self._pos

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != TokenKind.EOF:
            self._pos += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == TokenKind.KEYWORD and token.lowered in words:
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise PredicateParseError(
                f"expected {word.upper()!r} at position {self.peek().pos}, "
                f"got {self.peek().text!r}"
            )
        return token

    def accept_punct(self, text: str) -> Optional[Token]:
        token = self.peek()
        if token.kind == TokenKind.PUNCT and token.text == text:
            return self.advance()
        return None

    def expect_punct(self, text: str) -> Token:
        token = self.accept_punct(text)
        if token is None:
            raise PredicateParseError(
                f"expected {text!r} at position {self.peek().pos}, "
                f"got {self.peek().text!r}"
            )
        return token

    def expect_eof(self) -> None:
        if self.peek().kind != TokenKind.EOF:
            raise PredicateParseError(
                f"unexpected trailing input {self.peek().text!r} "
                f"at position {self.peek().pos}"
            )

    # -- grammar ---------------------------------------------------------------

    def parse_or(self) -> Predicate:
        left = self.parse_and()
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return left
        return Or(tuple(operands))

    def parse_and(self) -> Predicate:
        left = self.parse_not()
        operands = [left]
        while self.accept_keyword("and"):
            operands.append(self.parse_not())
        if len(operands) == 1:
            return left
        return And(tuple(operands))

    def parse_not(self) -> Predicate:
        if self.accept_keyword("not"):
            return Not(self.parse_not())
        return self.parse_primary()

    def parse_primary(self) -> Predicate:
        if self.accept_punct("("):
            inner = self.parse_or()
            self.expect_punct(")")
            return inner
        column = self._parse_column()
        token = self.peek()
        if token.kind == TokenKind.OPERATOR:
            op = self.advance().text
            follow = self.peek()
            if follow.kind == TokenKind.IDENT or (
                follow.kind == TokenKind.KEYWORD
                and follow.lowered not in ("true", "false", "null")
            ):
                return ColumnComparison(column, op, self._parse_column())
            return Comparison(column, op, Literal(self._parse_value()))
        if self.accept_keyword("between"):
            low = self._parse_value()
            self.expect_keyword("and")
            high = self._parse_value()
            return Between(column, Literal(low), Literal(high))
        if self.accept_keyword("like"):
            return Like(column, self._parse_like_pattern())
        negated_in = bool(self.accept_keyword("not"))
        if self.accept_keyword("like"):
            return Like(column, self._parse_like_pattern(), negated=True)
        if self.accept_keyword("in"):
            self.expect_punct("(")
            values = [self._parse_value()]
            while self.accept_punct(","):
                values.append(self._parse_value())
            self.expect_punct(")")
            in_pred: Predicate = InList(column, tuple(values))
            return Not(in_pred) if negated_in else in_pred
        if negated_in:
            raise PredicateParseError(
                f"expected IN or LIKE after NOT at position {token.pos}"
            )
        if self.accept_keyword("is"):
            negated = bool(self.accept_keyword("not"))
            self.expect_keyword("null")
            return IsNull(column, negated=negated)
        raise PredicateParseError(
            f"expected comparison after column {column.name!r} "
            f"at position {token.pos}, got {token.text!r}"
        )

    def _parse_like_pattern(self) -> str:
        token = self.advance()
        if token.kind != TokenKind.STRING:
            raise PredicateParseError(
                f"expected a string pattern after LIKE at position {token.pos}"
            )
        return token.text

    def _parse_column(self) -> ColumnRef:
        token = self.peek()
        if token.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
            raise PredicateParseError(
                f"expected column name at position {token.pos}, "
                f"got {token.text!r}"
            )
        self.advance()
        name = token.text
        # Qualified reference ``table.column`` — keep the column part; the
        # engine resolves columns per table.
        if self.accept_punct("."):
            part = self.peek()
            if part.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise PredicateParseError(
                    f"expected column after '.' at position {part.pos}"
                )
            self.advance()
            name = part.text
        return ColumnRef(name)

    def _parse_value(self) -> Value:
        token = self.advance()
        if token.kind == TokenKind.NUMBER:
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == TokenKind.STRING:
            return token.text
        if token.kind == TokenKind.KEYWORD:
            if token.lowered == "true":
                return True
            if token.lowered == "false":
                return False
            if token.lowered == "null":
                return None
        if token.kind == TokenKind.PUNCT and token.text == "-":
            follow = self.advance()
            if follow.kind == TokenKind.NUMBER:
                text = follow.text
                return -(float(text) if "." in text else int(text))
        raise PredicateParseError(
            f"expected literal value at position {token.pos}, "
            f"got {token.text!r}"
        )
