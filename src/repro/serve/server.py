"""The multi-client serving front end (DESIGN.md §12).

:class:`QueryServer` runs many clients' statements concurrently over
one shared :class:`~repro.engine.QueryEngine`:

* a bounded worker pool executes statements pulled from a FIFO queue;
* :class:`~repro.serve.admission.AdmissionController` bounds each
  tenant's outstanding work (max in-flight + queue depth) and counts
  rejections;
* requests carry deadlines, re-checked at dequeue — a statement whose
  latency budget lapsed while queued is failed, not executed late;
* SELECTs run concurrently under a shared read lock while DML
  (insert/update/delete/vacuum/analyze) takes the exclusive side —
  table mutation and the MVCC single-writer model stay serialized
  while the read path scales out;
* :meth:`drain` / :meth:`shutdown` stop intake first, then let queued
  work finish (or abandon it), then join the workers.

Every terminal outcome — success, engine error, rejection, deadline
miss — resolves the client's future with a
:class:`~repro.serve.envelope.Response`; nothing ever raises across
the serving boundary, and workers cannot die to an engine exception.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from typing import Deque, List, Optional

from ..obs import lockwitness
from .admission import AdmissionController
from .envelope import Request, RequestStatus, Response

__all__ = ["QueryServer", "ReadWriteLock"]

# Statements whose first keyword mutates table or catalog state take
# the write lock; everything else shares the read side.
_WRITE_KEYWORDS = frozenset({"insert", "update", "delete", "vacuum", "analyze"})


class ReadWriteLock:
    """A writer-preferring shared/exclusive lock.

    Many readers may hold the lock together; a writer waits for them to
    drain and excludes everyone.  Pending writers block *new* readers
    (preference), so a DML statement is not starved by a steady SELECT
    stream.  Not re-entrant on either side.
    """

    def __init__(self) -> None:
        self._cv = lockwitness.named_condition("ReadWriteLock._cv")
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._cv:
            while self._writer_active or self._writers_waiting:
                self._cv.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cv:
            self._readers -= 1
            if self._readers == 0:
                self._cv.notify_all()

    def acquire_write(self) -> None:
        with self._cv:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cv.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cv:
            self._writer_active = False
            self._cv.notify_all()


class _Pending:
    """One admitted request waiting in the server's queue."""

    __slots__ = ("request", "future", "enqueued_at")

    def __init__(self, request: Request, future: Future, enqueued_at: float) -> None:
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at


class QueryServer:
    """Concurrent statement execution over one shared engine.

    Args:
        engine: the shared :class:`~repro.engine.QueryEngine`.  Engines
            with a tracer attached are refused — the span tree is
            mutated by one coordinating thread by design, and
            concurrent queries would interleave their traces.
        max_workers: worker threads executing statements (the global
            concurrency bound; per-tenant bounds come from
            ``admission``).
        admission: per-tenant limits; defaults to an
            :class:`AdmissionController` sized so a single default
            tenant can keep the whole pool busy.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; the
            server registers request/rejection/timeout counters
            (per-tenant labels created on first sight), queue/latency
            histograms, and occupancy gauges.

    Locking discipline (DESIGN.md §12): the queue and lifecycle flags
    are guarded by ``_cv``'s lock; admission state by the controller's
    own lock; engine-level shared state by the read/write statement
    lock; everything below (cache, storage, counters) by the layers'
    internal locks.  Mutation outside those regions is rejected by
    linter rule RP007.
    """

    def __init__(
        self,
        engine,
        max_workers: int = 8,
        admission: Optional[AdmissionController] = None,
        metrics=None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if getattr(engine, "tracer", None) is not None:
            raise ValueError(
                "QueryServer requires an engine without a tracer: the span "
                "tree is single-coordinator by design (obs/trace.py); "
                "attach per-query tracing via explain_analyze instead"
            )
        self.engine = engine
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(max_in_flight=max_workers, max_queued=4 * max_workers)
        )
        self._cv = lockwitness.named_condition("QueryServer._cv")
        self._queue: Deque[_Pending] = deque()
        self._accepting = True
        self._stopping = False
        self._active = 0  # statements currently executing (all tenants)
        self._statement_lock = ReadWriteLock()
        self._metrics = metrics
        self._m_latency = None
        if metrics is not None:
            self._register_metrics(metrics)
        self._workers: List[threading.Thread] = [
            threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- observability ---------------------------------------------------------

    def _register_metrics(self, registry) -> None:
        """Caller is __init__ (single-threaded); instruments themselves
        are internally locked."""
        self._m_latency = registry.histogram(
            "repro_serving_latency_seconds",
            "Submission-to-completion latency per request",
        )
        self._m_queue_wait = registry.histogram(
            "repro_serving_queue_seconds", "Queue wait before execution"
        )
        registry.gauge(
            "repro_serving_queue_depth",
            "Requests waiting in the server queue",
            fn=lambda: len(self._queue),
        )
        registry.gauge(
            "repro_serving_active",
            "Statements currently executing",
            fn=lambda: self._active,
        )
        registry.gauge(
            "repro_serving_rejected",
            "Requests rejected by admission control (all tenants)",
            fn=lambda: self.admission.total_rejected,
        )

    def _tenant_counter(self, name: str, help_text: str, tenant: str):
        if self._metrics is None:
            return None
        return self._metrics.counter(name, help_text, labels={"tenant": tenant})

    def _count_terminal(self, response: Response) -> None:
        if self._metrics is None:
            return
        counter = self._tenant_counter(
            f"repro_serving_{response.status.value}_total",
            f"Requests finishing with status {response.status.value}",
            response.request.tenant,
        )
        counter.inc()
        if self._m_latency is not None and response.status is not RequestStatus.REJECTED:
            self._m_latency.observe(response.total_seconds)

    # -- intake ----------------------------------------------------------------

    def submit(self, request: Request) -> "Future[Response]":
        """Queue one request; returns a future resolving to a Response.

        Rejections (admission control, closed server) resolve the
        future immediately — the caller always gets a Response, never
        an exception, and never blocks on a full tenant.
        """
        future: "Future[Response]" = Future()
        now = time.monotonic()
        with self._cv:
            accepting = self._accepting
            queue_depth = len(self._queue)
        if not accepting:
            response = Response(
                request,
                RequestStatus.REJECTED,
                error="server is not accepting requests",
                shed_reason="server_closed",
            )
            self._count_terminal(response)
            future.set_result(response)
            return future
        shed_reason = self.admission.should_shed(
            request.tenant,
            request.deadline_seconds,
            queue_depth,
            len(self._workers),
        )
        if shed_reason is not None:
            response = Response(
                request,
                RequestStatus.REJECTED,
                error=f"shed before admission ({shed_reason})",
                shed_reason=shed_reason,
            )
            self._count_terminal(response)
            future.set_result(response)
            return future
        if not self.admission.try_admit(request.tenant, request.request_id):
            response = Response(
                request,
                RequestStatus.REJECTED,
                error=f"tenant {request.tenant!r} is over its admission limits",
                shed_reason="tenant_limit",
            )
            self._count_terminal(response)
            future.set_result(response)
            return future
        pending = _Pending(request, future, now)
        with self._cv:
            self._queue.append(pending)
            self._cv.notify()
        return future

    def execute(self, sql: str, tenant: str = "default") -> Response:
        """Submit one statement and wait for its response (convenience)."""
        return self.submit(Request(sql, tenant=tenant)).result()

    # -- the worker side -------------------------------------------------------

    def _next_pending(self) -> Optional[_Pending]:
        """Pop the next dispatchable request, handling expiries in place.

        Runs on a worker thread.  Scans the FIFO for the first request
        whose tenant has execution capacity; expired requests are
        completed as TIMED_OUT during the scan.  Returns None when the
        server is stopping and the queue is empty (worker exits), or
        after completing an expiry (so the worker re-enters and expiry
        responses are never delayed behind an execution).
        """
        with self._cv:
            while True:
                now = time.monotonic()
                for index, pending in enumerate(self._queue):
                    request = pending.request
                    deadline = request.deadline_seconds
                    if (
                        deadline is not None
                        and now - pending.enqueued_at > deadline
                    ):
                        del self._queue[index]
                        self.admission.on_abandon(request.tenant, request.request_id)
                        response = Response(
                            request,
                            RequestStatus.TIMED_OUT,
                            error=(
                                f"deadline of {deadline}s passed after "
                                f"{now - pending.enqueued_at:.3f}s in queue"
                            ),
                            queued_seconds=now - pending.enqueued_at,
                            total_seconds=now - pending.enqueued_at,
                        )
                        self._count_terminal(response)
                        pending.future.set_result(response)
                        self._cv.notify_all()
                        break  # rescan: indices shifted
                    if self.admission.try_start(request.tenant, request.request_id):
                        del self._queue[index]
                        self._active += 1
                        return pending
                else:
                    if self._stopping and not self._queue:
                        return None
                    self._cv.wait(timeout=0.05)

    def _worker_loop(self) -> None:
        while True:
            pending = self._next_pending()
            if pending is None:
                return
            self._run_statement(pending)

    def _run_statement(self, pending: _Pending) -> None:
        """Execute one dequeued statement and resolve its future.

        Runs on a worker thread; engine/table state is guarded by the
        statement read/write lock, everything below by the layers'
        internal locks (caller holds no other lock).
        """
        request = pending.request
        started = time.monotonic()
        queued_seconds = started - pending.enqueued_at
        exclusive = _is_write_statement(request.sql)
        if exclusive:
            self._statement_lock.acquire_write()
        else:
            self._statement_lock.acquire_read()
        try:
            result = self.engine.execute(request.sql)
            status, error = RequestStatus.OK, None
        except Exception as exc:  # noqa: BLE001 - the boundary materializes errors
            result = None
            status, error = RequestStatus.ERROR, f"{type(exc).__name__}: {exc}"
        finally:
            if exclusive:
                self._statement_lock.release_write()
            else:
                self._statement_lock.release_read()
        now = time.monotonic()
        response = Response(
            request,
            status,
            result=result,
            error=error,
            queued_seconds=queued_seconds,
            total_seconds=now - pending.enqueued_at,
        )
        self.admission.on_finish(request.tenant)
        self.admission.on_complete(request.tenant)
        self.admission.observe_service_time(now - started)
        if self._m_latency is not None:
            self._m_queue_wait.observe(queued_seconds)
        self._count_terminal(response)
        with self._cv:
            self._active -= 1
            self._cv.notify_all()
        pending.future.set_result(response)

    # -- lifecycle -------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def active_statements(self) -> int:
        return self._active

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until queued + executing work hits zero.

        Intake stays open (a drain is a checkpoint, not a shutdown);
        returns False if ``timeout`` elapsed first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while self._queue or self._active:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(timeout=remaining)
            return True

    def shutdown(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop intake, finish (or abandon) queued work, join workers.

        With ``drain=True`` (graceful) queued statements still execute;
        with ``drain=False`` they are completed as REJECTED without
        executing.  Idempotent.
        """
        with self._cv:
            self._accepting = False
            abandoned: List[_Pending] = []
            if not drain:
                abandoned = list(self._queue)
                self._queue.clear()
            self._cv.notify_all()
        for pending in abandoned:
            self.admission.on_abandon(
                pending.request.tenant, pending.request.request_id
            )
            response = Response(
                pending.request,
                RequestStatus.REJECTED,
                error="server shut down before execution",
                shed_reason="server_closed",
            )
            self._count_terminal(response)
            pending.future.set_result(response)
        if drain:
            self.drain(timeout=timeout)
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _is_write_statement(sql: str) -> bool:
    """True when the statement's first keyword mutates shared state."""
    stripped = sql.lstrip()
    first = stripped.split(None, 1)[0].lower() if stripped else ""
    return first in _WRITE_KEYWORDS
