"""Cluster heartbeat monitoring and node failover (DESIGN.md §13).

A :class:`ClusterHealthMonitor` probes every node of a
:class:`~repro.cluster.ClusterCaches` on a fixed cadence and drives the
failure-survival state machine:

``UP → SUSPECT → DOWN → RESTORING → UP``

* A :meth:`~repro.core.cache.PredicateCache.ping` that raises
  :class:`~repro.faults.NodeDownError` is one missed heartbeat; after
  ``suspect_after`` consecutive misses the node is SUSPECT, after
  ``down_after`` it is declared DOWN.
* Declaring a node DOWN calls ``cluster.mark_down`` — from then on the
  router returns ``None`` for the node's slices and scans degrade to
  cache-off (availability over freshness; correctness never depended on
  the cache).
* With ``auto_restore`` (the default) the monitor immediately replaces
  the dead node via ``cluster.fail_node``: the replacement hydrates its
  slice share warm from the attached store and the router resumes
  cache-on scans.  Restoration counts a *failover*.
* With a ``memory_budget_bytes`` the monitor also acts as the memory
  pressure valve: whenever the cluster's payload exceeds the budget it
  trims LRU entries back toward it (:meth:`ClusterCaches.trim_to_bytes`)
  instead of letting the cache grow into an OOM kill.

The monitor is deterministic-by-default: tests drive :meth:`tick`
directly; :meth:`start`/:meth:`stop` wrap the same tick in a daemon
thread for live serving.  Every decision is counted and exported as
``repro_resilience_*`` series via :meth:`register_metrics`.
"""

from __future__ import annotations

import enum
import threading
from typing import Dict, List, Optional

from ..faults.errors import NodeDownError
from ..obs import lockwitness

__all__ = ["ClusterHealthMonitor", "NodeState"]


class NodeState(enum.IntEnum):
    """Liveness verdict for one cluster node (gauge value = member value)."""

    UP = 0
    SUSPECT = 1
    DOWN = 2
    RESTORING = 3


class ClusterHealthMonitor:
    """Heartbeat monitor + failover driver over a cache cluster.

    Args:
        cluster: a :class:`~repro.cluster.ClusterCaches` (or any object
            with ``node``/``num_nodes``/``mark_down``/``fail_node``).
        suspect_after: consecutive missed heartbeats before SUSPECT.
        down_after: consecutive missed heartbeats before DOWN (must be
            >= ``suspect_after``).
        auto_restore: replace DOWN nodes immediately via
            ``cluster.fail_node`` (store-backed warm restore).
        memory_budget_bytes: cluster-wide payload budget; exceeded bytes
            are trimmed each tick (``None`` disables the valve).
        interval_seconds: probe cadence of the background thread
            (:meth:`start`); :meth:`tick` ignores it.

    Concurrency: one internal lock serializes ticks (manual and
    threaded), so state transitions and counters are consistent even
    when a test calls :meth:`tick` while the daemon runs.  The cluster
    mutations it performs (``mark_down``/``fail_node``) publish by
    reference swap and are safe under concurrent scans.
    """

    def __init__(
        self,
        cluster,
        suspect_after: int = 1,
        down_after: int = 3,
        auto_restore: bool = True,
        memory_budget_bytes: Optional[int] = None,
        interval_seconds: float = 0.02,
    ) -> None:
        if suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if down_after < suspect_after:
            raise ValueError("down_after must be >= suspect_after")
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        self.cluster = cluster
        self.suspect_after = suspect_after
        self.down_after = down_after
        self.auto_restore = auto_restore
        self.memory_budget_bytes = memory_budget_bytes
        self.interval_seconds = interval_seconds
        self._lock = lockwitness.named_lock("ClusterHealthMonitor._lock")
        self._missed: Dict[int, int] = {}
        self._states: Dict[int, NodeState] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # Monotonic counters (public: scrape-time metrics read these).
        self.ticks = 0
        self.ping_failures = 0
        self.nodes_marked_down = 0
        self.failovers = 0
        self.memory_trims = 0
        self.bytes_trimmed = 0

    # -- the heartbeat round ---------------------------------------------------

    def tick(self) -> List[int]:
        """Run one probe round; returns node ids restored this round."""
        with self._lock:
            return self._tick_locked()

    def _tick_locked(self) -> List[int]:
        """Caller holds ``_lock``."""
        self.ticks += 1
        restored: List[int] = []
        for node_id in range(self.cluster.num_nodes):
            if self._probe(node_id):
                self._missed[node_id] = 0
                self._states[node_id] = NodeState.UP
                continue
            missed = self._missed.get(node_id, 0) + 1
            self._missed[node_id] = missed
            if missed >= self.down_after:
                if self._states.get(node_id) is not NodeState.DOWN:
                    self.cluster.mark_down(node_id)
                    self.nodes_marked_down += 1
                self._states[node_id] = NodeState.DOWN
                if self.auto_restore:
                    self._restore(node_id)
                    restored.append(node_id)
            elif missed >= self.suspect_after:
                self._states[node_id] = NodeState.SUSPECT
        self._trim_memory()
        return restored

    def _probe(self, node_id: int) -> bool:
        """One heartbeat; a dead node's raise is a missed beat.

        Caller holds ``_lock``.
        """
        try:
            return bool(self.cluster.node(node_id).ping())
        except NodeDownError:
            self.ping_failures += 1
            return False

    def _restore(self, node_id: int) -> None:
        """Replace a DOWN node (warm when a store is attached).

        Caller holds ``_lock``.
        """
        self._states[node_id] = NodeState.RESTORING
        self.cluster.fail_node(node_id)
        self.failovers += 1
        self._missed[node_id] = 0
        self._states[node_id] = NodeState.UP

    def _trim_memory(self) -> None:
        """Memory-pressure valve: trim toward the byte budget.

        Caller holds ``_lock``.
        """
        budget = self.memory_budget_bytes
        if budget is None:
            return
        if self.cluster.total_nbytes <= budget:
            return
        released = self.cluster.trim_to_bytes(budget)
        if released > 0:
            self.memory_trims += 1
            self.bytes_trimmed += released

    # -- introspection ---------------------------------------------------------

    def node_state(self, node_id: int) -> NodeState:
        with self._lock:
            return self._states.get(node_id, NodeState.UP)

    def node_states(self) -> Dict[int, NodeState]:
        """Point-in-time states for every current node id."""
        with self._lock:
            return {
                node_id: self._states.get(node_id, NodeState.UP)
                for node_id in range(self.cluster.num_nodes)
            }

    # -- background probing ----------------------------------------------------

    def start(self) -> "ClusterHealthMonitor":
        """Probe on a daemon thread every ``interval_seconds``."""
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="health-monitor", daemon=True
            )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self.tick()

    def stop(self) -> None:
        """Stop the daemon thread (joins it); manual ticks still work."""
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)

    def __enter__(self) -> "ClusterHealthMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- observability ---------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Publish the ``repro_resilience_*`` failover family.

        Node-state gauges are registered for the node ids present at
        registration time; ids removed by a later resize report UP(0).
        """
        for node_id in range(self.cluster.num_nodes):
            registry.gauge(
                "repro_resilience_node_state",
                "Node liveness (0=up, 1=suspect, 2=down, 3=restoring)",
                labels={"node": str(node_id)},
                fn=lambda n=node_id: int(self._safe_state(n)),
            )
        registry.counter(
            "repro_resilience_ping_failures_total",
            "Heartbeat probes answered by a dead node",
            fn=lambda: self.ping_failures,
        )
        registry.counter(
            "repro_resilience_nodes_marked_down_total",
            "Nodes declared dead after missed heartbeats",
            fn=lambda: self.nodes_marked_down,
        )
        registry.counter(
            "repro_resilience_failovers_total",
            "Dead nodes replaced by warm-restored successors",
            fn=lambda: self.failovers,
        )
        registry.counter(
            "repro_resilience_memory_trims_total",
            "Memory-pressure trims toward the byte budget",
            fn=lambda: self.memory_trims,
        )
        registry.counter(
            "repro_resilience_bytes_trimmed_total",
            "Payload bytes released by memory-pressure trims",
            fn=lambda: self.bytes_trimmed,
        )
        if hasattr(self.cluster, "down_route_fallbacks"):
            registry.counter(
                "repro_resilience_down_route_fallbacks_total",
                "Slices routed cache-off because their node was down",
                fn=lambda: self.cluster.down_route_fallbacks,
            )

    def _safe_state(self, node_id: int) -> NodeState:
        if node_id >= self.cluster.num_nodes:
            return NodeState.UP
        return self.node_state(node_id)
