"""Per-tenant admission control for the serving layer (DESIGN.md §12).

Cloud warehouses bound each tenant's concurrency: a tenant may hold at
most ``max_in_flight`` executing statements plus ``max_queued`` waiting
ones; anything beyond is rejected at submission ("503, retry later")
instead of growing the queue without bound.  Rejections are counted
per tenant — load shedding must be observable, not silent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["AdmissionController", "TenantState"]


@dataclass
class TenantState:
    """Live occupancy + monotonic counters of one tenant.

    Mutated only by :class:`AdmissionController` under its lock
    (caller holds ``_lock``); snapshots handed out by
    :meth:`AdmissionController.tenant_stats` are copies.
    """

    queued: int = 0
    in_flight: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0

    @property
    def outstanding(self) -> int:
        return self.queued + self.in_flight


class AdmissionController:
    """Bounds queued + in-flight requests per tenant.

    Args:
        max_in_flight: concurrently *executing* statements per tenant.
        max_queued: statements per tenant allowed to wait beyond that.

    The request lifecycle drives three transitions, all serialized on
    one internal lock: :meth:`try_admit` (queued++, or reject),
    :meth:`try_start` (queued → in_flight, refused at the per-tenant
    execution cap), :meth:`on_finish` (in_flight--).  A rejected
    request touches nothing but the rejection counter.
    """

    def __init__(self, max_in_flight: int = 4, max_queued: int = 16) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.max_in_flight = max_in_flight
        self.max_queued = max_queued
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}

    def _state(self, tenant: str) -> TenantState:
        """Caller holds ``_lock``."""
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState()
            self._tenants[tenant] = state
        return state

    def try_admit(self, tenant: str) -> bool:
        """Admit one request into the tenant's queue, or reject it.

        A tenant is full when its outstanding requests (executing plus
        waiting) have reached ``max_in_flight + max_queued``; below
        that, the request is counted as queued (the server moves it to
        in-flight at dispatch).
        """
        with self._lock:
            state = self._state(tenant)
            if state.outstanding >= self.max_in_flight + self.max_queued:
                state.rejected += 1
                return False
            state.queued += 1
            state.admitted += 1
            return True

    def try_start(self, tenant: str) -> bool:
        """Atomically move one queued request to in-flight.

        Refuses when the tenant is already executing ``max_in_flight``
        statements — the server leaves the request queued and tries the
        next tenant's work (per-tenant concurrency isolation: one noisy
        tenant cannot occupy the whole worker pool).
        """
        with self._lock:
            state = self._state(tenant)
            if state.in_flight >= self.max_in_flight:
                return False
            state.queued -= 1
            state.in_flight += 1
            return True

    def on_finish(self, tenant: str) -> None:
        """An executing request reached a terminal state."""
        with self._lock:
            self._state(tenant).in_flight -= 1

    def on_abandon(self, tenant: str) -> None:
        """A queued request died without executing (timeout/shutdown)."""
        with self._lock:
            state = self._state(tenant)
            state.queued -= 1
            state.completed += 1

    def on_complete(self, tenant: str) -> None:
        """Count one terminal response (any status but REJECTED)."""
        with self._lock:
            self._state(tenant).completed += 1

    # -- introspection ---------------------------------------------------------

    def tenant_stats(self, tenant: str) -> TenantState:
        """A point-in-time copy of one tenant's state."""
        with self._lock:
            state = self._state(tenant)
            return TenantState(**vars(state))

    def tenants(self) -> Dict[str, TenantState]:
        """Point-in-time copies of every tenant's state."""
        with self._lock:
            return {
                name: TenantState(**vars(state))
                for name, state in self._tenants.items()
            }

    @property
    def total_rejected(self) -> int:
        with self._lock:
            return sum(s.rejected for s in self._tenants.values())

    @property
    def total_outstanding(self) -> int:
        with self._lock:
            return sum(s.outstanding for s in self._tenants.values())
