"""Per-tenant admission control and overload shedding (DESIGN.md §12–§13).

Cloud warehouses bound each tenant's concurrency: a tenant may hold at
most ``max_in_flight`` executing statements plus ``max_queued`` waiting
ones; anything beyond is rejected at submission ("503, retry later")
instead of growing the queue without bound.  Rejections are counted
per tenant — load shedding must be observable, not silent.

PR 8 adds *adaptive* overload control on top of the static caps:

* **Queue-depth shedding** — when the server's global queue reaches
  ``shed_queue_depth``, new work is rejected before admission so the
  backlog stays bounded.  ``priority_tenants`` ride out the pressure:
  they are only shed at twice the threshold.
* **Deadline-aware shedding** — an EWMA of observed service times
  (``observe_service_time``) estimates how long a request would wait
  behind the current queue; when the estimate already exceeds the
  request's deadline, the request is shed immediately rather than
  admitted just to time out at dequeue.
* **Idempotent release** — queued requests are tracked by request id,
  so a request that times out at dequeue *and* is abandoned by the
  client releases its slot exactly once.

Every shed is counted by reason (``SHED_REASONS``) for the
``repro_resilience_*`` metric family.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from ..obs import lockwitness

__all__ = ["AdmissionController", "TenantState", "SHED_REASONS"]

#: Stable shed-reason vocabulary (metric label values; never reorder).
SHED_REASONS = ("queue_full", "deadline_unmeetable", "tenant_limit")


@dataclass
class TenantState:
    """Live occupancy + monotonic counters of one tenant.

    Mutated only by :class:`AdmissionController` under its lock
    (caller holds ``_lock``); snapshots handed out by
    :meth:`AdmissionController.tenant_stats` are copies.
    """

    queued: int = 0
    in_flight: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0

    @property
    def outstanding(self) -> int:
        return self.queued + self.in_flight


class AdmissionController:
    """Bounds queued + in-flight requests per tenant, sheds overload.

    Args:
        max_in_flight: concurrently *executing* statements per tenant.
        max_queued: statements per tenant allowed to wait beyond that.
        shed_queue_depth: global server-queue depth at which new work is
            shed (``None`` disables queue-depth shedding).  Priority
            tenants are shed only at twice this threshold.
        priority_tenants: tenants whose work survives queue-pressure
            shedding longest (hot tenants per the ROADMAP).
        service_time_alpha: EWMA smoothing factor for observed service
            times (higher = faster adaptation).

    The request lifecycle drives three transitions, all serialized on
    one internal lock: :meth:`try_admit` (queued++, or reject),
    :meth:`try_start` (queued → in_flight, refused at the per-tenant
    execution cap), :meth:`on_finish` (in_flight--).  A rejected
    request touches nothing but the rejection counters.
    """

    def __init__(
        self,
        max_in_flight: int = 4,
        max_queued: int = 16,
        shed_queue_depth: Optional[int] = None,
        priority_tenants: Iterable[str] = (),
        service_time_alpha: float = 0.2,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if shed_queue_depth is not None and shed_queue_depth < 1:
            raise ValueError("shed_queue_depth must be >= 1 or None")
        if not 0.0 < service_time_alpha <= 1.0:
            raise ValueError("service_time_alpha must be in (0, 1]")
        self.max_in_flight = max_in_flight
        self.max_queued = max_queued
        self.shed_queue_depth = shed_queue_depth
        self.priority_tenants: FrozenSet[str] = frozenset(priority_tenants)
        self.service_time_alpha = service_time_alpha
        self._lock = lockwitness.named_lock("AdmissionController._lock")
        self._tenants: Dict[str, TenantState] = {}
        self._queued_ids: Dict[int, str] = {}
        self._sheds: Dict[str, int] = {reason: 0 for reason in SHED_REASONS}
        self._service_time_ewma: Optional[float] = None

    def _state(self, tenant: str) -> TenantState:
        """Caller holds ``_lock``."""
        state = self._tenants.get(tenant)
        if state is None:
            state = TenantState()
            self._tenants[tenant] = state
        return state

    # -- overload shedding -----------------------------------------------------

    def observe_service_time(self, seconds: float) -> None:
        """Feed one completed request's service time into the EWMA."""
        if seconds < 0:
            return
        with self._lock:
            if self._service_time_ewma is None:
                self._service_time_ewma = seconds
            else:
                alpha = self.service_time_alpha
                self._service_time_ewma = (
                    alpha * seconds + (1.0 - alpha) * self._service_time_ewma
                )

    def estimated_wait(self, queue_depth: int, workers: int) -> Optional[float]:
        """Estimated queue wait + service time at the given backlog.

        ``None`` until at least one service time has been observed
        (never shed on a guess).
        """
        with self._lock:
            est = self._service_time_ewma
        if est is None:
            return None
        return (queue_depth / max(1, workers)) * est + est

    def should_shed(
        self,
        tenant: str,
        deadline_seconds: Optional[float],
        queue_depth: int,
        workers: int,
    ) -> Optional[str]:
        """Decide whether to shed a request *before* admission.

        Returns the shed reason (an element of :data:`SHED_REASONS`)
        and counts it, or ``None`` to proceed to :meth:`try_admit`.
        """
        depth_cap = self.shed_queue_depth
        if depth_cap is not None:
            if tenant in self.priority_tenants:
                depth_cap *= 2
            if queue_depth >= depth_cap:
                self._count_shed("queue_full", tenant)
                return "queue_full"
        if deadline_seconds is not None:
            wait = self.estimated_wait(queue_depth, workers)
            if wait is not None and wait > deadline_seconds:
                self._count_shed("deadline_unmeetable", tenant)
                return "deadline_unmeetable"
        return None

    def _count_shed(self, reason: str, tenant: str) -> None:
        with self._lock:
            self._sheds[reason] += 1
            self._state(tenant).rejected += 1

    def sheds(self) -> Dict[str, int]:
        """Point-in-time shed counts per reason (all reasons present)."""
        with self._lock:
            return dict(self._sheds)

    @property
    def total_sheds(self) -> int:
        with self._lock:
            return sum(self._sheds.values())

    # -- request lifecycle -----------------------------------------------------

    def try_admit(self, tenant: str, request_id: Optional[int] = None) -> bool:
        """Admit one request into the tenant's queue, or reject it.

        A tenant is full when its outstanding requests (executing plus
        waiting) have reached ``max_in_flight + max_queued``; below
        that, the request is counted as queued (the server moves it to
        in-flight at dispatch).  When ``request_id`` is given the queue
        slot is tracked by id so later release is idempotent.
        """
        with self._lock:
            state = self._state(tenant)
            if state.outstanding >= self.max_in_flight + self.max_queued:
                state.rejected += 1
                self._sheds["tenant_limit"] += 1
                return False
            state.queued += 1
            state.admitted += 1
            if request_id is not None:
                self._queued_ids[request_id] = tenant
            return True

    def try_start(self, tenant: str, request_id: Optional[int] = None) -> bool:
        """Atomically move one queued request to in-flight.

        Refuses when the tenant is already executing ``max_in_flight``
        statements — the server leaves the request queued and tries the
        next tenant's work (per-tenant concurrency isolation: one noisy
        tenant cannot occupy the whole worker pool).
        """
        with self._lock:
            state = self._state(tenant)
            if state.in_flight >= self.max_in_flight:
                return False
            state.queued -= 1
            state.in_flight += 1
            if request_id is not None:
                self._queued_ids.pop(request_id, None)
            return True

    def on_finish(self, tenant: str) -> None:
        """An executing request reached a terminal state."""
        with self._lock:
            self._state(tenant).in_flight -= 1

    def on_abandon(self, tenant: str, request_id: Optional[int] = None) -> None:
        """A queued request died without executing (timeout/shutdown).

        Idempotent per request id: the slot is released only if the id
        is still registered as queued, so a request that times out at
        dequeue *and* is abandoned by the client cannot double-release
        (ISSUE 8 satellite).  Calls without an id keep the legacy
        unconditional release.
        """
        with self._lock:
            if request_id is not None:
                if self._queued_ids.pop(request_id, None) is None:
                    return
            state = self._state(tenant)
            state.queued -= 1
            state.completed += 1

    def on_complete(self, tenant: str) -> None:
        """Count one terminal response (any status but REJECTED)."""
        with self._lock:
            self._state(tenant).completed += 1

    # -- introspection ---------------------------------------------------------

    def tenant_stats(self, tenant: str) -> TenantState:
        """A point-in-time copy of one tenant's state."""
        with self._lock:
            state = self._state(tenant)
            return TenantState(**vars(state))

    def tenants(self) -> Dict[str, TenantState]:
        """Point-in-time copies of every tenant's state."""
        with self._lock:
            return {
                name: TenantState(**vars(state))
                for name, state in self._tenants.items()
            }

    @property
    def total_rejected(self) -> int:
        with self._lock:
            return sum(s.rejected for s in self._tenants.values())

    @property
    def total_outstanding(self) -> int:
        with self._lock:
            return sum(s.outstanding for s in self._tenants.values())

    def register_metrics(self, registry) -> None:
        """Publish shed counters on a :class:`MetricsRegistry`.

        One ``repro_resilience_sheds_total`` series per reason in
        :data:`SHED_REASONS` — the label set is fixed at registration
        so scrapes are stable from the first request.
        """
        for reason in SHED_REASONS:
            registry.counter(
                "repro_resilience_sheds_total",
                "Requests shed before admission, by reason.",
                labels={"reason": reason},
                fn=lambda r=reason: self.sheds()[r],
            )
        registry.gauge(
            "repro_resilience_service_time_ewma_seconds",
            "EWMA of observed request service times feeding the "
            "deadline-aware shed decision.",
            fn=lambda: self._service_time_ewma or 0.0,
        )
