"""Crash-restart drills: kill the cache mid-write, recover it warm.

The paper's warm-start story (§4.2.1) only matters if it survives the
ugly cases: a process that dies *while* rotating a snapshot or *while*
appending to the journal.  :class:`RecoveryOrchestrator` stages exactly
those crashes against a live engine — reusing the
:class:`~repro.faults.FaultInjector` crash points inside
:class:`~repro.persist.CacheStore` — and then performs the restart:

1. **crash** — a one-shot scheduled injector tears the next snapshot
   rotation (:meth:`crash_mid_snapshot`) or journal append
   (:meth:`crash_mid_journal`), leaving the directory exactly as a
   killed process would (partial temp file / torn journal tail).
2. **restart** — the old cache is detached (a dead process stops
   journaling), a fresh :class:`~repro.persist.CacheStore` re-reads the
   directory (snapshot + journal replay + catalog revalidation), a
   replacement cache hydrates warm from it, and the engine is swapped
   over by reference — all while the serving layer keeps executing.
3. **report** — a :class:`RecoveryReport` records recovery time,
   journal replay volume, and *warm-hit retention*: the fraction of
   pre-crash cache keys that survived into the restarted cache.

Correctness never rides on any of this (a lost entry is a cold scan,
not a wrong answer); the drills exist to bound the performance cliff
and are gated by ``benchmarks/perf/bench_resilience.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional, Set

from ..core.keys import ScanKey
from ..faults.injector import FaultInjector
from ..persist.store import CacheStore

__all__ = ["RecoveryOrchestrator", "RecoveryReport"]

#: Synthetic key journalled to trigger a deterministic mid-append crash
#: (its digest matches no live entry, so replay ignores it).
_DRILL_KEY = ScanKey("__recovery_drill__", "tear-here")


@dataclass
class RecoveryReport:
    """Outcome of one crash-restart drill."""

    #: Which crash preceded the restart ("mid_snapshot", "mid_journal",
    #: or "clean" for a plain restart drill).
    crash_kind: str
    #: Whether the staged crash actually tore a write (False means the
    #: store had nothing to write at the crash point).
    torn_write: bool
    #: Distinct cache keys live immediately before the restart.
    keys_before: int
    #: Distinct cache keys in the restarted (hydrated) cache.
    keys_restored: int
    #: |restored ∩ before| / |before| — 1.0 for an empty pre-crash cache.
    warm_hit_retention: float
    #: Entries installed into the replacement cache(s) at hydration.
    warm_restores: int
    #: Journal events replayed during the restart's recovery load(s).
    journal_replayed: int
    #: Restored entries/states dropped by catalog revalidation.
    stale_dropped: int
    #: Sections/records dropped by checksum or framing damage.
    corrupt_sections: int
    #: Wall-clock seconds spent in the restart's recovery load(s).
    recovery_seconds: float


class RecoveryOrchestrator:
    """Stages cache crashes and drives warm restarts on a live engine.

    Args:
        engine: the serving :class:`~repro.engine.QueryEngine`; its
            current predicate cache (plain or cluster) is the crash
            target and is replaced wholesale at :meth:`restart`.
        store: the live :class:`~repro.persist.CacheStore` the cache
            writes through to.  The restart re-opens the same directory
            with a fresh store, exactly like a new process would.
        cache_factory: builds the replacement cache given the fresh
            store (hydrating from it and attaching write-through).
            Defaults to rebuilding the engine's current cache shape —
            same config, same node count, same policy factory.

    The orchestrator performs administrative swaps only (injector
    attach, cache reference swap); all data-plane synchronization lives
    in the store and caches themselves, so drills run safely inside a
    live multi-client workload.
    """

    def __init__(
        self,
        engine,
        store: CacheStore,
        cache_factory: Optional[Callable[[CacheStore], object]] = None,
    ) -> None:
        self.engine = engine
        self.store = store
        self.cache_factory = (
            cache_factory if cache_factory is not None else self._default_factory
        )
        # Monotonic counters (scrape-time metrics read these directly).
        self.crashes_injected = 0
        self.restarts = 0
        self.journal_replays = 0
        self.recovery_seconds_total = 0.0
        self.last_report: Optional[RecoveryReport] = None

    # -- crash staging ---------------------------------------------------------

    def crash_mid_snapshot(self) -> bool:
        """Kill the cache process mid-snapshot-rotation.

        The snapshot write is torn: a partial temp file is left behind,
        never renamed, and the previous snapshot + journal survive for
        recovery.  Returns True when a write was actually torn.
        """
        torn_before = self.store.torn_writes
        with self._one_shot_crash():
            self.store.snapshot(self.engine.predicate_cache)
        torn = self.store.torn_writes > torn_before
        if torn:
            self.crashes_injected += 1
        return torn

    def crash_mid_journal(self) -> bool:
        """Kill the cache process mid-journal-append.

        A torn record is left at the journal tail and the store wedges
        (the "process" is dead: every later append is dropped until
        restart).  Returns True when a write was actually torn.
        """
        torn_before = self.store.torn_writes
        with self._one_shot_crash():
            self.store.log_drop(_DRILL_KEY, [0])
        torn = self.store.torn_writes > torn_before
        if torn:
            self.crashes_injected += 1
        return torn

    @contextmanager
    def _one_shot_crash(self):
        """Fail exactly the next store write, then restore the injector."""
        saved = self.store.injector
        self.store.injector = FaultInjector(schedule={0: "error"})
        try:
            yield
        finally:
            self.store.injector = saved

    # -- the restart -----------------------------------------------------------

    def restart(self, crash_kind: str = "clean", torn_write: bool = False) -> RecoveryReport:
        """Replace the engine's cache with one recovered from disk.

        Models a process restart: the dead cache stops journaling
        (detached first — its in-flight scans finish as harmless orphan
        writes into the detached object), a fresh store re-reads the
        directory, the replacement hydrates warm and takes over the
        engine by reference swap.  Safe under live traffic.
        """
        old_cache = self.engine.predicate_cache
        before = self._keys_of(old_cache)
        for cache in self._caches_of(old_cache):
            cache.detach_store()
        fresh = CacheStore(self.store.directory, catalog=self.engine.database)
        replacement = self.cache_factory(fresh)
        self.engine.set_predicate_cache(replacement)
        restored = self._keys_of(replacement)
        retention = (
            len(restored & before) / len(before) if before else 1.0
        )
        self.store = fresh
        report = RecoveryReport(
            crash_kind=crash_kind,
            torn_write=torn_write,
            keys_before=len(before),
            keys_restored=len(restored),
            warm_hit_retention=retention,
            warm_restores=fresh.warm_restores,
            journal_replayed=fresh.journal_replayed,
            stale_dropped=fresh.stale_dropped,
            corrupt_sections=fresh.corrupt_sections,
            recovery_seconds=fresh.recovery_seconds,
        )
        self.restarts += 1
        self.journal_replays += report.journal_replayed
        self.recovery_seconds_total += report.recovery_seconds
        self.last_report = report
        return report

    def drill(self, crash_kind: str) -> RecoveryReport:
        """One full drill: stage the named crash, then restart.

        ``crash_kind`` is ``"mid_snapshot"``, ``"mid_journal"``, or
        ``"clean"`` (restart without a staged crash).
        """
        if crash_kind == "mid_snapshot":
            torn = self.crash_mid_snapshot()
        elif crash_kind == "mid_journal":
            torn = self.crash_mid_journal()
        elif crash_kind == "clean":
            torn = False
        else:
            raise ValueError(f"unknown crash kind {crash_kind!r}")
        return self.restart(crash_kind=crash_kind, torn_write=torn)

    # -- cache-shape helpers ---------------------------------------------------

    def _default_factory(self, fresh: CacheStore):
        """Rebuild the engine's current cache shape over ``fresh``."""
        from ..cluster.caches import ClusterCaches
        from ..core.cache import PredicateCache

        current = self.engine.predicate_cache
        if hasattr(current, "cache_for_slice"):
            return ClusterCaches(
                current.num_nodes,
                config=current.config,
                policy_factory=current.policy_factory,
                store=fresh,
            )
        replacement = PredicateCache(current.config)
        fresh.attach(replacement)
        return replacement

    @staticmethod
    def _caches_of(cache) -> list:
        return list(cache.nodes()) if hasattr(cache, "nodes") else [cache]

    def _keys_of(self, cache) -> Set[ScanKey]:
        keys: Set[ScanKey] = set()
        for node in self._caches_of(cache):
            keys.update(node.keys())
        return keys

    # -- observability ---------------------------------------------------------

    def register_metrics(self, registry) -> None:
        """Publish the ``repro_resilience_*`` recovery family."""
        registry.counter(
            "repro_resilience_crashes_injected_total",
            "Mid-write crashes staged by recovery drills",
            fn=lambda: self.crashes_injected,
        )
        registry.counter(
            "repro_resilience_restarts_total",
            "Crash-restart recoveries performed",
            fn=lambda: self.restarts,
        )
        registry.counter(
            "repro_resilience_journal_replays_total",
            "Journal events replayed across restarts",
            fn=lambda: self.journal_replays,
        )
        registry.counter(
            "repro_resilience_recovery_seconds_total",
            "Wall-clock seconds spent recovering across restarts",
            fn=lambda: self.recovery_seconds_total,
        )
        registry.gauge(
            "repro_resilience_warm_hit_retention",
            "Pre-crash cache keys surviving the latest restart (fraction)",
            fn=lambda: (
                self.last_report.warm_hit_retention
                if self.last_report is not None
                else 1.0
            ),
        )
