"""Concurrent multi-client serving over one shared engine (DESIGN.md §12).

The serving layer turns the single-session :class:`~repro.engine.QueryEngine`
into a multi-client front end: a bounded worker pool executes statements
from many clients concurrently, per-tenant admission control sheds load
past configured queue/in-flight limits, deadlines are honored at
dispatch, and DML serializes against concurrent SELECTs through a
shared/exclusive statement lock.
"""

from .admission import AdmissionController, TenantState
from .envelope import Request, RequestStatus, Response
from .server import QueryServer, ReadWriteLock

__all__ = [
    "AdmissionController",
    "QueryServer",
    "ReadWriteLock",
    "Request",
    "RequestStatus",
    "Response",
    "TenantState",
]
