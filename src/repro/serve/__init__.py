"""Concurrent multi-client serving over one shared engine (DESIGN.md §12–§13).

The serving layer turns the single-session :class:`~repro.engine.QueryEngine`
into a multi-client front end: a bounded worker pool executes statements
from many clients concurrently, per-tenant admission control sheds load
past configured queue/in-flight limits, deadlines are honored at
dispatch, and DML serializes against concurrent SELECTs through a
shared/exclusive statement lock.

The resilience control plane (PR 8) lives here too: a
:class:`ClusterHealthMonitor` heartbeats cluster nodes and fails over
around dead ones, a :class:`RecoveryOrchestrator` stages mid-write
crashes and drives warm restarts, and the
:class:`AdmissionController` adaptively sheds overload (queue depth,
unmeetable deadlines) with priority retention for hot tenants.
"""

from .admission import SHED_REASONS, AdmissionController, TenantState
from .envelope import Request, RequestStatus, Response
from .health import ClusterHealthMonitor, NodeState
from .recovery import RecoveryOrchestrator, RecoveryReport
from .server import QueryServer, ReadWriteLock

__all__ = [
    "AdmissionController",
    "ClusterHealthMonitor",
    "NodeState",
    "QueryServer",
    "ReadWriteLock",
    "RecoveryOrchestrator",
    "RecoveryReport",
    "Request",
    "RequestStatus",
    "Response",
    "SHED_REASONS",
    "TenantState",
]
