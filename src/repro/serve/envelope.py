"""Request/response envelopes for the serving layer (DESIGN.md §12).

A :class:`Request` is what a client hands the server: one SQL
statement, the tenant it bills to, and an optional deadline.  A
:class:`Response` is what the client's future resolves to — always,
for every accepted *or rejected* request: errors, rejections, and
deadline misses are all materialized as statuses, never raised across
the serving boundary.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Request", "RequestStatus", "Response"]

# Request ids are handed out process-wide; itertools.count.__next__ is
# atomic under the GIL, so concurrent submitters never share an id.
_REQUEST_IDS = itertools.count(1)


class RequestStatus(enum.Enum):
    """Terminal state of one request's journey through the server."""

    #: Executed; ``result`` holds the engine's QueryResult.
    OK = "ok"
    #: Refused at the door by admission control (or a closed server);
    #: the statement never reached the queue.
    REJECTED = "rejected"
    #: Dequeued after its deadline had already passed; never executed.
    TIMED_OUT = "timed_out"
    #: Executed and raised; ``error`` holds the message.
    ERROR = "error"


@dataclass(frozen=True)
class Request:
    """One client statement submitted to a :class:`~repro.serve.QueryServer`.

    Args:
        sql: the statement to execute.
        tenant: admission-control bucket (and metrics label).
        deadline_seconds: latency budget measured from submission; a
            request still queued when its budget lapses is failed with
            :attr:`RequestStatus.TIMED_OUT` instead of executing late.
        tag: opaque client correlation value, echoed on the response.
    """

    sql: str
    tenant: str = "default"
    deadline_seconds: Optional[float] = None
    tag: Optional[object] = None
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))


@dataclass
class Response:
    """Terminal outcome of one request (the future's resolved value)."""

    request: Request
    status: RequestStatus
    #: The engine result (OK only).
    result: Optional[object] = None
    #: Human-readable failure description (ERROR/REJECTED/TIMED_OUT).
    error: Optional[str] = None
    #: Seconds spent waiting in the queue before execution/timeout.
    queued_seconds: float = 0.0
    #: Submission-to-completion seconds (queue wait + execution).
    total_seconds: float = 0.0
    #: Why a REJECTED request was shed (an element of
    #: :data:`~repro.serve.admission.SHED_REASONS`, or ``"server_closed"``);
    #: ``None`` for every other status.
    shed_reason: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status is RequestStatus.OK
