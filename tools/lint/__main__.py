"""``python -m tools.lint src/`` — run the project linter from the CLI."""

import sys

from . import main

if __name__ == "__main__":
    sys.exit(main())
