"""Project-specific AST linter for the predicate-caching reproduction.

Generic linters cannot know that builtin ``hash()`` broke reproducibility
once already (PYTHONHASHSEED salting of str — fixed by PR 1's FNV-1a
hashing), that the differential/chaos oracles only work because the hot
path has no ambient clocks or randomness, or that the on-disk snapshot
format has exactly one source of truth for its magic numbers.  This
linter encodes those repo-specific rules:

========  ==============================================================
RP001     no raw ``hash()`` outside ``repro/engine/hashing.py`` (dunder
          ``__hash__`` definitions excepted — in-process only)
RP002     no ambient time/randomness (``time.time``, ``random.*``,
          ``datetime.now``) in ``core/``, ``engine/``, ``persist/``
RP003     no bare ``except:`` / swallowing ``except Exception: pass`` on
          the read path (``core/``, ``engine/``, ``storage/``,
          ``lake/``, ``persist/``)
RP004     every ``QueryCounters`` field must appear in ``merge`` and
          ``reset`` and be mentioned by a registered metric name
RP005     persisted-format constants (snapshot magic, version, section
          and op ids) must not be spelled as literals outside
          ``repro/persist/format.py``
========  ==============================================================

Use as a library (the tests do)::

    from tools.lint import lint_source, lint_paths
    findings = lint_paths(["src"])

or from the command line::

    python -m tools.lint src/
"""

from __future__ import annotations

import sys
import time
from typing import Optional, Sequence

from .astutils import parse_files
from .rules import (
    RULES,
    Finding,
    FormatConstants,
    check_counters,
    extract_format_constants,
    lint_paths,
    lint_project,
    lint_source,
)

__all__ = [
    "Finding",
    "FormatConstants",
    "RULES",
    "check_counters",
    "extract_format_constants",
    "lint_paths",
    "lint_project",
    "lint_source",
    "main",
]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: lint the given paths, print findings, exit 1 on any."""
    args = list(sys.argv[1:] if argv is None else argv)
    if "--list-rules" in args:
        # The whole-program concurrency rules live in tools.analyze but
        # share this numbering; list both sets so `--list-rules` is the
        # one catalogue of RP codes.
        from tools.analyze.rules import ANALYZE_RULES

        combined = {**RULES, **ANALYZE_RULES}
        for code in sorted(combined):
            print(f"{code}  {combined[code]}")
        return 0
    paths = [a for a in args if not a.startswith("-")] or ["src"]
    started = time.perf_counter()
    project = parse_files(paths)
    findings = lint_project(project)
    elapsed = time.perf_counter() - started
    for finding in findings:
        print(f"{finding.path}:{finding.line}:{finding.col} "
              f"{finding.code} {finding.message}")
    print(
        f"tools.lint: {len(findings)} finding(s) across "
        f"{len(project)} file(s) in {elapsed:.2f}s",
        file=sys.stderr,
    )
    return 1 if findings else 0
